#include "src/models/goodput.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace sia {
namespace {

BatchDecision Evaluate(const IterTimeFn& iter_time, const EfficiencyParams& eff, double pgns,
                       double local_bsz, int accum, int num_nodes, int num_gpus) {
  BatchDecision decision;
  decision.feasible = true;
  decision.local_bsz = local_bsz;
  decision.accum_steps = accum;
  decision.global_bsz = local_bsz * accum * num_gpus;
  decision.iter_time = iter_time(num_nodes, num_gpus, local_bsz, accum);
  decision.throughput = decision.global_bsz / decision.iter_time;
  decision.efficiency = Efficiency(eff, pgns, decision.global_bsz);
  decision.goodput = decision.throughput * decision.efficiency;
  return decision;
}

IterTimeFn WrapParams(const ThroughputParams& params) {
  return [params](int num_nodes, int num_gpus, double local_bsz, int accum_steps) {
    return IterTime(params, num_nodes, num_gpus, local_bsz, accum_steps);
  };
}

}  // namespace

const char* ToString(AdaptivityMode mode) {
  switch (mode) {
    case AdaptivityMode::kAdaptive:
      return "adaptive";
    case AdaptivityMode::kStrongScaling:
      return "strong-scaling";
    case AdaptivityMode::kRigid:
      return "rigid";
  }
  return "?";
}

BatchDecision OptimizeBatch(const IterTimeFn& iter_time, const EfficiencyParams& eff, double pgns,
                            double min_bsz, double max_bsz, int max_local_bsz, int num_nodes,
                            int num_gpus) {
  BatchDecision best;
  if (max_local_bsz <= 0 || num_gpus <= 0) {
    return best;  // Model does not fit this GPU type.
  }
  for (int accum : kGoodputAccumChoices) {
    // Local batch sizes on a geometric grid between the bounds implied by
    // the global batch range and the per-GPU memory limit.
    const double lo = std::max(1.0, min_bsz / (accum * num_gpus));
    const double hi =
        std::min(static_cast<double>(max_local_bsz), max_bsz / (accum * num_gpus));
    if (lo > hi) {
      continue;
    }
    constexpr int kGridPoints = kGoodputGridPoints;
    for (int k = 0; k <= kGridPoints; ++k) {
      const double local = lo * std::pow(hi / lo, static_cast<double>(k) / kGridPoints);
      const BatchDecision candidate =
          Evaluate(iter_time, eff, pgns, local, accum, num_nodes, num_gpus);
      if (!best.feasible || candidate.goodput > best.goodput) {
        best = candidate;
      }
    }
  }
  return best;
}

BatchDecision OptimizeBatch(const ThroughputParams& params, const EfficiencyParams& eff,
                            double pgns, double min_bsz, double max_bsz, int max_local_bsz,
                            int num_nodes, int num_gpus) {
  return OptimizeBatch(WrapParams(params), eff, pgns, min_bsz, max_bsz, max_local_bsz, num_nodes,
                       num_gpus);
}

BatchDecision EvaluateFixedBatch(const IterTimeFn& iter_time, const EfficiencyParams& eff,
                                 double pgns, double global_bsz, int max_local_bsz, int num_nodes,
                                 int num_gpus) {
  BatchDecision decision;
  if (max_local_bsz <= 0 || num_gpus <= 0 || global_bsz <= 0.0) {
    return decision;
  }
  if (global_bsz < static_cast<double>(num_gpus)) {
    return decision;  // Fewer than one sample per GPU: config unusable.
  }
  for (int accum : kGoodputAccumChoices) {
    const double local = global_bsz / (accum * num_gpus);
    if (local > static_cast<double>(max_local_bsz)) {
      continue;  // Does not fit memory; deepen accumulation.
    }
    return Evaluate(iter_time, eff, pgns, local, accum, num_nodes, num_gpus);
  }
  return decision;  // Batch too large even at max accumulation.
}

BatchDecision EvaluateFixedBatch(const ThroughputParams& params, const EfficiencyParams& eff,
                                 double pgns, double global_bsz, int max_local_bsz, int num_nodes,
                                 int num_gpus) {
  return EvaluateFixedBatch(WrapParams(params), eff, pgns, global_bsz, max_local_bsz, num_nodes,
                            num_gpus);
}

BatchDecision HybridGoodput(const HybridProfile& profile, const EfficiencyParams& eff, double pgns,
                            int replicas, double max_bsz) {
  BatchDecision decision;
  if (!profile.available || replicas < 1) {
    return decision;
  }
  const double replica_bsz = static_cast<double>(profile.micro_batches) * profile.micro_bsz;
  const double global_bsz = replica_bsz * replicas;
  if (global_bsz > max_bsz) {
    return decision;  // Data-parallel width exceeds the allowed batch range.
  }
  // GPipe pipeline: (micro_batches + stages - 1) micro-batch slots.
  const double compute =
      (profile.micro_batches + profile.pipeline_gpus - 1) * profile.stage_time;
  double iter;
  if (replicas == 1) {
    iter = compute;
  } else {
    const double sync = profile.sync_base + profile.sync_per_replica * (replicas - 1);
    iter = std::pow(std::pow(compute, profile.gamma) + std::pow(sync, profile.gamma),
                    1.0 / profile.gamma);
  }
  decision.feasible = true;
  decision.global_bsz = global_bsz;
  decision.local_bsz = profile.micro_bsz;
  decision.accum_steps = profile.micro_batches;
  decision.iter_time = iter;
  decision.throughput = global_bsz / iter;
  decision.efficiency = Efficiency(eff, pgns, global_bsz);
  decision.goodput = decision.throughput * decision.efficiency;
  return decision;
}

}  // namespace sia
