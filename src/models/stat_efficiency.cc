#include "src/models/stat_efficiency.h"

#include <algorithm>

#include "src/common/check.h"

namespace sia {

double PgnsAt(const EfficiencyParams& params, double progress_fraction) {
  const double f = std::clamp(progress_fraction, 0.0, 1.0);
  return params.init_pgns * (1.0 + params.pgns_growth * f);
}

double Efficiency(const EfficiencyParams& params, double pgns, double global_bsz) {
  SIA_DCHECK(global_bsz > 0.0);
  SIA_DCHECK(pgns >= 0.0);
  if (global_bsz <= params.base_bsz) {
    return 1.0;
  }
  return (pgns + params.base_bsz) / (pgns + global_bsz);
}

}  // namespace sia
