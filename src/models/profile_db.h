// Ground-truth performance profiles for the Table 2 workloads on the four
// GPU types of §4.2 (t4, rtx, quad, a100).
//
// The real system measures these on hardware; this reproduction synthesizes
// them from first principles so the relative behaviour matches the paper:
//  * per-sample compute time scales with a per-(model, GPU) speed factor
//    (A100 helps BERT far more than ResNet18, reproducing Fig. 2 / Fig. 6),
//  * all-reduce time scales with model size / interconnect bandwidth, so
//    big models scale poorly on 50 Gb/s Ethernet but nearly linearly on
//    1.6 Tb/s Infiniband,
//  * per-GPU memory limits bound the local batch size (gradient
//    accumulation covers the rest, §3.1 "Heterogeneous Execution").
#ifndef SIA_SRC_MODELS_PROFILE_DB_H_
#define SIA_SRC_MODELS_PROFILE_DB_H_

#include <string>
#include <vector>

#include "src/models/model_kind.h"
#include "src/models/stat_efficiency.h"
#include "src/models/throughput_model.h"

namespace sia {

// Static per-model facts (model-parallel-free models; see HybridProfile for
// the GPT workload).
struct ModelInfo {
  ModelKind kind = ModelKind::kResNet18;
  double params_millions = 0.0;
  double min_bsz = 1.0;            // Smallest permitted global batch.
  double max_bsz = 1.0;            // Largest permitted global batch (Table 2).
  EfficiencyParams efficiency;
  double total_work = 0.0;         // Reference samples to completion.
  double restart_seconds = 30.0;   // Checkpoint-restore cost (25-250 s).
  bool hybrid_parallel = false;
};

// Per-(model, GPU type) ground truth.
struct DeviceProfile {
  bool available = false;          // Model fits on this GPU type.
  ThroughputParams truth;
  int max_local_bsz = 0;           // Per-GPU memory-limited batch size.
};

// Ground truth for hybrid (pipeline + data) parallel jobs (§5.3): the model
// is partitioned over `pipeline_gpus` stages; data parallelism replicates
// whole pipelines. GPipe schedule: iteration compute is
// (micro_batches + stages - 1) * stage_time, with a cross-replica gradient
// all-reduce combined under the usual gamma overlap rule.
struct HybridProfile {
  bool available = false;
  int pipeline_gpus = 0;     // GPUs per data-parallel replica (P).
  int micro_batches = 48;    // Micro-batches per replica per iteration.
  int micro_bsz = 1;         // Samples per micro-batch.
  double stage_time = 0.0;   // Per-micro-batch per-stage compute time (s).
  double sync_base = 0.0;    // Cross-replica all-reduce base cost (s).
  double sync_per_replica = 0.0;
  double gamma = 2.0;
};

const ModelInfo& GetModelInfo(ModelKind kind);

// Ground truth for `kind` on the GPU type with the given name ("t4", "rtx",
// "quad", "a100"). DeviceProfile.available is false if the model cannot run
// there (e.g. GPT on t4).
const DeviceProfile& GetDeviceProfile(ModelKind kind, const std::string& gpu_type_name);

// Hybrid-parallel ground truth (only meaningful for hybrid models).
const HybridProfile& GetHybridProfile(ModelKind kind, const std::string& gpu_type_name);

// All non-hybrid models, in Table 2 order.
std::vector<ModelKind> AllDataParallelModels();

}  // namespace sia

#endif  // SIA_SRC_MODELS_PROFILE_DB_H_
