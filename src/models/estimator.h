// Scheduler-side learned goodput model for one job (§3.2).
//
// The estimator never touches the simulator's ground truth (except in
// kOracle mode, the ablation baseline of §5.7): it consumes
//  * 1-GPU profile points per GPU type from the initial profiling sweep
//    (~10 batch sizes, <20 GPU-seconds per type), and
//  * iteration-time observations from configurations the job actually ran,
// fits the ThroughputParams family to them, and fills the gaps with the
// paper's Eq. (1) cross-GPU-type bootstrap:
//
//   est-xput_B(N) = xput_B(1) / xput_A(1) * xput_A(N)
//
// i.e. until type B has its own multi-GPU observation, assume its
// compute-to-communication scaling matches a type A that does.
#ifndef SIA_SRC_MODELS_ESTIMATOR_H_
#define SIA_SRC_MODELS_ESTIMATOR_H_

#include <string>
#include <vector>

#include "src/common/binary_codec.h"
#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/models/goodput.h"
#include "src/models/model_kind.h"
#include "src/models/profile_db.h"

namespace sia {

class GoodputBackend;
class MetricsRegistry;

// Throughput-model knowledge regimes evaluated in §5.7.
enum class ProfilingMode {
  kOracle,     // Ground-truth params known for every configuration.
  kBootstrap,  // Sia's default: 1-GPU profiles + Eq. (1) extrapolation.
  kNoProfile,  // Profile-as-you-go: no initial information at all.
};

const char* ToString(ProfilingMode mode);

class GoodputEstimator {
 public:
  // `cluster` provides GPU type names; the estimator keeps one model per
  // type. Memory limits (max local batch) come from the public profile DB:
  // they are derivable from model size and VRAM without running the job.
  // `batch_inference` drops the statistical-efficiency term (goodput =
  // throughput, §3.4 "Scheduling other workload types"); a positive
  // `latency_slo_seconds` additionally makes goodput binary -- 1 when some
  // batch choice meets the per-iteration latency SLO on the configuration,
  // infeasible otherwise.
  GoodputEstimator(ModelKind kind, const ClusterSpec* cluster, ProfilingMode mode,
                   bool batch_inference = false, double latency_slo_seconds = 0.0);

  ModelKind model_kind() const { return kind_; }
  ProfilingMode mode() const { return mode_; }

  // --- observation ingestion (called by the executors / simulator) ---

  // 1-GPU profile point from the initial profiling sweep.
  void AddProfilePoint(int gpu_type, double local_bsz, double iter_time);
  // Iteration time observed while training on an actual allocation.
  void AddObservation(int gpu_type, int num_nodes, int num_gpus, double local_bsz, int accum_steps,
                      double iter_time);
  // Gradient-noise-scale report (EMA-smoothed internally).
  void ObservePgns(double pgns);

  // Optional observability hook. When bound, every compute/sync refit
  // records into the registry: "estimator.refits" (counter),
  // "estimator.fit_residual" (histogram of final sum-of-squares cost), and
  // "estimator.fit_iterations" (histogram of LM iterations per sync fit).
  // Null unbinds. The estimator never owns the registry.
  void BindMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // --- estimation (called by scheduling policies) ---

  // Best batch decision the Adaptive Executor would make on `config`, under
  // the estimator's current beliefs. fixed_bsz is used for strong-scaling /
  // rigid jobs; ignored for kAdaptive.
  BatchDecision Estimate(const Config& config, AdaptivityMode adaptivity,
                         double fixed_bsz = 0.0) const;

  // Batch variant (ISSUE 8): estimates `count` configurations in one call
  // through the pluggable batch backend -- the vectorized SoA kernel by
  // default (src/models/batch_goodput.h). Bit-identical to calling
  // Estimate() once per configuration; that is the backend contract.
  void EstimateBatch(const Config* configs, size_t count, AdaptivityMode adaptivity,
                     double fixed_bsz, BatchDecision* out) const;

  // Replaces the batch backend (never owned; nullptr restores the default
  // analytic kernel). External backends must honor the bit-identity
  // contract of EstimateBatch or results become cache-order dependent.
  void SetGoodputBackend(GoodputBackend* backend) { backend_ = backend; }

  // Estimated iteration time for an explicit shape (exposed for tests).
  double EstimateIterTime(int gpu_type, int num_nodes, int num_gpus, double local_bsz,
                          int accum_steps) const;

  // True when EstimateIterTime(gpu_type, num_nodes, num_gpus, *, *) reduces
  // to IterTime(*out, ...) for every batch choice at this shape: oracle
  // mode, or a fully-fitted type on a multi-GPU shape. The batch kernel
  // then evaluates the closed form over its SoA grid without per-point
  // dispatch; every other regime (bootstrap, compute-only, single GPU)
  // keeps the scalar path.
  bool DirectThroughputParams(int gpu_type, int num_nodes, int num_gpus,
                              ThroughputParams* out) const;

  // --- model-info accessors for batch backends ---
  bool hybrid_parallel() const { return info_.hybrid_parallel; }
  double latency_slo_seconds() const { return latency_slo_seconds_; }
  double min_bsz() const { return info_.min_bsz; }
  double max_bsz() const { return info_.max_bsz; }
  int max_local_bsz(int gpu_type) const { return types_[gpu_type].max_local_bsz; }
  const EfficiencyParams& efficiency_params() const { return info_.efficiency; }

  // True when the model can run on this GPU type at all.
  bool TypeAvailable(int gpu_type) const;
  // Replica granularity on the type: 1 for data-parallel jobs, the pipeline
  // width for hybrid-parallel jobs (§5.3).
  int MinGpus(int gpu_type) const;

  // Monotonic version of the beliefs behind Estimate() on `gpu_type`,
  // used by the scheduler's CandidateCache (ISSUE 3): equal epochs across
  // rounds guarantee Estimate returns identical results. Per-type refits
  // bump the type's own counter, and *every* ingestion (profile point,
  // observation, pgns report) additionally bumps a shared counter, because
  // Estimate on type B can borrow type A's model through the Eq. (1)
  // bootstrap and the gradient-noise EMA is estimator-global. Conservative
  // (some bumps do not change any estimate) but never stale.
  long long fit_epoch(int gpu_type) const;

  double pgns() const { return pgns_; }
  bool has_compute_data(int gpu_type) const { return types_[gpu_type].has_compute; }
  bool has_intra_data(int gpu_type) const { return types_[gpu_type].has_intra; }
  bool has_inter_data(int gpu_type) const { return types_[gpu_type].has_inter; }

  // Snapshot support (ISSUE 5): serializes the learned state -- fitted
  // params, observation buffers, epochs, and the gradient-noise EMA -- so a
  // restored estimator returns bit-identical estimates without re-running
  // the fits (refits record metrics; replaying them would skew counters).
  // Restore expects an estimator constructed with the same (kind, cluster,
  // mode, ...) arguments; structural fields (truth, hybrid profiles,
  // availability) are rebuilt by the constructor, not serialized.
  void SaveState(BinaryWriter& w) const;
  bool RestoreState(BinaryReader& r);

 private:
  struct Observation {
    int num_nodes;
    int num_gpus;
    double local_bsz;
    int accum_steps;
    double iter_time;
  };

  struct TypeState {
    std::string name;
    bool available = false;
    int max_local_bsz = 0;
    ThroughputParams truth;     // Used only in kOracle mode.
    ThroughputParams fitted;    // Learned parameters.
    bool has_compute = false;   // 1-GPU compute profile exists.
    bool has_intra = false;     // Single-node multi-GPU sync observed.
    bool has_inter = false;     // Cross-node sync observed.
    std::vector<Observation> profile_points;  // 1-GPU points.
    std::vector<Observation> intra_points;
    std::vector<Observation> inter_points;
  };

  void RefitCompute(TypeState& type);
  void RefitSync(TypeState& type, bool inter);
  // Compute-only iteration-time estimate for 1 GPU on `type` (used by the
  // Eq. (1) ratio); falls back to borrowed/default params in kNoProfile.
  double ComputeTimeEstimate(const TypeState& type, double local_bsz) const;
  const TypeState* FindReference(int exclude_type, bool inter) const;

  ModelKind kind_;
  ProfilingMode mode_;
  bool batch_inference_;
  double latency_slo_seconds_;
  ModelInfo info_;
  std::vector<TypeState> types_;
  std::vector<HybridProfile> hybrid_;  // Per type; available only for hybrid models.
  std::vector<long long> type_epoch_;  // Bumped by that type's refits.
  long long shared_epoch_ = 0;         // Bumped by every ingestion.
  double pgns_;
  MetricsRegistry* metrics_ = nullptr;
  // Batch backend; nullptr means DefaultGoodputBackend(). Never owned.
  GoodputBackend* backend_ = nullptr;
};

}  // namespace sia

#endif  // SIA_SRC_MODELS_ESTIMATOR_H_
