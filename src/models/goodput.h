// Goodput evaluation: combines a throughput model with the statistical
// efficiency model and optimizes the batch-size/gradient-accumulation choice
// for a given resource configuration (the Adaptive Executor's job, §3.1).
#ifndef SIA_SRC_MODELS_GOODPUT_H_
#define SIA_SRC_MODELS_GOODPUT_H_

#include <functional>

#include "src/models/profile_db.h"
#include "src/models/stat_efficiency.h"
#include "src/models/throughput_model.h"

namespace sia {

// Job adaptivity modes (§3.4 "Support for limited adaptivity").
enum class AdaptivityMode {
  kAdaptive,       // Batch size, GPU count, and GPU type all optimized.
  kStrongScaling,  // Fixed batch size; GPU count and type optimized.
  kRigid,          // Fixed batch size and GPU count; only GPU type optimized.
};

const char* ToString(AdaptivityMode mode);

// Outcome of a batch-size decision on a specific configuration.
struct BatchDecision {
  bool feasible = false;
  double global_bsz = 0.0;
  double local_bsz = 0.0;  // Per-GPU micro-batch size.
  int accum_steps = 1;
  double iter_time = 0.0;    // Seconds per training iteration.
  double throughput = 0.0;   // Samples per second.
  double efficiency = 0.0;   // Statistical efficiency in (0, 1].
  double goodput = 0.0;      // Reference samples per second.
};

// Iteration-time oracle: seconds for one iteration with the given placement
// shape and micro-batch choice. Lets callers plug in either exact
// ThroughputParams or a learned/bootstrapped estimate (Eq. 1).
using IterTimeFn =
    std::function<double(int num_nodes, int num_gpus, double local_bsz, int accum_steps)>;

// Batch-size search grid shared by the scalar optimizer below and the
// vectorized batch kernel (src/models/batch_goodput.h): the gradient
// accumulation depths the executor considers, and the geometric grid
// resolution per depth. Both paths must walk the identical grid -- the
// kernel's bit-identity contract depends on it.
inline constexpr int kGoodputAccumChoices[] = {1, 2, 4, 8, 16};
inline constexpr int kGoodputGridPoints = 24;

// Optimizes goodput over global batch size for `num_gpus` GPUs spread over
// `num_nodes` nodes, subject to the model's batch range, per-GPU memory
// limit (gradient accumulation extends it), and minimum one sample per GPU.
BatchDecision OptimizeBatch(const IterTimeFn& iter_time, const EfficiencyParams& eff, double pgns,
                            double min_bsz, double max_bsz, int max_local_bsz, int num_nodes,
                            int num_gpus);
BatchDecision OptimizeBatch(const ThroughputParams& params, const EfficiencyParams& eff,
                            double pgns, double min_bsz, double max_bsz, int max_local_bsz,
                            int num_nodes, int num_gpus);

// Evaluates a fixed global batch size (strong-scaling / rigid jobs): picks
// the smallest accumulation count that fits memory.
BatchDecision EvaluateFixedBatch(const IterTimeFn& iter_time, const EfficiencyParams& eff,
                                 double pgns, double global_bsz, int max_local_bsz, int num_nodes,
                                 int num_gpus);
BatchDecision EvaluateFixedBatch(const ThroughputParams& params, const EfficiencyParams& eff,
                                 double pgns, double global_bsz, int max_local_bsz, int num_nodes,
                                 int num_gpus);

// Goodput of a hybrid (pipeline+data parallel) job with `replicas`
// data-parallel pipeline replicas (§5.3). The global batch is
// replicas * micro_batches * micro_bsz and is not otherwise adaptable.
BatchDecision HybridGoodput(const HybridProfile& profile, const EfficiencyParams& eff, double pgns,
                            int replicas, double max_bsz);

}  // namespace sia

#endif  // SIA_SRC_MODELS_GOODPUT_H_
