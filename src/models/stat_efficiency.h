// Statistical-efficiency model (borrowed from Pollux [44], after McCandlish
// et al.'s gradient-noise-scale analysis [36]).
//
// Training progress per sample at global batch size M, relative to the
// baseline batch size M0, is
//
//   E(M) = (B + M0) / (B + M)      with E(M0) = 1,
//
// where B is the (pre-conditioned) gradient noise scale. B grows as training
// progresses, making large batches more efficient later in training:
//
//   B(progress) = B0 * (1 + growth * progress_fraction).
//
// Goodput = Throughput(samples/s) * E(M) measures progress in
// "reference samples" per second; a job completes when its accumulated
// reference samples reach the model's total work.
#ifndef SIA_SRC_MODELS_STAT_EFFICIENCY_H_
#define SIA_SRC_MODELS_STAT_EFFICIENCY_H_

namespace sia {

struct EfficiencyParams {
  double base_bsz = 128.0;     // M0: batch size with efficiency 1.
  double init_pgns = 512.0;    // B0 at the start of training.
  double pgns_growth = 4.0;    // Relative growth of B over the run.
};

// Gradient noise scale at the given progress fraction in [0, 1].
double PgnsAt(const EfficiencyParams& params, double progress_fraction);

// Efficiency of global batch size M given noise scale B. In (0, 1] for
// M >= M0; capped at 1 for smaller batches.
double Efficiency(const EfficiencyParams& params, double pgns, double global_bsz);

}  // namespace sia

#endif  // SIA_SRC_MODELS_STAT_EFFICIENCY_H_
