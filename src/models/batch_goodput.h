// Vectorized batch goodput kernel (ISSUE 8).
//
// Candidate generation evaluates the same goodput optimization for dozens of
// configurations per job; doing it one std::function callback at a time
// leaves the whole grid opaque to the compiler. This backend runs the
// batch-size search as a structure-of-arrays pass per configuration -- grid
// expansion, iteration-time closed form, efficiency, and argmax as separate
// array loops over a fixed-size stack block -- whenever the estimator's
// beliefs reduce to direct ThroughputParams, and falls back to the scalar
// path otherwise (hybrid models, latency SLOs, bootstrapped estimates,
// single-GPU shapes).
//
// The backend is pluggable so alternative estimators -- e.g. an external
// simulator-in-the-loop backend in the style of Phantora (arXiv 2505.01616)
// -- can replace the analytic model without touching the scheduler.
//
// Contract: EstimateBatch must be bit-identical to calling
// GoodputEstimator::Estimate() once per configuration. The scheduler's
// candidate cache stores whichever of the two ran first and replays it on
// later rounds, so any backend that breaks the contract makes results
// depend on cache hit order.
#ifndef SIA_SRC_MODELS_BATCH_GOODPUT_H_
#define SIA_SRC_MODELS_BATCH_GOODPUT_H_

#include <cstddef>

#include "src/cluster/configuration.h"
#include "src/models/estimator.h"
#include "src/models/goodput.h"

namespace sia {

class GoodputBackend {
 public:
  virtual ~GoodputBackend() = default;
  virtual const char* name() const = 0;
  // Fills out[0..count) with the decision Estimate() would return for each
  // configuration. Must be safe to call concurrently from multiple threads
  // on the same estimator (candidate generation is parallel per job).
  virtual void EstimateBatch(const GoodputEstimator& estimator, const Config* configs,
                             size_t count, AdaptivityMode adaptivity, double fixed_bsz,
                             BatchDecision* out) const = 0;
};

// Default backend: the analytic SoA kernel described above.
class AnalyticBatchBackend final : public GoodputBackend {
 public:
  const char* name() const override { return "analytic-soa"; }
  void EstimateBatch(const GoodputEstimator& estimator, const Config* configs, size_t count,
                     AdaptivityMode adaptivity, double fixed_bsz,
                     BatchDecision* out) const override;
};

// Process-wide default backend instance (stateless).
GoodputBackend* DefaultGoodputBackend();

}  // namespace sia

#endif  // SIA_SRC_MODELS_BATCH_GOODPUT_H_
