// Fuzz scenarios: a fully-materialized simulation input (cluster shape,
// concrete job list, scripted + stochastic fault knobs, scheduler choice,
// simulator knobs) that can be (a) generated deterministically from a seed,
// (b) serialized to a small text reproducer file, and (c) replayed
// byte-identically -- ReadScenario(WriteScenario(s)) drives the exact same
// simulation, because jobs and fault events are stored materialized (never
// re-sampled) and every floating-point field round-trips at 17 significant
// digits.
//
// Reproducer format (DESIGN.md section 9): `key=value` lines for scalar
// knobs, one `node_group=<type>:<nodes>:<gpus_per_node>` line per node
// group, the job list as an embedded trace CSV between `jobs_begin` /
// `jobs_end` markers, and one `fault=<t_seconds>,<kind>,<node>,<duration_
// seconds>,<severity>` line per scripted fault event. '#' lines are
// comments.
#ifndef SIA_SRC_TESTING_SCENARIO_H_
#define SIA_SRC_TESTING_SCENARIO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/workload/job.h"

namespace sia::testing {

// One group of identical nodes. `gpu_type` must name a type from the
// catalogue in scenario.cc (t4 / rtx / a100 / quad) so replays rebuild the
// exact same GpuType parameters.
struct ScenarioNodeGroup {
  std::string gpu_type = "t4";
  int num_nodes = 1;
  int gpus_per_node = 4;
};

struct Scenario {
  // Provenance: the generator seed this scenario came from (0 for
  // hand-written or shrunk scenarios; shrinking preserves the original).
  uint64_t seed = 0;
  // Scheduler under test; any name accepted by tools/sia_simulate.
  std::string scheduler = "sia";

  std::vector<ScenarioNodeGroup> node_groups;
  std::vector<JobSpec> jobs;        // Materialized; sorted by submit time.
  std::vector<FaultEvent> faults;   // Scripted schedule (crash / degrade).

  // Stochastic fault knobs (FaultOptions).
  double node_mtbf_hours = 0.0;
  double node_mttr_hours = 0.5;
  double degraded_frac = 0.0;
  double telemetry_dropout_prob = 0.0;
  double telemetry_outlier_prob = 0.0;

  // Simulator knobs (SimOptions).
  uint64_t sim_seed = 1;
  int profiling_mode = 1;  // static_cast<int>(ProfilingMode): 0/1/2.
  double observation_noise_sigma = 0.03;
  double pgns_noise_sigma = 0.10;
  double max_hours = 4.0;

  // Sia fast-path knobs (ignored by the baselines).
  int sched_threads = 1;
  bool warm_start = true;
  bool candidate_cache = true;

  // Simulation core (ISSUE 7): static_cast<int>(SimCore) -- 0 = dense
  // reference scan, 1 = event-driven (the default). Cores are documented to
  // be byte-identical; the knob exists so reproducers can pin the core a
  // divergence was found under.
  int sim_core = 1;

  // Crash-point mode (ISSUE 5): the scheduling round at which the
  // checkpoint/resume crash-equivalence check simulates a kill. -1 lets the
  // harness derive one from `seed` inside the run's actual round range; a
  // reproducer written by a failing crash check pins the exact round.
  int64_t crash_round = -1;

  // Energy / power-cap knobs (ROADMAP item 3). Defaults keep the energy
  // subsystem fully disabled, so pre-energy seeds replay byte-identically.
  int track_energy = 0;             // SimOptions::energy.track.
  double power_cap_watts = 0.0;     // Cluster cap (0 = uncapped).
  double energy_weight = 0.0;       // sia-energy goodput-per-watt exponent.
  // Power-model overrides applied to every GPU type in BuildCluster();
  // negative / zero sentinels mean "keep the per-type catalog default".
  double transition_joules = -1.0;
  int idle_rounds_to_low_power = 0;
  // SLA classes live in the materialized job list itself (the embedded
  // trace CSV grows sla_class/deadline_seconds columns when any job has
  // them), so no scenario-level mix knob is needed for replay.

  // Rebuilds the ClusterSpec from node_groups. SIA_CHECKs on unknown GPU
  // type names.
  ClusterSpec BuildCluster() const;
  // SimOptions with every knob applied (observer/metrics/trace left unset).
  SimOptions BuildSimOptions() const;
  // One-line summary for fuzz logs.
  std::string Describe() const;
};

// Deterministically samples a scenario from `seed` for the given scheduler:
// 1-3 node groups (<= ~40 GPUs), 1-10 jobs over a short submission window,
// an optional fault cocktail, and randomized simulator/Sia knobs. The same
// (seed, scheduler) always yields the same scenario.
Scenario GenerateScenario(uint64_t seed, const std::string& scheduler);

// GenerateScenario plus a randomized energy/SLA dimension (sia_fuzz
// --energy-seeds): energy tracking always on, and -- each sampled from a
// *separate* "fuzz-energy" RNG stream so the base scenario for a given seed
// is unchanged -- an optional power cap (fraction of the cluster's full
// active draw), randomized state-transition costs and low-power entry
// thresholds, an energy_weight for sia-energy, and an SLA class mix
// materialized into the job list.
Scenario GenerateEnergyScenario(uint64_t seed, const std::string& scheduler);

// Serialization. Write returns false on I/O error; Read returns false and
// reports the offending line via `error` (if non-null) on malformed input.
bool WriteScenario(std::ostream& out, const Scenario& scenario);
bool WriteScenario(const std::string& path, const Scenario& scenario);
bool ReadScenario(std::istream& in, Scenario* scenario, std::string* error = nullptr);
bool ReadScenario(const std::string& path, Scenario* scenario, std::string* error = nullptr);

}  // namespace sia::testing

#endif  // SIA_SRC_TESTING_SCENARIO_H_
