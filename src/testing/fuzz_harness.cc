#include "src/testing/fuzz_harness.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

namespace sia::testing {
namespace {

// Bug-injection wrapper: delegates to the real policy, then inflates the
// first requested allocation past the type's live capacity. Exactly the
// class of defect the capacity invariant exists for.
class OversubscribingScheduler : public Scheduler {
 public:
  explicit OversubscribingScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name() + "+oversub"; }
  double round_duration_seconds() const override { return inner_->round_duration_seconds(); }

  ScheduleOutput Schedule(const ScheduleInput& input) override {
    ScheduleOutput output = inner_->Schedule(input);
    if (!output.empty() && input.cluster != nullptr) {
      auto& [id, config] = *output.begin();
      config.num_gpus = input.cluster->AvailableGpus(config.gpu_type) + 1;
    }
    return output;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
};

// One simulation of the scenario; `sia_variant` tweaks the Sia/Pollux fast
// paths for differential twins (0 = as configured, 1 = cold solves + no
// cache, 2 = alternate thread count).
std::unique_ptr<Scheduler> MakeSchedulerVariant(const Scenario& scenario, int variant,
                                                BugInjection inject) {
  Scenario adjusted = scenario;
  if (variant == 1) {
    adjusted.warm_start = false;
    adjusted.candidate_cache = false;
  } else if (variant == 2) {
    adjusted.sched_threads = scenario.sched_threads > 1 ? 1 : 3;
  }
  std::unique_ptr<Scheduler> scheduler = MakeFuzzScheduler(adjusted);
  if (inject == BugInjection::kOversubscribe) {
    scheduler = std::make_unique<OversubscribingScheduler>(std::move(scheduler));
  }
  return scheduler;
}

OracleOptions OracleOptionsFor(const Scenario& scenario, const FuzzRunOptions& options,
                               bool record_schedules) {
  OracleOptions oracle;
  oracle.check_scale_up = scenario.scheduler == "sia";
  oracle.check_config_set = scenario.scheduler == "sia";
  oracle.record_schedules = record_schedules;
  oracle.max_recorded_violations = options.max_recorded_violations;
  // FaultOptions::failure_progress_loss default; scenarios do not vary it.
  return oracle;
}

}  // namespace

const std::vector<std::string>& AllSchedulers() {
  static const std::vector<std::string> kNames = {"sia",       "pollux", "gavel", "allox",
                                                  "shockwave", "themis", "fifo",  "srtf"};
  return kNames;
}

bool KnownScheduler(const std::string& name) {
  const std::vector<std::string>& names = AllSchedulers();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Scheduler> MakeFuzzScheduler(const Scenario& scenario) {
  const std::string& name = scenario.scheduler;
  if (name == "sia") {
    SiaOptions options;
    options.num_threads = scenario.sched_threads;
    options.warm_start = scenario.warm_start;
    options.candidate_cache = scenario.candidate_cache;
    return std::make_unique<SiaScheduler>(options);
  }
  if (name == "pollux") {
    PolluxOptions options;
    options.num_threads = scenario.sched_threads;
    return std::make_unique<PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  SIA_CHECK(false) << "unknown scheduler " << name;
  return nullptr;
}

FuzzRunResult RunScenarioWithOracle(const Scenario& scenario, const FuzzRunOptions& options) {
  FuzzRunResult result;
  const bool twins =
      options.differential && (scenario.scheduler == "sia" || scenario.scheduler == "pollux");

  InvariantOracle oracle(OracleOptionsFor(scenario, options, twins));
  {
    std::unique_ptr<Scheduler> scheduler =
        MakeSchedulerVariant(scenario, /*variant=*/0, options.inject);
    SimOptions sim = scenario.BuildSimOptions();
    sim.observer = &oracle;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
  }
  result.rounds = oracle.rounds_checked();
  result.violations = oracle.total_violations();
  result.recorded = oracle.violations();
  std::ostringstream report;
  report << oracle.Report();

  if (twins && options.inject == BugInjection::kNone) {
    // Twin runs must reproduce the primary's per-round requests exactly:
    // warm starts, candidate caches, and thread fan-out are all documented
    // as cost-only knobs.
    const char* kTwinNames[] = {"", "cold-solve", "thread-count"};
    for (int variant = 1; variant <= 2; ++variant) {
      InvariantOracle twin_oracle(OracleOptionsFor(scenario, options, true));
      std::unique_ptr<Scheduler> scheduler =
          MakeSchedulerVariant(scenario, variant, options.inject);
      SimOptions sim = scenario.BuildSimOptions();
      sim.observer = &twin_oracle;
      ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
      simulator.Run();
      if (twin_oracle.schedules() != oracle.schedules()) {
        ++result.violations;
        size_t round = 0;
        const size_t limit =
            std::min(oracle.schedules().size(), twin_oracle.schedules().size());
        while (round < limit && oracle.schedules()[round] == twin_oracle.schedules()[round]) {
          ++round;
        }
        report << "\n[differential] " << kTwinNames[variant]
               << " twin diverged from the primary run at round " << round << " ("
               << oracle.schedules().size() << " vs " << twin_oracle.schedules().size()
               << " rounds)";
      }
    }
  }

  result.ok = result.violations == 0;
  result.report = report.str();
  return result;
}

namespace {

bool StillFails(const Scenario& candidate, const FuzzRunOptions& options, int max_evals,
                int* evals) {
  if (*evals >= max_evals) {
    return false;
  }
  ++*evals;
  FuzzRunOptions quick = options;
  quick.differential = options.differential;
  return !RunScenarioWithOracle(candidate, quick).ok;
}

}  // namespace

Scenario ShrinkScenario(const Scenario& failing, const FuzzRunOptions& options, int max_evals,
                        int* evals_used) {
  Scenario best = failing;
  int evals = 0;
  bool improved = true;
  while (improved && evals < max_evals) {
    improved = false;

    // Jobs: drop chunks (ddmin granularity halving), then singles.
    for (size_t chunk = std::max<size_t>(1, best.jobs.size() / 2); chunk >= 1; chunk /= 2) {
      for (size_t start = 0; start + chunk <= best.jobs.size();) {
        Scenario candidate = best;
        candidate.jobs.erase(candidate.jobs.begin() + static_cast<long>(start),
                             candidate.jobs.begin() + static_cast<long>(start + chunk));
        if (!candidate.jobs.empty() && StillFails(candidate, options, max_evals, &evals)) {
          best = std::move(candidate);
          improved = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        break;
      }
    }

    // Scripted fault events, one at a time.
    for (size_t i = 0; i < best.faults.size();) {
      Scenario candidate = best;
      candidate.faults.erase(candidate.faults.begin() + static_cast<long>(i));
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++i;
      }
    }

    // Stochastic fault channels.
    if (best.node_mtbf_hours > 0.0 || best.degraded_frac > 0.0 ||
        best.telemetry_dropout_prob > 0.0 || best.telemetry_outlier_prob > 0.0) {
      Scenario candidate = best;
      candidate.node_mtbf_hours = 0.0;
      candidate.degraded_frac = 0.0;
      candidate.telemetry_dropout_prob = 0.0;
      candidate.telemetry_outlier_prob = 0.0;
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      }
    }

    // Node groups: drop whole groups, then shave nodes off groups.
    for (size_t g = 0; best.node_groups.size() > 1 && g < best.node_groups.size();) {
      Scenario candidate = best;
      candidate.node_groups.erase(candidate.node_groups.begin() + static_cast<long>(g));
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++g;
      }
    }
    for (size_t g = 0; g < best.node_groups.size(); ++g) {
      while (best.node_groups[g].num_nodes > 1) {
        Scenario candidate = best;
        --candidate.node_groups[g].num_nodes;
        if (StillFails(candidate, options, max_evals, &evals)) {
          best = std::move(candidate);
          improved = true;
        } else {
          break;
        }
      }
    }

    // Simulated horizon.
    while (best.max_hours > 0.5) {
      Scenario candidate = best;
      candidate.max_hours = std::max(0.5, best.max_hours / 2.0);
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      } else {
        break;
      }
    }
  }
  if (evals_used != nullptr) {
    *evals_used = evals;
  }
  return best;
}

}  // namespace sia::testing
