#include "src/testing/fuzz_harness.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/metrics/report.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/sim_observer.h"
#include "src/sim/simulator.h"
#include "src/snapshot/snapshot.h"

namespace sia::testing {
namespace {

// Bug-injection wrapper: delegates to the real policy, then inflates the
// first requested allocation past the type's live capacity. Exactly the
// class of defect the capacity invariant exists for.
class OversubscribingScheduler : public Scheduler {
 public:
  explicit OversubscribingScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name() + "+oversub"; }
  double round_duration_seconds() const override { return inner_->round_duration_seconds(); }

  ScheduleOutput Schedule(const ScheduleInput& input) override {
    ScheduleOutput output = inner_->Schedule(input);
    if (!output.empty() && input.cluster != nullptr) {
      auto& [id, config] = *output.begin();
      config.num_gpus = input.cluster->AvailableGpus(config.gpu_type) + 1;
    }
    return output;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
};

// One simulation of the scenario; `sia_variant` tweaks the Sia/Pollux fast
// paths for differential twins (0 = as configured, 1 = cold solves + no
// cache, 2 = alternate thread count).
std::unique_ptr<Scheduler> MakeSchedulerVariant(const Scenario& scenario, int variant,
                                                BugInjection inject) {
  Scenario adjusted = scenario;
  if (variant == 1) {
    adjusted.warm_start = false;
    adjusted.candidate_cache = false;
  } else if (variant == 2) {
    adjusted.sched_threads = scenario.sched_threads > 1 ? 1 : 3;
  }
  std::unique_ptr<Scheduler> scheduler = MakeFuzzScheduler(adjusted);
  if (inject == BugInjection::kOversubscribe) {
    scheduler = std::make_unique<OversubscribingScheduler>(std::move(scheduler));
  }
  return scheduler;
}

// Both Sia variants share the MILP contract the sia-specific checks encode.
bool IsSiaFamily(const std::string& name) { return name == "sia" || name == "sia-energy"; }

OracleOptions OracleOptionsFor(const Scenario& scenario, const FuzzRunOptions& options,
                               bool record_schedules) {
  OracleOptions oracle;
  oracle.check_scale_up = IsSiaFamily(scenario.scheduler);
  oracle.check_config_set = IsSiaFamily(scenario.scheduler);
  oracle.record_schedules = record_schedules;
  oracle.max_recorded_violations = options.max_recorded_violations;
  // Energy invariants mirror the scenario's simulator configuration.
  oracle.check_energy = scenario.track_energy != 0;
  oracle.power_cap_watts = scenario.power_cap_watts;
  // FaultOptions::failure_progress_loss default; scenarios do not vary it.
  return oracle;
}

// Sia knobs shared by both variants; "sia-energy" layers the energy/SLA
// tuning (and the scenario's cap + weight) on top.
SiaOptions SiaOptionsFor(const Scenario& scenario) {
  SiaOptions options;
  if (scenario.scheduler == "sia-energy") {
    options = MakeSiaEnergyOptions();
    if (scenario.energy_weight != 0.0) {
      options.energy_weight = scenario.energy_weight;
    }
    options.power_cap_watts = scenario.power_cap_watts;
  }
  options.num_threads = scenario.sched_threads;
  options.warm_start = scenario.warm_start;
  options.candidate_cache = scenario.candidate_cache;
  return options;
}

}  // namespace

const std::vector<std::string>& AllSchedulers() {
  static const std::vector<std::string> kNames = {"sia",    "pollux",    "gavel",
                                                  "allox",  "shockwave", "themis",
                                                  "fifo",   "srtf",      "sia-energy"};
  return kNames;
}

bool KnownScheduler(const std::string& name) {
  const std::vector<std::string>& names = AllSchedulers();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Scheduler> MakeFuzzScheduler(const Scenario& scenario) {
  const std::string& name = scenario.scheduler;
  if (name == "sia" || name == "sia-energy") {
    return std::make_unique<SiaScheduler>(SiaOptionsFor(scenario));
  }
  if (name == "pollux") {
    PolluxOptions options;
    options.num_threads = scenario.sched_threads;
    return std::make_unique<PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  SIA_CHECK(false) << "unknown scheduler " << name;
  return nullptr;
}

FuzzRunResult RunScenarioWithOracle(const Scenario& scenario, const FuzzRunOptions& options) {
  FuzzRunResult result;
  const bool twins =
      options.differential && (IsSiaFamily(scenario.scheduler) || scenario.scheduler == "pollux");

  InvariantOracle oracle(OracleOptionsFor(scenario, options, twins));
  {
    std::unique_ptr<Scheduler> scheduler =
        MakeSchedulerVariant(scenario, /*variant=*/0, options.inject);
    SimOptions sim = scenario.BuildSimOptions();
    sim.observer = &oracle;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
  }
  result.rounds = oracle.rounds_checked();
  result.violations = oracle.total_violations();
  result.recorded = oracle.violations();
  std::ostringstream report;
  report << oracle.Report();

  if (twins && options.inject == BugInjection::kNone) {
    // Twin runs must reproduce the primary's per-round requests exactly:
    // warm starts, candidate caches, and thread fan-out are all documented
    // as cost-only knobs.
    const char* kTwinNames[] = {"", "cold-solve", "thread-count"};
    for (int variant = 1; variant <= 2; ++variant) {
      InvariantOracle twin_oracle(OracleOptionsFor(scenario, options, true));
      std::unique_ptr<Scheduler> scheduler =
          MakeSchedulerVariant(scenario, variant, options.inject);
      SimOptions sim = scenario.BuildSimOptions();
      sim.observer = &twin_oracle;
      ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
      simulator.Run();
      if (twin_oracle.schedules() != oracle.schedules()) {
        ++result.violations;
        size_t round = 0;
        const size_t limit =
            std::min(oracle.schedules().size(), twin_oracle.schedules().size());
        while (round < limit && oracle.schedules()[round] == twin_oracle.schedules()[round]) {
          ++round;
        }
        report << "\n[differential] " << kTwinNames[variant]
               << " twin diverged from the primary run at round " << round << " ("
               << oracle.schedules().size() << " vs " << twin_oracle.schedules().size()
               << " rounds)";
      }
    }
  }

  result.ok = result.violations == 0;
  result.report = report.str();
  return result;
}

namespace {

// Tracks the last scheduling round the reference run reached, so the crash
// round can be drawn from a range the run is guaranteed to pass through.
class MaxRoundObserver : public SimObserver {
 public:
  void OnRoundScheduled(const RoundObservation& observation) override {
    max_round_ = std::max(max_round_, observation.round_index);
  }
  int64_t max_round() const { return max_round_; }

 private:
  int64_t max_round_ = -1;
};

// First byte where `a` and `b` diverge, with a little context for the
// report (the line containing the divergence, from the longer string).
std::string DescribeFirstDivergence(const std::string& a, const std::string& b) {
  size_t i = 0;
  const size_t limit = std::min(a.size(), b.size());
  while (i < limit && a[i] == b[i]) {
    ++i;
  }
  const std::string& longer = a.size() >= b.size() ? a : b;
  size_t line_start = longer.rfind('\n', i == 0 ? 0 : i - 1);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  size_t line_end = longer.find('\n', i);
  line_end = line_end == std::string::npos ? longer.size() : line_end;
  std::ostringstream out;
  out << "first divergence at byte " << i << " (" << a.size() << " vs " << b.size()
      << " bytes); line: " << longer.substr(line_start, line_end - line_start);
  return out.str();
}

std::string MetricsJson(const MetricsRegistry& metrics) {
  std::ostringstream out;
  metrics.WriteJson(out);
  return out.str();
}

std::string ResultsCsv(const SimResult& result) {
  std::ostringstream out;
  WriteJobResultsCsv(out, result);
  return out.str();
}

}  // namespace

CrashCheckResult CheckCrashEquivalence(const Scenario& scenario) {
  CrashCheckResult check;
  std::ostringstream report;

  // --- run A: uninterrupted reference ---
  std::ostringstream trace_a;
  MetricsRegistry metrics_a;
  SimResult result_a;
  MaxRoundObserver rounds;
  {
    JsonlTraceSink sink(trace_a);
    std::unique_ptr<Scheduler> scheduler = MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = &sink;
    sim.metrics = &metrics_a;
    sim.observer = &rounds;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    result_a = simulator.Run();
    sink.Flush();
  }
  check.rounds = rounds.max_round();

  int64_t crash_round = scenario.crash_round;
  if (crash_round < 0) {
    if (rounds.max_round() < 1) {
      // Nothing to interrupt: the run never reached a second round boundary.
      check.report = "run too short for a crash point; trivially equivalent";
      return check;
    }
    Rng crash_rng = Rng(scenario.seed).Fork("crash-round");
    crash_round = crash_rng.UniformInt(1, rounds.max_round());
  }
  check.crash_round = crash_round;

  // --- run B: identical run killed at the top of round `crash_round`, then
  // snapshotted. stop_after_round fires right after the round's checkpoint
  // opportunity, so SerializeState() here is exactly the payload a periodic
  // checkpoint at this boundary would have written. ---
  std::ostringstream trace_b;
  MetricsRegistry metrics_b;
  std::string payload;
  {
    JsonlTraceSink sink(trace_b);
    std::unique_ptr<Scheduler> scheduler = MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = &sink;
    sim.metrics = &metrics_b;
    sim.stop_after_round = crash_round;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    payload = simulator.SerializeState();
  }
  SnapshotMeta meta;
  std::string error;
  if (!ReadSnapshotMeta(payload, &meta, &error)) {
    check.ok = false;
    check.report = "snapshot meta unreadable: " + error;
    return check;
  }
  // The crashed run may have buffered records past the snapshot boundary; a
  // real resume truncates the sink file to the snapshot's offset, so mirror
  // that on the in-memory prefix.
  std::string trace_prefix = trace_b.str();
  if (meta.trace_offset < 0 || meta.trace_offset > static_cast<int64_t>(trace_prefix.size())) {
    check.ok = false;
    report << "snapshot trace_offset " << meta.trace_offset << " out of range (buffer "
           << trace_prefix.size() << " bytes)";
    check.report = report.str();
    return check;
  }
  trace_prefix.resize(static_cast<size_t>(meta.trace_offset));

  // --- run C: fresh simulator restored from B's payload, run to the end ---
  std::ostringstream trace_c;
  MetricsRegistry metrics_c;
  SimResult result_c;
  {
    JsonlTraceSink sink(trace_c);
    std::unique_ptr<Scheduler> scheduler = MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = &sink;
    sim.metrics = &metrics_c;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    if (!simulator.RestoreState(payload, &error)) {
      check.ok = false;
      check.report = "restore failed: " + error;
      return check;
    }
    result_c = simulator.Run();
    sink.Flush();
  }

  // --- crash-equivalence assertions ---
  const std::string resumed_trace = trace_prefix + trace_c.str();
  if (trace_a.str() != resumed_trace) {
    check.ok = false;
    report << "[crash] trace mismatch at round " << crash_round << ": "
           << DescribeFirstDivergence(trace_a.str(), resumed_trace) << "\n";
  }
  const std::string metrics_json_a = MetricsJson(metrics_a);
  const std::string metrics_json_c = MetricsJson(metrics_c);
  if (metrics_json_a != metrics_json_c) {
    check.ok = false;
    report << "[crash] metrics JSON mismatch at round " << crash_round << ": "
           << DescribeFirstDivergence(metrics_json_a, metrics_json_c) << "\n";
  }
  const std::string results_a = ResultsCsv(result_a);
  const std::string results_c = ResultsCsv(result_c);
  if (results_a != results_c) {
    check.ok = false;
    report << "[crash] per-job results mismatch at round " << crash_round << ": "
           << DescribeFirstDivergence(results_a, results_c) << "\n";
  }
  const bool scalars_equal =
      result_a.makespan_seconds == result_c.makespan_seconds &&
      result_a.all_finished == result_c.all_finished &&
      result_a.avg_contention == result_c.avg_contention &&
      result_a.max_contention == result_c.max_contention &&
      result_a.gpu_utilization == result_c.gpu_utilization &&
      result_a.timeline.size() == result_c.timeline.size() &&
      result_a.round_stats.size() == result_c.round_stats.size();
  if (!scalars_equal) {
    check.ok = false;
    report << "[crash] SimResult summary mismatch at round " << crash_round << " (makespan "
           << result_a.makespan_seconds << " vs " << result_c.makespan_seconds << ", contention "
           << result_a.avg_contention << " vs " << result_c.avg_contention << ")\n";
  }
  check.report = report.str();
  return check;
}

CoreCheckResult CheckCoreEquivalence(const Scenario& scenario) {
  CoreCheckResult check;
  std::ostringstream report;

  // One full run per core; everything else (scheduler instance config, RNG
  // seeds, fault schedule) identical.
  struct CoreRun {
    std::string trace;
    std::string metrics_json;
    std::string results_csv;
    SimResult result;
    int64_t rounds = -1;
  };
  auto run_core = [&](SimCore core) {
    CoreRun run;
    std::ostringstream trace;
    MetricsRegistry metrics;
    MaxRoundObserver rounds;
    {
      JsonlTraceSink sink(trace);
      std::unique_ptr<Scheduler> scheduler = MakeFuzzScheduler(scenario);
      SimOptions sim = scenario.BuildSimOptions();
      sim.core = core;
      sim.trace = &sink;
      sim.metrics = &metrics;
      sim.observer = &rounds;
      ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
      run.result = simulator.Run();
      sink.Flush();
    }
    run.trace = trace.str();
    run.metrics_json = MetricsJson(metrics);
    run.results_csv = ResultsCsv(run.result);
    run.rounds = rounds.max_round();
    return run;
  };
  const CoreRun dense = run_core(SimCore::kDense);
  const CoreRun event = run_core(SimCore::kEvent);
  check.rounds = dense.rounds;

  if (dense.trace != event.trace) {
    check.ok = false;
    report << "[core] trace mismatch (dense vs event): "
           << DescribeFirstDivergence(dense.trace, event.trace) << "\n";
  }
  if (dense.metrics_json != event.metrics_json) {
    check.ok = false;
    report << "[core] metrics JSON mismatch (dense vs event): "
           << DescribeFirstDivergence(dense.metrics_json, event.metrics_json) << "\n";
  }
  if (dense.results_csv != event.results_csv) {
    check.ok = false;
    report << "[core] per-job results mismatch (dense vs event): "
           << DescribeFirstDivergence(dense.results_csv, event.results_csv) << "\n";
  }
  const bool scalars_equal =
      dense.result.makespan_seconds == event.result.makespan_seconds &&
      dense.result.all_finished == event.result.all_finished &&
      dense.result.avg_contention == event.result.avg_contention &&
      dense.result.max_contention == event.result.max_contention &&
      dense.result.gpu_utilization == event.result.gpu_utilization &&
      dense.result.timeline.size() == event.result.timeline.size() &&
      dense.result.round_stats.size() == event.result.round_stats.size();
  if (!scalars_equal) {
    check.ok = false;
    report << "[core] SimResult summary mismatch (makespan " << dense.result.makespan_seconds
           << " vs " << event.result.makespan_seconds << ", contention "
           << dense.result.avg_contention << " vs " << event.result.avg_contention << ")\n";
  }
  check.report = report.str();
  return check;
}

IncrementalCheckResult CheckIncrementalEquivalence(const Scenario& scenario) {
  IncrementalCheckResult check;
  std::ostringstream report;

  // One full run per solver mode. Only Sia has an incremental path; for the
  // other policies both runs are identically configured, which turns the
  // comparison into a plain determinism check.
  struct ModeRun {
    std::vector<ScheduleOutput> schedules;
    std::string results_csv;
    SimResult result;
    int64_t rounds = -1;
  };
  auto run_mode = [&](bool incremental) {
    ModeRun run;
    std::unique_ptr<Scheduler> scheduler;
    if (IsSiaFamily(scenario.scheduler)) {
      SiaOptions options = SiaOptionsFor(scenario);
      options.incremental_lp = incremental;
      scheduler = std::make_unique<SiaScheduler>(options);
    } else {
      scheduler = MakeFuzzScheduler(scenario);
    }
    InvariantOracle oracle(OracleOptionsFor(scenario, FuzzRunOptions{}, /*record_schedules=*/true));
    SimOptions sim = scenario.BuildSimOptions();
    sim.observer = &oracle;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    run.result = simulator.Run();
    run.schedules = oracle.schedules();
    run.results_csv = ResultsCsv(run.result);
    run.rounds = oracle.rounds_checked();
    return run;
  };
  const ModeRun incremental = run_mode(true);
  const ModeRun from_scratch = run_mode(false);
  check.rounds = incremental.rounds;

  if (incremental.schedules != from_scratch.schedules) {
    check.ok = false;
    size_t round = 0;
    const size_t limit =
        std::min(incremental.schedules.size(), from_scratch.schedules.size());
    while (round < limit && incremental.schedules[round] == from_scratch.schedules[round]) {
      ++round;
    }
    report << "[incremental] schedule mismatch (incremental vs from-scratch) at round " << round
           << " (" << incremental.schedules.size() << " vs " << from_scratch.schedules.size()
           << " rounds)\n";
  }
  if (incremental.results_csv != from_scratch.results_csv) {
    check.ok = false;
    report << "[incremental] per-job results mismatch (incremental vs from-scratch): "
           << DescribeFirstDivergence(incremental.results_csv, from_scratch.results_csv) << "\n";
  }
  const bool scalars_equal =
      incremental.result.makespan_seconds == from_scratch.result.makespan_seconds &&
      incremental.result.all_finished == from_scratch.result.all_finished &&
      incremental.result.avg_contention == from_scratch.result.avg_contention &&
      incremental.result.max_contention == from_scratch.result.max_contention &&
      incremental.result.gpu_utilization == from_scratch.result.gpu_utilization &&
      incremental.result.timeline.size() == from_scratch.result.timeline.size() &&
      incremental.result.round_stats.size() == from_scratch.result.round_stats.size();
  if (!scalars_equal) {
    check.ok = false;
    report << "[incremental] SimResult summary mismatch (makespan "
           << incremental.result.makespan_seconds << " vs "
           << from_scratch.result.makespan_seconds << ", contention "
           << incremental.result.avg_contention << " vs " << from_scratch.result.avg_contention
           << ")\n";
  }
  check.report = report.str();
  return check;
}

namespace {

bool StillFails(const Scenario& candidate, const FuzzRunOptions& options, int max_evals,
                int* evals) {
  if (*evals >= max_evals) {
    return false;
  }
  ++*evals;
  FuzzRunOptions quick = options;
  quick.differential = options.differential;
  return !RunScenarioWithOracle(candidate, quick).ok;
}

}  // namespace

Scenario ShrinkScenario(const Scenario& failing, const FuzzRunOptions& options, int max_evals,
                        int* evals_used) {
  Scenario best = failing;
  int evals = 0;
  bool improved = true;
  while (improved && evals < max_evals) {
    improved = false;

    // Jobs: drop chunks (ddmin granularity halving), then singles.
    for (size_t chunk = std::max<size_t>(1, best.jobs.size() / 2); chunk >= 1; chunk /= 2) {
      for (size_t start = 0; start + chunk <= best.jobs.size();) {
        Scenario candidate = best;
        candidate.jobs.erase(candidate.jobs.begin() + static_cast<long>(start),
                             candidate.jobs.begin() + static_cast<long>(start + chunk));
        if (!candidate.jobs.empty() && StillFails(candidate, options, max_evals, &evals)) {
          best = std::move(candidate);
          improved = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        break;
      }
    }

    // Scripted fault events, one at a time.
    for (size_t i = 0; i < best.faults.size();) {
      Scenario candidate = best;
      candidate.faults.erase(candidate.faults.begin() + static_cast<long>(i));
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++i;
      }
    }

    // Energy channel: try turning the whole subsystem off (cap, tracking,
    // model overrides), then -- separately, so a cap-specific bug keeps its
    // cap -- stripping SLA classes from the job list.
    if (best.track_energy != 0 || best.power_cap_watts > 0.0 ||
        best.transition_joules >= 0.0 || best.idle_rounds_to_low_power > 0) {
      Scenario candidate = best;
      candidate.track_energy = 0;
      candidate.power_cap_watts = 0.0;
      candidate.transition_joules = -1.0;
      candidate.idle_rounds_to_low_power = 0;
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      }
    }
    {
      bool any_sla = false;
      for (const JobSpec& job : best.jobs) {
        any_sla = any_sla || job.sla_class != SlaClass::kBestEffort;
      }
      if (any_sla) {
        Scenario candidate = best;
        for (JobSpec& job : candidate.jobs) {
          job.sla_class = SlaClass::kBestEffort;
          job.deadline_seconds = 0.0;
        }
        if (StillFails(candidate, options, max_evals, &evals)) {
          best = std::move(candidate);
          improved = true;
        }
      }
    }

    // Stochastic fault channels.
    if (best.node_mtbf_hours > 0.0 || best.degraded_frac > 0.0 ||
        best.telemetry_dropout_prob > 0.0 || best.telemetry_outlier_prob > 0.0) {
      Scenario candidate = best;
      candidate.node_mtbf_hours = 0.0;
      candidate.degraded_frac = 0.0;
      candidate.telemetry_dropout_prob = 0.0;
      candidate.telemetry_outlier_prob = 0.0;
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      }
    }

    // Node groups: drop whole groups, then shave nodes off groups.
    for (size_t g = 0; best.node_groups.size() > 1 && g < best.node_groups.size();) {
      Scenario candidate = best;
      candidate.node_groups.erase(candidate.node_groups.begin() + static_cast<long>(g));
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++g;
      }
    }
    for (size_t g = 0; g < best.node_groups.size(); ++g) {
      while (best.node_groups[g].num_nodes > 1) {
        Scenario candidate = best;
        --candidate.node_groups[g].num_nodes;
        if (StillFails(candidate, options, max_evals, &evals)) {
          best = std::move(candidate);
          improved = true;
        } else {
          break;
        }
      }
    }

    // Simulated horizon.
    while (best.max_hours > 0.5) {
      Scenario candidate = best;
      candidate.max_hours = std::max(0.5, best.max_hours / 2.0);
      if (StillFails(candidate, options, max_evals, &evals)) {
        best = std::move(candidate);
        improved = true;
      } else {
        break;
      }
    }
  }
  if (evals_used != nullptr) {
    *evals_used = evals;
  }
  return best;
}

}  // namespace sia::testing
