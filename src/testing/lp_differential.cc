#include "src/testing/lp_differential.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/rng.h"
#include "src/solver/lp_model.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace sia::testing {
namespace {

constexpr double kTol = 1e-6;
constexpr int kMaxMessages = 16;

void Record(LpCheckStats* stats, std::string message) {
  ++stats->failures;
  if (static_cast<int>(stats->messages.size()) < kMaxMessages) {
    stats->messages.push_back(std::move(message));
  }
}

bool RowSatisfied(const LinearProgram& lp, int row, const std::vector<double>& x) {
  double lhs = 0.0;
  for (const auto& [var, coeff] : lp.row_terms(row)) {
    lhs += coeff * x[static_cast<size_t>(var)];
  }
  switch (lp.constraint_op(row)) {
    case ConstraintOp::kLessEq:
      return lhs <= lp.rhs(row) + kTol;
    case ConstraintOp::kGreaterEq:
      return lhs >= lp.rhs(row) - kTol;
    case ConstraintOp::kEqual:
      return std::abs(lhs - lp.rhs(row)) <= kTol;
  }
  return false;
}

bool PointFeasible(const LinearProgram& lp, const std::vector<double>& x) {
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (x[static_cast<size_t>(j)] < lp.lower_bound(j) - kTol ||
        x[static_cast<size_t>(j)] > lp.upper_bound(j) + kTol) {
      return false;
    }
  }
  for (int row = 0; row < lp.num_constraints(); ++row) {
    if (!RowSatisfied(lp, row, x)) {
      return false;
    }
  }
  return true;
}

double Objective(const LinearProgram& lp, const std::vector<double>& x) {
  double total = 0.0;
  for (int j = 0; j < lp.num_variables(); ++j) {
    total += lp.objective_coefficient(j) * x[static_cast<size_t>(j)];
  }
  return total;
}

bool NearlyEqual(double a, double b) {
  return std::abs(a - b) <= 1e-5 * std::max({1.0, std::abs(a), std::abs(b)});
}

// Exhaustive reference for binary programs: best objective over all 2^n
// assignments, or no value when none is feasible.
struct EnumerationResult {
  bool feasible = false;
  double objective = 0.0;
};

EnumerationResult EnumerateBinary(const LinearProgram& lp) {
  const int n = lp.num_variables();
  EnumerationResult best;
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    for (int j = 0; j < n; ++j) {
      x[static_cast<size_t>(j)] = (mask >> j) & 1u ? 1.0 : 0.0;
    }
    if (!PointFeasible(lp, x)) {
      continue;
    }
    const double value = Objective(lp, x);
    if (!best.feasible || value > best.objective) {
      best.feasible = true;
      best.objective = value;
    }
  }
  return best;
}

// Solves an n x n dense linear system in place (partial pivoting). Returns
// false when singular.
bool SolveDense(std::vector<std::vector<double>>& a, std::vector<double>& b,
                std::vector<double>* x) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot][col]) < 1e-10) {
      return false;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double value = b[row];
    for (size_t k = row + 1; k < n; ++k) {
      value -= a[row][k] * (*x)[k];
    }
    (*x)[row] = value / a[row][row];
  }
  return true;
}

// Dense reference for box LPs: the optimum of a feasible LP with finite
// variable bounds is attained at a vertex, i.e. a point where n linearly
// independent constraints (bounds or rows) are active. Enumerate every
// n-subset of the 2n + m candidate hyperplanes, solve the active-set system,
// keep the best feasible point.
EnumerationResult EnumerateVertices(const LinearProgram& lp) {
  const int n = lp.num_variables();
  const int m = lp.num_constraints();
  // Hyperplane k < 2n: x_{k/2} = (k odd ? upper : lower); k >= 2n: row k-2n.
  const int num_planes = 2 * n + m;
  EnumerationResult best;

  // Iterative combination enumeration over C(num_planes, n).
  std::vector<int> stack(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    stack[static_cast<size_t>(i)] = i;
  }
  while (true) {
    // Build and solve the active-set system for `stack`.
    std::vector<std::vector<double>> a(static_cast<size_t>(n),
                                       std::vector<double>(static_cast<size_t>(n), 0.0));
    std::vector<double> b(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      const int plane = stack[static_cast<size_t>(i)];
      if (plane < 2 * n) {
        const int var = plane / 2;
        a[static_cast<size_t>(i)][static_cast<size_t>(var)] = 1.0;
        b[static_cast<size_t>(i)] =
            plane % 2 == 1 ? lp.upper_bound(var) : lp.lower_bound(var);
      } else {
        for (const auto& [var, coeff] : lp.row_terms(plane - 2 * n)) {
          a[static_cast<size_t>(i)][static_cast<size_t>(var)] += coeff;
        }
        b[static_cast<size_t>(i)] = lp.rhs(plane - 2 * n);
      }
    }
    std::vector<double> x;
    if (SolveDense(a, b, &x) && PointFeasible(lp, x)) {
      const double value = Objective(lp, x);
      if (!best.feasible || value > best.objective) {
        best.feasible = true;
        best.objective = value;
      }
    }
    // Next combination.
    int i = n - 1;
    while (i >= 0 && stack[static_cast<size_t>(i)] == num_planes - n + i) {
      --i;
    }
    if (i < 0) {
      break;
    }
    ++stack[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      stack[static_cast<size_t>(k)] = stack[static_cast<size_t>(k - 1)] + 1;
    }
  }
  return best;
}

}  // namespace

std::string LpCheckStats::Report() const {
  std::ostringstream out;
  out << programs << " programs, " << failures << " failure(s)";
  for (const std::string& message : messages) {
    out << "\n  " << message;
  }
  return out.str();
}

void CheckMilpAgainstEnumeration(uint64_t seed, int num_programs, LpCheckStats* stats) {
  Rng rng = Rng(seed).Fork("lp-diff-milp");
  for (int p = 0; p < num_programs; ++p) {
    const int n = static_cast<int>(rng.UniformInt(2, 10));
    const int m = static_cast<int>(rng.UniformInt(1, 5));
    LinearProgram lp(ObjectiveSense::kMaximize);
    for (int j = 0; j < n; ++j) {
      lp.AddBinaryVariable(static_cast<double>(rng.UniformInt(-5, 5)));
    }
    for (int row = 0; row < m; ++row) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < n; ++j) {
        const int coeff = static_cast<int>(rng.UniformInt(-4, 4));
        if (coeff != 0) {
          terms.push_back({j, static_cast<double>(coeff)});
        }
      }
      if (terms.empty()) {
        terms.push_back({static_cast<int>(rng.UniformInt(0, n - 1)), 1.0});
      }
      const ConstraintOp op = rng.Bernoulli(0.1)
                                  ? ConstraintOp::kEqual
                                  : (rng.Bernoulli(0.5) ? ConstraintOp::kLessEq
                                                        : ConstraintOp::kGreaterEq);
      lp.AddConstraint(op, static_cast<double>(rng.UniformInt(-6, 8)), std::move(terms));
    }

    ++stats->programs;
    const EnumerationResult reference = EnumerateBinary(lp);
    const MilpSolution milp = SolveMilp(lp);
    std::ostringstream id;
    id << "milp-vs-enum seed=" << seed << " program=" << p;
    if (reference.feasible) {
      if (milp.status != SolveStatus::kOptimal) {
        Record(stats, id.str() + ": enumeration found a feasible point but MILP returned " +
                          ToString(milp.status));
        continue;
      }
      if (!PointFeasible(lp, milp.values)) {
        Record(stats, id.str() + ": MILP incumbent violates its own constraints");
        continue;
      }
      if (!NearlyEqual(milp.objective, reference.objective)) {
        std::ostringstream msg;
        msg << id.str() << ": MILP objective " << milp.objective << " != enumeration "
            << reference.objective;
        Record(stats, msg.str());
      }
    } else if (milp.status != SolveStatus::kInfeasible) {
      Record(stats, id.str() + ": program is infeasible by enumeration but MILP returned " +
                        ToString(milp.status));
    }
  }
}

void CheckSimplexAgainstEnumeration(uint64_t seed, int num_programs, LpCheckStats* stats) {
  Rng rng = Rng(seed).Fork("lp-diff-simplex");
  for (int p = 0; p < num_programs; ++p) {
    const int n = static_cast<int>(rng.UniformInt(2, 5));
    const int m = static_cast<int>(rng.UniformInt(0, 4));
    LinearProgram lp(ObjectiveSense::kMaximize);
    for (int j = 0; j < n; ++j) {
      const double lower = rng.Uniform(-3.0, 0.0);
      const double upper = lower + rng.Uniform(0.5, 4.0);
      lp.AddVariable(lower, upper, static_cast<double>(rng.UniformInt(-4, 4)));
    }
    for (int row = 0; row < m; ++row) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < n; ++j) {
        const int coeff = static_cast<int>(rng.UniformInt(-3, 3));
        if (coeff != 0) {
          terms.push_back({j, static_cast<double>(coeff)});
        }
      }
      if (terms.empty()) {
        terms.push_back({static_cast<int>(rng.UniformInt(0, n - 1)), 1.0});
      }
      lp.AddConstraint(rng.Bernoulli(0.5) ? ConstraintOp::kLessEq : ConstraintOp::kGreaterEq,
                       rng.Uniform(-6.0, 6.0), std::move(terms));
    }

    ++stats->programs;
    const EnumerationResult reference = EnumerateVertices(lp);
    const LpSolution solution = SolveLp(lp);
    std::ostringstream id;
    id << "simplex-vs-enum seed=" << seed << " program=" << p;
    if (reference.feasible) {
      if (solution.status != SolveStatus::kOptimal) {
        Record(stats, id.str() + ": vertex enumeration found a feasible point but simplex "
                                 "returned " +
                          ToString(solution.status));
        continue;
      }
      if (!PointFeasible(lp, solution.values)) {
        Record(stats, id.str() + ": simplex solution violates its own constraints");
        continue;
      }
      if (!NearlyEqual(solution.objective, reference.objective)) {
        std::ostringstream msg;
        msg << id.str() << ": simplex objective " << solution.objective
            << " != vertex enumeration " << reference.objective;
        Record(stats, msg.str());
      }
    } else if (solution.status != SolveStatus::kInfeasible) {
      Record(stats, id.str() + ": program is infeasible by vertex enumeration but simplex "
                               "returned " +
                        ToString(solution.status));
    }
  }
}

void CheckSiaShapedIlp(uint64_t seed, int num_programs, LpCheckStats* stats) {
  Rng rng = Rng(seed).Fork("lp-diff-sia");
  for (int p = 0; p < num_programs; ++p) {
    const int num_jobs = static_cast<int>(rng.UniformInt(2, 6));
    const int num_types = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<int> capacity(static_cast<size_t>(num_types));
    for (int t = 0; t < num_types; ++t) {
      capacity[static_cast<size_t>(t)] = static_cast<int>(rng.UniformInt(4, 16));
    }

    // One binary variable per (job, type, gpu-count) candidate; objective is
    // a random positive goodput.
    LinearProgram lp(ObjectiveSense::kMaximize);
    struct Candidate {
      int var;
      int job;
      int type;
      int gpus;
      double goodput;
    };
    std::vector<Candidate> candidates;
    for (int j = 0; j < num_jobs; ++j) {
      std::vector<LpTerm> gub;
      for (int t = 0; t < num_types; ++t) {
        for (int gpus = 1; gpus <= capacity[static_cast<size_t>(t)]; gpus *= 2) {
          if (!rng.Bernoulli(0.7)) {
            continue;  // Sparse candidate sets, like FilterConfigsForJob.
          }
          const double goodput = rng.Uniform(0.1, 4.0) * gpus;
          const int var = lp.AddBinaryVariable(goodput);
          candidates.push_back({var, j, t, gpus, goodput});
          gub.push_back({var, 1.0});
        }
      }
      if (!gub.empty()) {
        lp.AddConstraint(ConstraintOp::kLessEq, 1.0, std::move(gub));
      }
    }
    for (int t = 0; t < num_types; ++t) {
      std::vector<LpTerm> knapsack;
      for (const Candidate& candidate : candidates) {
        if (candidate.type == t) {
          knapsack.push_back({candidate.var, static_cast<double>(candidate.gpus)});
        }
      }
      if (!knapsack.empty()) {
        lp.AddConstraint(ConstraintOp::kLessEq,
                         static_cast<double>(capacity[static_cast<size_t>(t)]),
                         std::move(knapsack));
      }
    }
    if (candidates.empty()) {
      continue;  // Nothing to check; do not count the program.
    }

    ++stats->programs;
    std::ostringstream id;
    id << "sia-ilp seed=" << seed << " program=" << p;

    const MilpSolution cold = SolveMilp(lp);
    if (cold.status != SolveStatus::kOptimal) {
      // The empty allocation is always feasible, so this must solve.
      Record(stats, id.str() + ": cold solve returned " + std::string(ToString(cold.status)));
      continue;
    }
    if (!PointFeasible(lp, cold.values)) {
      Record(stats, id.str() + ": incumbent violates GUB/capacity constraints");
      continue;
    }
    for (int j = 0; j < lp.num_variables(); ++j) {
      const double value = cold.values[static_cast<size_t>(j)];
      if (std::abs(value - std::round(value)) > 1e-6) {
        Record(stats, id.str() + ": incumbent is not integral");
        break;
      }
    }

    // Greedy packing lower bound: best-goodput-first, respecting the one-
    // config-per-job and per-type capacity rows. Always feasible, so the
    // optimal objective must dominate it.
    std::vector<const Candidate*> order;
    for (const Candidate& candidate : candidates) {
      order.push_back(&candidate);
    }
    std::sort(order.begin(), order.end(), [](const Candidate* a, const Candidate* b) {
      if (a->goodput != b->goodput) {
        return a->goodput > b->goodput;
      }
      return a->var < b->var;
    });
    std::vector<bool> job_done(static_cast<size_t>(num_jobs), false);
    std::vector<int> remaining = capacity;
    double greedy_objective = 0.0;
    for (const Candidate* candidate : order) {
      if (job_done[static_cast<size_t>(candidate->job)] ||
          remaining[static_cast<size_t>(candidate->type)] < candidate->gpus) {
        continue;
      }
      job_done[static_cast<size_t>(candidate->job)] = true;
      remaining[static_cast<size_t>(candidate->type)] -= candidate->gpus;
      greedy_objective += candidate->goodput;
    }
    if (cold.objective < greedy_objective - kTol) {
      std::ostringstream msg;
      msg << id.str() << ": MILP objective " << cold.objective
          << " below the greedy packing bound " << greedy_objective;
      Record(stats, msg.str());
    }

    // Small instances: full enumeration must agree exactly.
    if (lp.num_variables() <= 14) {
      const EnumerationResult reference = EnumerateBinary(lp);
      if (!reference.feasible || !NearlyEqual(cold.objective, reference.objective)) {
        std::ostringstream msg;
        msg << id.str() << ": MILP objective " << cold.objective << " != enumeration "
            << (reference.feasible ? reference.objective : -1.0);
        Record(stats, msg.str());
      }
    }

    // Warm re-solve of the identical program: the warm start is a hint and
    // must not change the result.
    MilpOptions warm_options;
    warm_options.warm_start = &cold.next_warm_start;
    const MilpSolution warm = SolveMilp(lp, warm_options);
    if (warm.status != cold.status || !NearlyEqual(warm.objective, cold.objective)) {
      std::ostringstream msg;
      msg << id.str() << ": warm re-solve changed the result (" << ToString(warm.status) << " "
          << warm.objective << " vs " << ToString(cold.status) << " " << cold.objective << ")";
      Record(stats, msg.str());
    }
  }
}

}  // namespace sia::testing
