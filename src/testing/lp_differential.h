// Differential testing of the LP/MILP stack against dense reference
// implementations that are too slow for production but obviously correct on
// small programs:
//
//  * random binary ILPs vs exhaustive enumeration of all 2^n assignments
//    (SolveMilp must agree on feasibility and optimal objective);
//  * random box LPs vs dense active-set vertex enumeration (the optimum of
//    a bounded feasible LP is attained at a vertex; SolveLp must agree on
//    feasibility and objective);
//  * random Sia-shaped scheduling ILPs (one GUB row per job, one knapsack
//    row per GPU type, Eq. 4/5 shape): the incumbent must be integral and
//    feasible, its objective must dominate a greedy packing lower bound,
//    match exhaustive enumeration on small instances, and be bit-reproduced
//    by a warm-started re-solve (the MilpWarmStart contract).
//
// Used by tools/sia_fuzz --lp-checks and the fuzz_oracle_test self-checks.
#ifndef SIA_SRC_TESTING_LP_DIFFERENTIAL_H_
#define SIA_SRC_TESTING_LP_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sia::testing {

struct LpCheckStats {
  int programs = 0;   // Programs generated and cross-checked.
  int failures = 0;   // Programs where the solvers and the oracle disagreed.
  std::vector<std::string> messages;  // One line per failure (capped).

  bool ok() const { return failures == 0; }
  std::string Report() const;
};

// Each check generates `num_programs` random programs from `seed` and
// appends to `stats`. Deterministic in (seed, num_programs).
void CheckMilpAgainstEnumeration(uint64_t seed, int num_programs, LpCheckStats* stats);
void CheckSimplexAgainstEnumeration(uint64_t seed, int num_programs, LpCheckStats* stats);
void CheckSiaShapedIlp(uint64_t seed, int num_programs, LpCheckStats* stats);

}  // namespace sia::testing

#endif  // SIA_SRC_TESTING_LP_DIFFERENTIAL_H_
