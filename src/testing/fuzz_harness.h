// Fuzz harness: runs a Scenario through ClusterSimulator with the invariant
// oracle attached, optionally cross-checks Sia/Pollux against differential
// twin runs (warm-vs-cold solves, threaded-vs-serial candidate generation --
// both are documented to be output-identical), and shrinks failing
// scenarios to minimal reproducers with a ddmin-style greedy reduction.
//
// Bug injection exists so the pipeline can be demonstrated end to end: the
// kOversubscribe wrapper turns any scheduler into one that requests more
// GPUs than AvailableGpus, which the oracle must catch and the shrinker
// must reduce.
#ifndef SIA_SRC_TESTING_FUZZ_HARNESS_H_
#define SIA_SRC_TESTING_FUZZ_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/schedulers/scheduler.h"
#include "src/testing/invariant_oracle.h"
#include "src/testing/scenario.h"

namespace sia::testing {

// Every named policy the repo ships (tools/sia_simulate accepts the same
// set).
const std::vector<std::string>& AllSchedulers();
bool KnownScheduler(const std::string& name);

// Builds the scenario's scheduler with its knobs applied (threads /
// warm-start / candidate-cache for sia, threads for pollux).
std::unique_ptr<Scheduler> MakeFuzzScheduler(const Scenario& scenario);

enum class BugInjection {
  kNone,
  // Wraps the scheduler so one request per round exceeds AvailableGpus.
  kOversubscribe,
};

struct FuzzRunOptions {
  // Run differential twins for sia/pollux: a second simulation with the
  // fast paths reconfigured (cold solves / different thread count) whose
  // per-round ScheduleOutput must be identical.
  bool differential = true;
  BugInjection inject = BugInjection::kNone;
  // Oracle knobs derived from the scenario are set automatically; this only
  // bounds how many violations are kept.
  int max_recorded_violations = 16;
};

struct FuzzRunResult {
  bool ok = true;
  int64_t violations = 0;      // Oracle violations + differential mismatches.
  int64_t rounds = 0;
  std::vector<OracleViolation> recorded;
  std::string report;          // Human-readable summary of what failed.
};

// One fuzz iteration: simulate the scenario under the oracle (plus twins
// when enabled). Deterministic in the scenario.
FuzzRunResult RunScenarioWithOracle(const Scenario& scenario,
                                    const FuzzRunOptions& options = {});

// Crash-point mode (ISSUE 5): checkpoint/resume crash-equivalence for one
// scenario, fully in-process. Three runs share the scenario's inputs:
//   A  uninterrupted reference (trace -> buffer, own metrics registry);
//   B  identical run stopped at the top of round `crash_round`
//      (SimOptions::stop_after_round), then SerializeState() -- exactly the
//      state a checkpoint at that boundary captures;
//   C  a fresh simulator restored from B's payload, run to completion.
// The check asserts A's trace bytes == B's trace prefix (truncated to the
// snapshot's trace_offset) + C's trace bytes, A's and C's metrics JSON are
// byte-identical, and the per-job results CSV plus the SimResult summary
// scalars match bit-exactly (policy wall-clock cost is excluded: it is the
// one documented nondeterministic output).
struct CrashCheckResult {
  bool ok = true;
  int64_t crash_round = -1;  // Round actually used (derived when the
                             // scenario left it at -1).
  int64_t rounds = 0;        // Last scheduled round of the reference run.
  std::string report;        // Human-readable failure description.
};

// Deterministic in the scenario: the crash round, when not pinned by
// `scenario.crash_round`, is drawn from Rng(seed).Fork("crash-round") within
// the reference run's observed round range.
CrashCheckResult CheckCrashEquivalence(const Scenario& scenario);

// Core-equivalence mode (ISSUE 7): the dense reference scan and the
// event-driven core must be indistinguishable byte-for-byte. Two full runs
// of the scenario -- one per SimCore, everything else identical -- are
// compared on trace bytes, metrics JSON, per-job results CSV, and the
// SimResult summary scalars. `scenario.sim_core` is ignored (both cores are
// always exercised).
struct CoreCheckResult {
  bool ok = true;
  int64_t rounds = 0;   // Scheduling rounds of the dense reference run.
  std::string report;   // Human-readable failure description.
};
CoreCheckResult CheckCoreEquivalence(const Scenario& scenario);

// Incremental-solve twin mode (ISSUE 8): the same scenario simulated twice
// -- once with the persistent IncrementalLp session enabled (Sia's default)
// and once with it forced off, so every root relaxation is solved from
// scratch -- must be indistinguishable in everything the schedule
// determines: per-round ScheduleOutputs, the per-job results CSV, and the
// SimResult summary scalars. Solver-effort metrics (pivot counts,
// warm-start tallies) legitimately differ between the two paths, so raw
// trace/metrics bytes are deliberately NOT compared. For policies without
// an incremental path the twin degenerates to a same-config determinism
// check, which must also hold.
struct IncrementalCheckResult {
  bool ok = true;
  int64_t rounds = 0;  // Scheduling rounds of the incremental run.
  std::string report;  // Human-readable failure description.
};
IncrementalCheckResult CheckIncrementalEquivalence(const Scenario& scenario);

// Greedy ddmin-style shrink: repeatedly tries dropping jobs, fault events,
// stochastic fault channels, node groups, and simulated hours, keeping any
// reduction that still fails, until a fixed point or `max_evals` predicate
// evaluations. Returns the smallest still-failing scenario found (the input
// itself when nothing could be removed).
Scenario ShrinkScenario(const Scenario& failing, const FuzzRunOptions& options,
                        int max_evals = 200, int* evals_used = nullptr);

}  // namespace sia::testing

#endif  // SIA_SRC_TESTING_FUZZ_HARNESS_H_
