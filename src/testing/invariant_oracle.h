// Cluster-invariant oracle: a SimObserver that machine-checks every
// scheduling round of a ClusterSimulator run against the invariants the
// whole reproduction stands on, and the final SimResult against the
// lifecycle it watched. Attach it via SimOptions::observer; it never aborts
// and never mutates the run -- violations are collected and reported so the
// fuzz driver (tools/sia_fuzz) can shrink the scenario that produced them.
//
// Invariant catalogue (DESIGN.md section 9):
//  time       -- virtual time and round indices advance strictly.
//  capacity   -- requested GPUs per type never exceed AvailableGpus (the
//                live, fault-adjusted view); per-node placements fit node
//                capacity; no placement touches a down node.
//  config     -- every requested configuration is well-formed, within the
//                job's declared caps, from the §3.3 set for non-scatter
//                allocations, and (for rigid jobs) exactly rigid_num_gpus.
//  scale-up   -- with check_scale_up (Sia's contract): GPU count <=
//                max(min replicas, scale_up_factor x peak_num_gpus).
//  placement  -- placements echo the requested config, split per the
//                placer's rules (partial nodes never split; distributed
//                allocations take dedicated whole nodes).
//  conserve   -- every requested job is either placed or reported evicted;
//                no eviction strands capacity: a job with a live same-config
//                placement history must not stay evicted while its exact
//                previous slots are free (the placer's stability contract
//                forbids moving it anywhere else), and a job without such a
//                history must not stay evicted while its configuration still
//                fits the leftover free capacity.
//  lifecycle  -- jobs arrive after their submit time, never resurrect after
//                retiring, and end up in SimResult::jobs exactly once.
//  accounting -- service_gpu_seconds grows by exactly granted-GPUs x round
//                while running; progress is monotone except a bounded
//                rollback on failure eviction; peak_num_gpus tracks grants.
//  energy     -- with check_energy (DESIGN.md §14): reported joules equal
//                sum(state power x dwell) re-derived by an independent mirror
//                of the low-power state machine, never negative; with a
//                power_cap_watts, placed active draw never exceeds the cap.
//  sla        -- SimResult::sla matches the per-job rows; per-job tardiness
//                equals max(0, jct - deadline) and flags are consistent.
#ifndef SIA_SRC_TESTING_INVARIANT_ORACLE_H_
#define SIA_SRC_TESTING_INVARIANT_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/sim_observer.h"
#include "src/sim/simulator.h"

namespace sia::testing {

struct OracleOptions {
  // Enforce the <=2x scale-up rule on requested configurations. This is
  // Sia's contract (§3.1); baselines with rigid or policy-specific sizing
  // run with it off.
  bool check_scale_up = false;
  int scale_up_factor = 2;
  // Require every non-scatter configuration to be a member of the prebuilt
  // §3.3 set. Sia's contract; baselines map bare GPU counts onto shapes via
  // ShapeForCount, which is structurally valid but can step outside the
  // power-of-two set, so they run with it off (the structural rules --
  // counts fit node sizes and node counts -- are always enforced).
  bool check_config_set = false;
  // Allowed fractional progress rollback on a failure eviction; mirror
  // FaultOptions::failure_progress_loss for the run under check.
  double failure_progress_loss = 0.02;
  // Energy-conservation invariants (DESIGN.md §14). With check_energy the
  // oracle mirrors the simulator's per-type low-power state machine from the
  // observed placements alone and, at run end, requires the SimResult energy
  // accumulators to (a) be non-negative and (b) match its independent
  // re-derivation (joules = sum of state-power x dwell). Enable only for
  // runs with SimOptions::energy.track set.
  bool check_energy = false;
  // With a positive cap: the active draw of each round's *placed* jobs must
  // never exceed it (the simulator trims requests before placement, so a
  // violation here means cap enforcement failed). Checked independently of
  // check_energy, mirroring SimOptions::energy.power_cap_watts.
  double power_cap_watts = 0.0;
  // Record each round's requested ScheduleOutput so two runs can be diffed
  // (the warm-vs-cold / threaded-vs-serial differential harness).
  bool record_schedules = false;
  // Stop recording individual violations after this many (counting
  // continues) so a hot invariant cannot swamp memory or logs.
  int max_recorded_violations = 64;
};

struct OracleViolation {
  int64_t round = 0;
  double time_seconds = 0.0;
  std::string invariant;  // Catalogue key, e.g. "capacity", "conserve".
  std::string message;

  std::string ToString() const;
};

class InvariantOracle : public SimObserver {
 public:
  explicit InvariantOracle(OracleOptions options = {});

  void OnRoundScheduled(const RoundObservation& observation) override;
  void OnRunEnd(const SimResult& result) override;

  bool ok() const { return total_violations_ == 0; }
  // First max_recorded_violations violations, in detection order.
  const std::vector<OracleViolation>& violations() const { return violations_; }
  int64_t total_violations() const { return total_violations_; }
  int64_t rounds_checked() const { return rounds_checked_; }
  bool run_ended() const { return run_ended_; }

  // Requested allocations per round (record_schedules only).
  const std::vector<ScheduleOutput>& schedules() const { return schedules_; }

  // Multi-line human-readable report ("ok" summary or every recorded
  // violation).
  std::string Report() const;

 private:
  struct JobTrack {
    bool seen = false;
    bool retired = false;           // Disappeared from the active set.
    double submit_time = 0.0;
    double last_progress = 0.0;
    double last_service = 0.0;
    int last_peak = 0;
    int last_restarts = 0;
    bool last_running = false;      // Had a placement going into last round.
    int granted_gpus = 0;           // GPUs granted by last round's placer.
    double last_round_duration = 0.0;
  };

  void AddViolation(const RoundObservation* observation, const std::string& invariant,
                    std::string message);
  void CheckTime(const RoundObservation& observation);
  void CheckInput(const RoundObservation& observation);
  void CheckDesired(const RoundObservation& observation);
  void CheckPlacements(const RoundObservation& observation);
  void CheckConservation(const RoundObservation& observation);
  void CheckEnergy(const RoundObservation& observation);
  void CheckEnergyResult(const SimResult& result);
  void CheckSlaResult(const SimResult& result);
  void UpdateTracks(const RoundObservation& observation);

  OracleOptions options_;
  std::vector<OracleViolation> violations_;
  int64_t total_violations_ = 0;
  int64_t rounds_checked_ = 0;
  int64_t last_round_index_ = -1;
  double last_now_ = -1.0;
  bool run_ended_ = false;
  std::map<JobId, JobTrack> tracks_;
  // Last round's placements: the oracle's model of the `previous` map the
  // placer sees, used by the conserve check's stability-aware rules.
  std::map<JobId, Placement> prev_placements_;
  std::vector<ScheduleOutput> schedules_;
  // Energy mirror (check_energy): an independent replay of the simulator's
  // per-type low-power state machine, fed only by observed placements and
  // the live cluster view, compared against SimResult::energy at run end.
  struct EnergyMirror {
    double active_joules = 0.0;
    double idle_joules = 0.0;
    double low_power_joules = 0.0;
    double transition_joules = 0.0;
    double peak_busy_watts = 0.0;
    std::vector<int> parked;
    std::vector<std::vector<int>> idle_history;
  };
  EnergyMirror energy_;
};

}  // namespace sia::testing

#endif  // SIA_SRC_TESTING_INVARIANT_ORACLE_H_
