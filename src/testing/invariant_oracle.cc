#include "src/testing/invariant_oracle.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "src/models/estimator.h"

namespace sia::testing {
namespace {

constexpr double kAbsEps = 1e-9;

// Relative tolerance for GPU-second accounting (values reach 1e6; exact
// arithmetic modulo float rounding).
bool NearlyEqual(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string ConfigString(const Config& config) {
  std::ostringstream out;
  out << "(n=" << config.num_nodes << ", g=" << config.num_gpus << ", t=" << config.gpu_type
      << (config.scatter ? ", scatter" : "") << ")";
  return out.str();
}

// Free GPUs per node after all of this round's placements are charged.
std::vector<int> FreeGpusPerNode(const RoundObservation& observation) {
  const ClusterSpec& cluster = *observation.cluster;
  std::vector<int> free(static_cast<size_t>(cluster.num_nodes()), 0);
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    free[n] = cluster.NodeUp(n) ? cluster.node(n).num_gpus : 0;
  }
  for (const auto& [job, placement] : observation.placed->placements) {
    for (size_t k = 0; k < placement.node_ids.size(); ++k) {
      const int node = placement.node_ids[k];
      if (node >= 0 && node < cluster.num_nodes()) {
        free[node] -= placement.gpus_per_node[k];
      }
    }
  }
  return free;
}

// Whether `config` could still be placed on the residual free capacity.
// Mirrors the placer's shape rules: single-node allocations need one node
// with enough free GPUs, distributed allocations need num_nodes fully-free
// nodes, scatter allocations only need aggregate capacity.
bool ConfigFitsResidual(const ClusterSpec& cluster, const std::vector<int>& free,
                        const Config& config) {
  if (config.scatter) {
    int total = 0;
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      if (cluster.node(n).gpu_type == config.gpu_type) {
        total += std::max(0, free[n]);
      }
    }
    return total >= config.num_gpus;
  }
  if (!config.is_distributed()) {
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      if (cluster.node(n).gpu_type == config.gpu_type && free[n] >= config.num_gpus) {
        return true;
      }
    }
    return false;
  }
  const int max_demand =
      config.num_gpus / config.num_nodes + (config.num_gpus % config.num_nodes != 0 ? 1 : 0);
  int fully_free = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const NodeSpec& node = cluster.node(n);
    if (node.gpu_type == config.gpu_type && cluster.NodeUp(n) && free[n] == node.num_gpus &&
        node.num_gpus >= max_demand) {
      ++fully_free;
    }
  }
  return fully_free >= config.num_nodes;
}

}  // namespace

std::string OracleViolation::ToString() const {
  std::ostringstream out;
  out << "[" << invariant << "] round " << round << " t=" << time_seconds << "s: " << message;
  return out.str();
}

InvariantOracle::InvariantOracle(OracleOptions options) : options_(options) {}

void InvariantOracle::AddViolation(const RoundObservation* observation,
                                   const std::string& invariant, std::string message) {
  ++total_violations_;
  if (static_cast<int>(violations_.size()) >= options_.max_recorded_violations) {
    return;
  }
  OracleViolation violation;
  if (observation != nullptr) {
    violation.round = observation->round_index;
    violation.time_seconds = observation->now_seconds;
  } else {
    violation.round = last_round_index_;
    violation.time_seconds = last_now_;
  }
  violation.invariant = invariant;
  violation.message = std::move(message);
  violations_.push_back(std::move(violation));
}

void InvariantOracle::CheckTime(const RoundObservation& observation) {
  if (observation.round_index <= last_round_index_) {
    std::ostringstream out;
    out << "round index went " << last_round_index_ << " -> " << observation.round_index;
    AddViolation(&observation, "time", out.str());
  }
  if (observation.now_seconds < last_now_ - kAbsEps ||
      (last_round_index_ >= 0 && observation.now_seconds <= last_now_ - kAbsEps)) {
    std::ostringstream out;
    out << "virtual time went " << last_now_ << " -> " << observation.now_seconds;
    AddViolation(&observation, "time", out.str());
  }
  if (observation.round_duration_seconds <= 0.0) {
    AddViolation(&observation, "time", "non-positive round duration");
  }
}

void InvariantOracle::CheckInput(const RoundObservation& observation) {
  std::set<JobId> seen_ids;
  for (const JobView& job : observation.input->jobs) {
    if (job.spec == nullptr || job.estimator == nullptr) {
      AddViolation(&observation, "lifecycle", "JobView with null spec or estimator");
      continue;
    }
    const JobId id = job.spec->id;
    if (!seen_ids.insert(id).second) {
      std::ostringstream out;
      out << "job " << id << " appears twice in the scheduler snapshot";
      AddViolation(&observation, "lifecycle", out.str());
    }
    if (job.spec->submit_time > observation.now_seconds + kAbsEps) {
      std::ostringstream out;
      out << "job " << id << " active before its submit time (" << job.spec->submit_time << " > "
          << observation.now_seconds << ")";
      AddViolation(&observation, "lifecycle", out.str());
    }
    if (job.progress_fraction < -kAbsEps || job.progress_fraction > 1.0 + 1e-6) {
      std::ostringstream out;
      out << "job " << id << " progress_fraction " << job.progress_fraction << " out of [0, 1]";
      AddViolation(&observation, "accounting", out.str());
    }
    if (job.service_gpu_seconds < -kAbsEps) {
      std::ostringstream out;
      out << "job " << id << " negative service " << job.service_gpu_seconds;
      AddViolation(&observation, "accounting", out.str());
    }
    if (job.current_config.num_gpus > 0 && job.peak_num_gpus < job.current_config.num_gpus) {
      std::ostringstream out;
      out << "job " << id << " peak_num_gpus " << job.peak_num_gpus
          << " below current allocation " << job.current_config.num_gpus;
      AddViolation(&observation, "accounting", out.str());
    }
    const auto track_it = tracks_.find(id);
    if (track_it != tracks_.end() && track_it->second.retired) {
      std::ostringstream out;
      out << "job " << id << " resurrected after retiring";
      AddViolation(&observation, "lifecycle", out.str());
    }
  }
}

void InvariantOracle::CheckDesired(const RoundObservation& observation) {
  const ClusterSpec& cluster = *observation.cluster;
  std::map<JobId, const JobView*> views;
  for (const JobView& job : observation.input->jobs) {
    if (job.spec != nullptr) {
      views[job.spec->id] = &job;
    }
  }

  std::vector<int> requested(static_cast<size_t>(cluster.num_gpu_types()), 0);
  for (const auto& [id, config] : *observation.desired) {
    const auto view_it = views.find(id);
    if (view_it == views.end()) {
      std::ostringstream out;
      out << "allocation for job " << id << " that is not in the scheduler snapshot";
      AddViolation(&observation, "lifecycle", out.str());
      continue;
    }
    const JobView& job = *view_it->second;
    if (config.num_gpus <= 0 || config.num_nodes <= 0 || config.gpu_type < 0 ||
        config.gpu_type >= cluster.num_gpu_types()) {
      std::ostringstream out;
      out << "job " << id << " malformed config " << ConfigString(config);
      AddViolation(&observation, "config", out.str());
      continue;
    }
    requested[config.gpu_type] += config.num_gpus;
    if (!config.scatter) {
      // Structural validity (all policies): the shape must be realizable on
      // this cluster's node inventory.
      int max_per_node = 0;
      int type_nodes = 0;
      for (int n = 0; n < cluster.num_nodes(); ++n) {
        if (cluster.node(n).gpu_type == config.gpu_type) {
          ++type_nodes;
          max_per_node = std::max(max_per_node, cluster.node(n).num_gpus);
        }
      }
      if (config.num_nodes > type_nodes || config.num_gpus < config.num_nodes ||
          config.num_gpus > config.num_nodes * max_per_node) {
        std::ostringstream out;
        out << "job " << id << " config " << ConfigString(config)
            << " cannot be realized on " << type_nodes << " nodes of up to " << max_per_node
            << " GPUs";
        AddViolation(&observation, "config", out.str());
      }
      if (options_.check_config_set) {
        bool in_set = false;
        for (const Config& candidate : *observation.config_set) {
          if (candidate.num_nodes == config.num_nodes && candidate.num_gpus == config.num_gpus &&
              candidate.gpu_type == config.gpu_type) {
            in_set = true;
            break;
          }
        }
        if (!in_set) {
          std::ostringstream out;
          out << "job " << id << " config " << ConfigString(config)
              << " is not in the §3.3 configuration set";
          AddViolation(&observation, "config", out.str());
        }
      }
    }
    if (config.num_gpus > job.spec->max_num_gpus) {
      std::ostringstream out;
      out << "job " << id << " granted " << config.num_gpus << " GPUs above its max_num_gpus "
          << job.spec->max_num_gpus;
      AddViolation(&observation, "config", out.str());
    }
    if (job.spec->adaptivity == AdaptivityMode::kRigid &&
        config.num_gpus != job.spec->rigid_num_gpus) {
      std::ostringstream out;
      out << "rigid job " << id << " granted " << config.num_gpus << " GPUs instead of "
          << job.spec->rigid_num_gpus;
      AddViolation(&observation, "config", out.str());
    }
    if (options_.check_scale_up && job.spec->adaptivity != AdaptivityMode::kRigid) {
      const int min_gpus = std::max(1, job.estimator->MinGpus(config.gpu_type));
      const int cap = job.peak_num_gpus <= 0
                          ? min_gpus
                          : std::max(min_gpus, options_.scale_up_factor * job.peak_num_gpus);
      if (config.num_gpus > cap) {
        std::ostringstream out;
        out << "job " << id << " scaled to " << config.num_gpus << " GPUs past the "
            << options_.scale_up_factor << "x cap " << cap << " (peak " << job.peak_num_gpus
            << ")";
        AddViolation(&observation, "scale-up", out.str());
      }
    }
  }
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    if (requested[t] > cluster.AvailableGpus(t)) {
      std::ostringstream out;
      out << "requested " << requested[t] << " GPUs of type " << cluster.gpu_type(t).name
          << " but only " << cluster.AvailableGpus(t) << " are available";
      AddViolation(&observation, "capacity", out.str());
    }
  }
}

void InvariantOracle::CheckPlacements(const RoundObservation& observation) {
  const ClusterSpec& cluster = *observation.cluster;
  std::vector<int> used(static_cast<size_t>(cluster.num_nodes()), 0);
  std::vector<int> jobs_on_node(static_cast<size_t>(cluster.num_nodes()), 0);
  std::vector<uint8_t> node_has_distributed(static_cast<size_t>(cluster.num_nodes()), 0);

  for (const auto& [id, placement] : observation.placed->placements) {
    const auto desired_it = observation.desired->find(id);
    if (desired_it == observation.desired->end()) {
      std::ostringstream out;
      out << "job " << id << " placed without a requested allocation";
      AddViolation(&observation, "placement", out.str());
      continue;
    }
    if (!(placement.config == desired_it->second)) {
      std::ostringstream out;
      out << "job " << id << " placed as " << ConfigString(placement.config)
          << " but the policy requested " << ConfigString(desired_it->second);
      AddViolation(&observation, "placement", out.str());
    }
    if (placement.node_ids.size() != placement.gpus_per_node.size() || placement.empty()) {
      std::ostringstream out;
      out << "job " << id << " malformed placement vectors";
      AddViolation(&observation, "placement", out.str());
      continue;
    }
    if (placement.total_gpus() != placement.config.num_gpus) {
      std::ostringstream out;
      out << "job " << id << " placement covers " << placement.total_gpus() << " GPUs, config "
          << ConfigString(placement.config);
      AddViolation(&observation, "placement", out.str());
    }
    if (!placement.config.scatter && !placement.config.is_distributed() &&
        placement.node_ids.size() != 1) {
      std::ostringstream out;
      out << "job " << id << " single-node allocation split across " << placement.node_ids.size()
          << " nodes";
      AddViolation(&observation, "placement", out.str());
    }
    if (!placement.config.scatter && placement.config.is_distributed() &&
        static_cast<int>(placement.node_ids.size()) != placement.config.num_nodes) {
      std::ostringstream out;
      out << "job " << id << " distributed allocation on " << placement.node_ids.size()
          << " nodes, config wants " << placement.config.num_nodes;
      AddViolation(&observation, "placement", out.str());
    }
    std::set<int> unique_nodes;
    for (size_t k = 0; k < placement.node_ids.size(); ++k) {
      const int node = placement.node_ids[k];
      if (node < 0 || node >= cluster.num_nodes()) {
        std::ostringstream out;
        out << "job " << id << " placed on nonexistent node " << node;
        AddViolation(&observation, "placement", out.str());
        continue;
      }
      if (!unique_nodes.insert(node).second) {
        std::ostringstream out;
        out << "job " << id << " lists node " << node << " twice";
        AddViolation(&observation, "placement", out.str());
      }
      if (!cluster.NodeUp(node)) {
        std::ostringstream out;
        out << "job " << id << " placed on down node " << node;
        AddViolation(&observation, "capacity", out.str());
      }
      if (cluster.node(node).gpu_type != placement.config.gpu_type) {
        std::ostringstream out;
        out << "job " << id << " placed on node " << node << " of the wrong GPU type";
        AddViolation(&observation, "placement", out.str());
      }
      if (placement.gpus_per_node[k] <= 0) {
        std::ostringstream out;
        out << "job " << id << " takes " << placement.gpus_per_node[k] << " GPUs on node "
            << node;
        AddViolation(&observation, "placement", out.str());
      }
      used[node] += placement.gpus_per_node[k];
      ++jobs_on_node[node];
      if (placement.config.is_distributed() && !placement.config.scatter) {
        node_has_distributed[node] = 1;
      }
    }
  }

  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const int capacity = cluster.NodeUp(n) ? cluster.node(n).num_gpus : 0;
    if (used[n] > capacity) {
      std::ostringstream out;
      out << "node " << n << " oversubscribed: " << used[n] << " GPUs placed on capacity "
          << capacity;
      AddViolation(&observation, "capacity", out.str());
    }
    if (node_has_distributed[n] && jobs_on_node[n] > 1) {
      std::ostringstream out;
      out << "node " << n << " shared by " << jobs_on_node[n]
          << " jobs although a distributed allocation requires it whole";
      AddViolation(&observation, "placement", out.str());
    }
  }
}

void InvariantOracle::CheckConservation(const RoundObservation& observation) {
  std::set<JobId> evicted(observation.placed->evicted.begin(), observation.placed->evicted.end());
  for (const auto& [id, config] : *observation.desired) {
    const bool placed = observation.placed->placements.count(id) > 0;
    if (!placed && evicted.count(id) == 0) {
      std::ostringstream out;
      out << "job " << id << " requested " << ConfigString(config)
          << " but was neither placed nor reported evicted";
      AddViolation(&observation, "conserve", out.str());
    }
    if (placed && evicted.count(id) > 0) {
      std::ostringstream out;
      out << "job " << id << " both placed and reported evicted";
      AddViolation(&observation, "conserve", out.str());
    }
  }

  const std::vector<int> free = FreeGpusPerNode(observation);
  for (const JobId id : observation.placed->evicted) {
    if (observation.placed->placements.count(id) > 0) {
      continue;  // Already flagged above.
    }
    const auto desired_it = observation.desired->find(id);
    if (desired_it == observation.desired->end()) {
      std::ostringstream out;
      out << "evicted job " << id << " never requested resources this round";
      AddViolation(&observation, "conserve", out.str());
      continue;
    }
    const Config& config = desired_it->second;
    const auto prev_it = prev_placements_.find(id);
    const bool sticky = prev_it != prev_placements_.end() && !prev_it->second.empty() &&
                        prev_it->second.config == config;
    if (sticky) {
      // Stability contract: a job with a live same-config placement may only
      // return to its exact previous slots, so eviction strands capacity
      // only when those very slots are free (whole nodes for distributed
      // shapes, which never share).
      const ClusterSpec& cluster = *observation.cluster;
      const Placement& prev = prev_it->second;
      bool restorable = true;
      for (size_t k = 0; k < prev.node_ids.size() && restorable; ++k) {
        const int node = prev.node_ids[k];
        if (node < 0 || node >= cluster.num_nodes()) {
          restorable = false;
        } else if (config.is_distributed() && !config.scatter) {
          restorable = cluster.NodeUp(node) && free[node] == cluster.node(node).num_gpus;
        } else {
          restorable = free[node] >= prev.gpus_per_node[k];
        }
      }
      if (restorable) {
        std::ostringstream out;
        out << "evicted job " << id << " could return to its previous slots as "
            << ConfigString(config) << " (stranded eviction)";
        AddViolation(&observation, "conserve", out.str());
      }
    } else if (ConfigFitsResidual(*observation.cluster, free, config)) {
      std::ostringstream out;
      out << "evicted job " << id << " still fits the leftover capacity as "
          << ConfigString(config) << " (stranded eviction)";
      AddViolation(&observation, "conserve", out.str());
    }
  }
}

void InvariantOracle::CheckEnergy(const RoundObservation& observation) {
  const ClusterSpec& cluster = *observation.cluster;
  const int num_types = cluster.num_gpu_types();
  std::vector<int> busy(static_cast<size_t>(num_types), 0);
  for (const auto& [id, placement] : observation.placed->placements) {
    const int type = placement.config.gpu_type;
    if (type >= 0 && type < num_types) {
      busy[static_cast<size_t>(type)] += placement.total_gpus();
    }
  }
  double busy_watts = 0.0;
  for (int t = 0; t < num_types; ++t) {
    busy_watts += busy[static_cast<size_t>(t)] * cluster.power_model(t).active_watts;
  }
  if (options_.power_cap_watts > 0.0 &&
      busy_watts > options_.power_cap_watts * (1.0 + 1e-9) + kAbsEps) {
    std::ostringstream out;
    out << "placed jobs draw " << busy_watts << "W, above the " << options_.power_cap_watts
        << "W power cap";
    AddViolation(&observation, "energy", out.str());
  }
  if (!options_.check_energy) {
    return;
  }
  // Mirror of ClusterSimulator::AccumulateEnergy: same window-min low-power
  // machine, same accumulation order, fed by the same per-round view.
  if (energy_.parked.empty()) {
    energy_.parked.assign(static_cast<size_t>(num_types), 0);
    energy_.idle_history.assign(static_cast<size_t>(num_types), {});
  }
  const double duration = observation.round_duration_seconds;
  for (int t = 0; t < num_types; ++t) {
    const GpuPowerModel& model = cluster.power_model(t);
    const int idle = std::max(0, cluster.AvailableGpus(t) - busy[static_cast<size_t>(t)]);
    const size_t window = static_cast<size_t>(std::max(1, model.idle_rounds_to_low_power));
    std::vector<int>& history = energy_.idle_history[static_cast<size_t>(t)];
    history.push_back(idle);
    if (history.size() > window) {
      history.erase(history.begin());
    }
    int parked = 0;
    if (history.size() == window) {
      parked = *std::min_element(history.begin(), history.end());
    }
    const int prev_parked = energy_.parked[static_cast<size_t>(t)];
    if (parked != prev_parked) {
      const int moved = parked > prev_parked ? parked - prev_parked : prev_parked - parked;
      energy_.transition_joules += moved * model.transition_joules;
      energy_.parked[static_cast<size_t>(t)] = parked;
    }
    energy_.active_joules += busy[static_cast<size_t>(t)] * model.active_watts * duration;
    energy_.low_power_joules += parked * model.low_power_watts * duration;
    energy_.idle_joules += (idle - parked) * model.idle_watts * duration;
  }
  energy_.peak_busy_watts = std::max(energy_.peak_busy_watts, busy_watts);
}

void InvariantOracle::CheckEnergyResult(const SimResult& result) {
  if (!result.energy.tracked) {
    AddViolation(nullptr, "energy",
                 "check_energy is set but SimResult::energy was not tracked");
    return;
  }
  const struct {
    const char* name;
    double reported;
    double derived;
  } channels[] = {
      {"active_joules", result.energy.active_joules, energy_.active_joules},
      {"idle_joules", result.energy.idle_joules, energy_.idle_joules},
      {"low_power_joules", result.energy.low_power_joules, energy_.low_power_joules},
      {"transition_joules", result.energy.transition_joules, energy_.transition_joules},
      {"peak_busy_watts", result.energy.peak_busy_watts, energy_.peak_busy_watts},
  };
  for (const auto& channel : channels) {
    if (channel.reported < -kAbsEps) {
      std::ostringstream out;
      out << "energy." << channel.name << " is negative: " << channel.reported;
      AddViolation(nullptr, "energy", out.str());
    }
    // Conservation: reported joules must equal sum(state power x dwell) as
    // independently re-derived from the observed rounds.
    if (!NearlyEqual(channel.reported, channel.derived)) {
      std::ostringstream out;
      out << "energy." << channel.name << " " << channel.reported
          << " does not match the oracle's re-derivation " << channel.derived;
      AddViolation(nullptr, "energy", out.str());
    }
  }
}

void InvariantOracle::CheckSlaResult(const SimResult& result) {
  int sla_jobs = 0;
  int violations = 0;
  double tardiness = 0.0;
  for (const JobResult& job : result.jobs) {
    if (job.spec.sla_class == SlaClass::kBestEffort) {
      if (job.sla_violated || job.tardiness_seconds != 0.0) {
        std::ostringstream out;
        out << "best-effort job " << job.spec.id << " carries SLA bookkeeping (violated="
            << job.sla_violated << ", tardiness=" << job.tardiness_seconds << ")";
        AddViolation(nullptr, "sla", out.str());
      }
      continue;
    }
    ++sla_jobs;
    violations += job.sla_violated ? 1 : 0;
    tardiness += job.tardiness_seconds;
    if (job.tardiness_seconds < 0.0) {
      std::ostringstream out;
      out << "job " << job.spec.id << " negative tardiness " << job.tardiness_seconds;
      AddViolation(nullptr, "sla", out.str());
    }
    if (job.sla_violated != (job.tardiness_seconds > 0.0)) {
      std::ostringstream out;
      out << "job " << job.spec.id << " sla_violated=" << job.sla_violated
          << " inconsistent with tardiness " << job.tardiness_seconds;
      AddViolation(nullptr, "sla", out.str());
    }
    const double expected =
        std::max(0.0, job.jct - job.spec.deadline_seconds);
    if (!NearlyEqual(job.tardiness_seconds, expected)) {
      std::ostringstream out;
      out << "job " << job.spec.id << " tardiness " << job.tardiness_seconds
          << " != max(0, jct - deadline) = " << expected;
      AddViolation(nullptr, "sla", out.str());
    }
  }
  if (result.sla.sla_jobs != sla_jobs || result.sla.violations != violations ||
      !NearlyEqual(result.sla.total_tardiness_seconds, tardiness)) {
    std::ostringstream out;
    out << "SimResult::sla (" << result.sla.sla_jobs << " jobs, " << result.sla.violations
        << " violations, " << result.sla.total_tardiness_seconds
        << "s tardiness) does not match the per-job rows (" << sla_jobs << ", " << violations
        << ", " << tardiness << "s)";
    AddViolation(nullptr, "sla", out.str());
  }
}

void InvariantOracle::UpdateTracks(const RoundObservation& observation) {
  std::set<JobId> present;
  for (const JobView& job : observation.input->jobs) {
    if (job.spec == nullptr) {
      continue;
    }
    const JobId id = job.spec->id;
    present.insert(id);
    JobTrack& track = tracks_[id];
    if (track.seen) {
      // Service: exactly what last round's grant charged.
      const double expected =
          track.last_service +
          static_cast<double>(track.granted_gpus) * track.last_round_duration;
      if (!NearlyEqual(job.service_gpu_seconds, expected)) {
        std::ostringstream out;
        out << "job " << id << " service drifted: " << job.service_gpu_seconds << " != "
            << track.last_service << " + " << track.granted_gpus << " x "
            << track.last_round_duration;
        AddViolation(&observation, "accounting", out.str());
      }
      // Progress: monotone except a bounded rollback when a running job was
      // evicted back to the queue (node crash, §3.5).
      if (job.progress_fraction < track.last_progress - kAbsEps) {
        const bool evicted_to_queue = track.last_running && job.current_config.num_gpus == 0;
        const double floor =
            track.last_progress * (1.0 - options_.failure_progress_loss) - 1e-6;
        if (!evicted_to_queue || job.progress_fraction < floor) {
          std::ostringstream out;
          out << "job " << id << " progress went backwards " << track.last_progress << " -> "
              << job.progress_fraction << (evicted_to_queue ? " (past the checkpoint floor)" : "");
          AddViolation(&observation, "accounting", out.str());
        }
      }
      if (job.peak_num_gpus < track.last_peak) {
        std::ostringstream out;
        out << "job " << id << " peak_num_gpus shrank " << track.last_peak << " -> "
            << job.peak_num_gpus;
        AddViolation(&observation, "accounting", out.str());
      }
      if (job.num_restarts < track.last_restarts) {
        std::ostringstream out;
        out << "job " << id << " restart count shrank " << track.last_restarts << " -> "
            << job.num_restarts;
        AddViolation(&observation, "accounting", out.str());
      }
    } else {
      track.seen = true;
      track.submit_time = job.spec->submit_time;
    }
    track.last_progress = job.progress_fraction;
    track.last_service = job.service_gpu_seconds;
    track.last_peak = job.peak_num_gpus;
    track.last_restarts = job.num_restarts;
    track.last_round_duration = observation.round_duration_seconds;
    const auto placed_it = observation.placed->placements.find(id);
    track.granted_gpus =
        placed_it == observation.placed->placements.end() ? 0 : placed_it->second.config.num_gpus;
    track.last_running = track.granted_gpus > 0;
  }
  for (auto& [id, track] : tracks_) {
    if (track.seen && !track.retired && present.count(id) == 0) {
      track.retired = true;
      track.granted_gpus = 0;
      track.last_running = false;
    }
  }
}

void InvariantOracle::OnRoundScheduled(const RoundObservation& observation) {
  if (observation.cluster == nullptr || observation.config_set == nullptr ||
      observation.input == nullptr || observation.desired == nullptr ||
      observation.placed == nullptr) {
    AddViolation(nullptr, "time", "incomplete round observation");
    return;
  }
  CheckTime(observation);
  CheckInput(observation);
  CheckDesired(observation);
  CheckPlacements(observation);
  CheckConservation(observation);
  if (options_.check_energy || options_.power_cap_watts > 0.0) {
    CheckEnergy(observation);
  }
  UpdateTracks(observation);
  prev_placements_ = observation.placed->placements;
  if (options_.record_schedules) {
    schedules_.push_back(*observation.desired);
  }
  last_round_index_ = observation.round_index;
  last_now_ = observation.now_seconds;
  ++rounds_checked_;
}

void InvariantOracle::OnRunEnd(const SimResult& result) {
  run_ended_ = true;
  std::set<JobId> result_ids;
  for (const JobResult& job : result.jobs) {
    if (!result_ids.insert(job.spec.id).second) {
      std::ostringstream out;
      out << "job " << job.spec.id << " appears twice in SimResult::jobs";
      AddViolation(nullptr, "lifecycle", out.str());
    }
    const auto track_it = tracks_.find(job.spec.id);
    if (track_it == tracks_.end()) {
      std::ostringstream out;
      out << "job " << job.spec.id << " in SimResult::jobs was never observed in a round";
      AddViolation(nullptr, "lifecycle", out.str());
      continue;
    }
    const JobTrack& track = track_it->second;
    if (track.retired && !job.finished) {
      std::ostringstream out;
      out << "job " << job.spec.id << " left the active set but is not marked finished";
      AddViolation(nullptr, "lifecycle", out.str());
    }
    if (job.gpu_seconds < track.last_service - 1e-6) {
      std::ostringstream out;
      out << "job " << job.spec.id << " final gpu_seconds " << job.gpu_seconds
          << " below last observed service " << track.last_service;
      AddViolation(nullptr, "accounting", out.str());
    }
    if (job.finished && job.finish_time > result.makespan_seconds + kAbsEps) {
      std::ostringstream out;
      out << "job " << job.spec.id << " finished at " << job.finish_time
          << " after the makespan " << result.makespan_seconds;
      AddViolation(nullptr, "accounting", out.str());
    }
  }
  for (const auto& [id, track] : tracks_) {
    if (track.seen && result_ids.count(id) == 0) {
      std::ostringstream out;
      out << "job " << id << " was observed in rounds but is missing from SimResult::jobs";
      AddViolation(nullptr, "lifecycle", out.str());
    }
  }
  if (options_.check_energy) {
    CheckEnergyResult(result);
  }
  // SLA accounting is pure result-internal consistency: with no SLA jobs it
  // degenerates to 0 == 0, so it runs for every policy unconditionally.
  CheckSlaResult(result);
}

std::string InvariantOracle::Report() const {
  std::ostringstream out;
  if (ok()) {
    out << "oracle ok: " << rounds_checked_ << " rounds, " << tracks_.size()
        << " jobs, 0 violations";
    return out.str();
  }
  out << "oracle FAILED: " << total_violations_ << " violation(s) over " << rounds_checked_
      << " rounds";
  for (const OracleViolation& violation : violations_) {
    out << "\n  " << violation.ToString();
  }
  if (total_violations_ > static_cast<int64_t>(violations_.size())) {
    out << "\n  ... " << (total_violations_ - static_cast<int64_t>(violations_.size()))
        << " more suppressed";
  }
  return out.str();
}

}  // namespace sia::testing
