#include "src/testing/scenario.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/common/check.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

namespace sia::testing {
namespace {

// GPU-type catalogue: the exact parameters the standard clusters in
// src/cluster/cluster_spec.cc use, keyed by name so reproducer files stay
// readable and replays rebuild identical GpuTypes.
struct CatalogEntry {
  const char* name;
  double vram_gb;
  double network_gbps;
  int standard_gpus_per_node;
};

constexpr CatalogEntry kGpuCatalog[] = {
    {"t4", 16.0, 50.0, 4},
    {"rtx", 11.0, 50.0, 8},
    {"a100", 40.0, 1600.0, 8},
    {"quad", 24.0, 200.0, 4},
};

const CatalogEntry* FindCatalogEntry(const std::string& name) {
  for (const CatalogEntry& entry : kGpuCatalog) {
    if (name == entry.name) {
      return &entry;
    }
  }
  return nullptr;
}

// Lossless double formatting; 17 significant digits round-trip any binary64.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool ParseDouble(const std::string& text, double* out) {
  try {
    size_t used = 0;
    *out = std::stod(text, &used);
    return used == text.size();
  } catch (...) {
    return false;
  }
}

bool ParseInt(const std::string& text, int64_t* out) {
  try {
    size_t used = 0;
    *out = std::stoll(text, &used);
    return used == text.size();
  } catch (...) {
    return false;
  }
}

bool ParseUint(const std::string& text, uint64_t* out) {
  try {
    size_t used = 0;
    *out = std::stoull(text, &used);
    return used == text.size();
  } catch (...) {
    return false;
  }
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(text);
  while (std::getline(in, field, sep)) {
    fields.push_back(field);
  }
  if (!text.empty() && text.back() == sep) {
    fields.push_back("");
  }
  return fields;
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kNodeRepair:
      return "repair";
    case FaultKind::kDegradeStart:
      return "degrade";
    case FaultKind::kDegradeEnd:
      return "degrade_end";
  }
  return "crash";
}

bool FaultKindFromName(const std::string& name, FaultKind* out) {
  if (name == "crash") {
    *out = FaultKind::kNodeCrash;
  } else if (name == "repair") {
    *out = FaultKind::kNodeRepair;
  } else if (name == "degrade") {
    *out = FaultKind::kDegradeStart;
  } else if (name == "degrade_end") {
    *out = FaultKind::kDegradeEnd;
  } else {
    return false;
  }
  return true;
}

}  // namespace

ClusterSpec Scenario::BuildCluster() const {
  ClusterSpec cluster;
  for (const ScenarioNodeGroup& group : node_groups) {
    const CatalogEntry* entry = FindCatalogEntry(group.gpu_type);
    SIA_CHECK(entry != nullptr) << "unknown GPU type in scenario: " << group.gpu_type;
    int type = cluster.FindGpuType(group.gpu_type);
    if (type < 0) {
      type = cluster.AddGpuType({entry->name, entry->vram_gb, entry->network_gbps});
      if (transition_joules >= 0.0 || idle_rounds_to_low_power > 0) {
        GpuPowerModel model = cluster.power_model(type);
        if (transition_joules >= 0.0) {
          model.transition_joules = transition_joules;
        }
        if (idle_rounds_to_low_power > 0) {
          model.idle_rounds_to_low_power = idle_rounds_to_low_power;
        }
        cluster.set_power_model(type, model);
      }
    }
    cluster.AddNodes(type, group.num_nodes, group.gpus_per_node);
  }
  return cluster;
}

SimOptions Scenario::BuildSimOptions() const {
  SimOptions options;
  options.seed = sim_seed;
  options.profiling_mode = static_cast<ProfilingMode>(profiling_mode);
  options.observation_noise_sigma = observation_noise_sigma;
  options.pgns_noise_sigma = pgns_noise_sigma;
  options.max_hours = max_hours;
  options.faults.node_mtbf_hours = node_mtbf_hours;
  options.faults.node_mttr_hours = node_mttr_hours;
  options.faults.degraded_frac = degraded_frac;
  options.faults.telemetry_dropout_prob = telemetry_dropout_prob;
  options.faults.telemetry_outlier_prob = telemetry_outlier_prob;
  options.faults.schedule = faults;
  options.core = static_cast<SimCore>(sim_core);
  options.energy.track = track_energy != 0;
  options.energy.power_cap_watts = power_cap_watts;
  return options;
}

std::string Scenario::Describe() const {
  std::ostringstream out;
  out << "seed=" << seed << " sched=" << scheduler << " nodes=";
  for (size_t i = 0; i < node_groups.size(); ++i) {
    if (i > 0) {
      out << "+";
    }
    out << node_groups[i].num_nodes << "x" << node_groups[i].gpus_per_node
        << node_groups[i].gpu_type;
  }
  out << " jobs=" << jobs.size() << " faults=" << faults.size();
  if (node_mtbf_hours > 0.0) {
    out << " mtbf=" << node_mtbf_hours << "h";
  }
  if (degraded_frac > 0.0) {
    out << " degraded=" << degraded_frac;
  }
  out << " threads=" << sched_threads << (warm_start ? "" : " cold")
      << (candidate_cache ? "" : " nocache") << (sim_core == 0 ? " dense" : "");
  if (crash_round >= 0) {
    out << " crash@" << crash_round;
  }
  if (track_energy != 0) {
    out << " energy";
  }
  if (power_cap_watts > 0.0) {
    out << " cap=" << power_cap_watts << "W";
  }
  return out.str();
}

Scenario GenerateScenario(uint64_t seed, const std::string& scheduler) {
  Scenario scenario;
  scenario.seed = seed;
  scenario.scheduler = scheduler;

  Rng root(seed);
  Rng cluster_rng = root.Fork("fuzz-cluster");
  Rng workload_rng = root.Fork("fuzz-workload");
  Rng fault_rng = root.Fork("fuzz-faults");
  Rng knob_rng = root.Fork("fuzz-knobs");

  // Cluster: 1-3 node groups of distinct types, kept small so a fuzz
  // iteration stays well under a second.
  const int num_types = static_cast<int>(sizeof(kGpuCatalog) / sizeof(kGpuCatalog[0]));
  const int num_groups = static_cast<int>(cluster_rng.UniformInt(1, 3));
  std::vector<int> type_order(static_cast<size_t>(num_types));
  for (int i = 0; i < num_types; ++i) {
    type_order[static_cast<size_t>(i)] = i;
  }
  std::shuffle(type_order.begin(), type_order.end(), cluster_rng);
  int total_nodes = 0;
  for (int g = 0; g < num_groups; ++g) {
    const CatalogEntry& entry = kGpuCatalog[type_order[static_cast<size_t>(g)]];
    ScenarioNodeGroup group;
    group.gpu_type = entry.name;
    group.num_nodes = static_cast<int>(cluster_rng.UniformInt(1, 4));
    // Standard node size most of the time; occasionally a small variant to
    // exercise non-standard shapes.
    group.gpus_per_node = cluster_rng.Bernoulli(0.75)
                              ? entry.standard_gpus_per_node
                              : static_cast<int>(cluster_rng.UniformInt(1, 4));
    total_nodes += group.num_nodes;
    scenario.node_groups.push_back(group);
  }

  // Workload: sample a real trace-generator mix over a short submission
  // window, truncate to at most 10 jobs, and clamp max_num_gpus so rigid
  // picks stay schedulable on small clusters.
  TraceOptions trace;
  trace.kind = workload_rng.Bernoulli(0.5) ? TraceKind::kPhilly : TraceKind::kHelios;
  trace.arrival_rate_per_hour = workload_rng.Uniform(8.0, 30.0);
  trace.duration_hours = workload_rng.Uniform(0.2, 0.8);
  trace.seed = workload_rng.Next();
  std::vector<JobSpec> jobs = GenerateTrace(trace);
  if (jobs.empty()) {
    // Degenerate but valid: keep one deterministic job so every scenario
    // actually schedules something.
    JobSpec job;
    job.id = 0;
    job.name = "job-0";
    job.model = ModelKind::kResNet18;
    job.submit_time = 0.0;
    jobs.push_back(job);
  }
  if (jobs.size() > 10) {
    jobs.resize(10);
  }
  const bool restrict = workload_rng.Bernoulli(0.35);
  if (restrict) {
    TunedJobsOptions tuned;
    tuned.max_gpus = 4;
    tuned.reference_gpu = "t4";
    tuned.seed = workload_rng.Next();
    jobs = RestrictAdaptivity(jobs, workload_rng.Uniform(0.0, 0.5),
                              workload_rng.Uniform(0.0, 0.5), tuned);
  }
  for (JobSpec& job : jobs) {
    job.max_num_gpus = std::min(job.max_num_gpus, 16);
  }
  scenario.jobs = std::move(jobs);

  // Faults: scripted crash/degrade events on valid node indices, plus the
  // stochastic channels, each enabled independently.
  if (fault_rng.Bernoulli(0.5)) {
    const int num_events = static_cast<int>(fault_rng.UniformInt(1, 4));
    for (int i = 0; i < num_events; ++i) {
      FaultEvent event;
      event.time_seconds = fault_rng.Uniform(0.0, 1.5) * 3600.0;
      event.node = static_cast<int>(fault_rng.UniformInt(0, total_nodes - 1));
      if (fault_rng.Bernoulli(0.7)) {
        event.kind = FaultKind::kNodeCrash;
        event.duration_seconds = fault_rng.Uniform(180.0, 1200.0);
      } else {
        event.kind = FaultKind::kDegradeStart;
        event.severity = fault_rng.Uniform(1.2, 3.0);
        event.duration_seconds = fault_rng.Bernoulli(0.5) ? 0.0 : fault_rng.Uniform(600.0, 3600.0);
      }
      scenario.faults.push_back(event);
    }
    std::sort(scenario.faults.begin(), scenario.faults.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                return a.time_seconds < b.time_seconds;
              });
  }
  if (fault_rng.Bernoulli(0.3)) {
    scenario.node_mtbf_hours = fault_rng.Uniform(2.0, 12.0);
    scenario.node_mttr_hours = fault_rng.Uniform(0.1, 0.5);
  }
  if (fault_rng.Bernoulli(0.25)) {
    scenario.degraded_frac = fault_rng.Uniform(0.1, 0.4);
  }
  if (fault_rng.Bernoulli(0.25)) {
    scenario.telemetry_dropout_prob = fault_rng.Uniform(0.0, 0.3);
    scenario.telemetry_outlier_prob = fault_rng.Uniform(0.0, 0.1);
  }

  // Simulator / scheduler knobs.
  scenario.sim_seed = knob_rng.Next() | 1ULL;
  const int mode_pick = static_cast<int>(knob_rng.UniformInt(0, 3));
  scenario.profiling_mode = mode_pick >= 2 ? 1 : mode_pick;  // Bias to bootstrap.
  scenario.observation_noise_sigma = knob_rng.Uniform(0.0, 0.08);
  scenario.pgns_noise_sigma = knob_rng.Uniform(0.0, 0.2);
  scenario.max_hours = knob_rng.Uniform(2.5, 5.0);
  scenario.sched_threads = knob_rng.Bernoulli(0.3) ? static_cast<int>(knob_rng.UniformInt(2, 4)) : 1;
  scenario.warm_start = knob_rng.Bernoulli(0.8);
  scenario.candidate_cache = knob_rng.Bernoulli(0.8);
  return scenario;
}

Scenario GenerateEnergyScenario(uint64_t seed, const std::string& scheduler) {
  Scenario scenario = GenerateScenario(seed, scheduler);
  // A fresh fork off the same root keeps the base scenario bit-identical to
  // GenerateScenario(seed, scheduler) -- the energy axis only adds knobs.
  Rng root(seed);
  Rng energy_rng = root.Fork("fuzz-energy");

  scenario.track_energy = 1;
  if (energy_rng.Bernoulli(0.6)) {
    // Cap at 35-90% of the cluster's full active draw: tight enough to bite,
    // never below what a single non-preemptible reservation could need.
    const double full_watts = scenario.BuildCluster().FullActiveWatts();
    scenario.power_cap_watts = energy_rng.Uniform(0.35, 0.9) * full_watts;
  }
  if (energy_rng.Bernoulli(0.5)) {
    scenario.transition_joules = energy_rng.Uniform(0.0, 2000.0);
  }
  if (energy_rng.Bernoulli(0.5)) {
    scenario.idle_rounds_to_low_power = static_cast<int>(energy_rng.UniformInt(1, 5));
  }
  if (scenario.scheduler == "sia-energy") {
    scenario.energy_weight = energy_rng.Uniform(0.1, 1.0);
  }

  // SLA mix: materialized into the job list so replays never re-sample it.
  SlaMixOptions mix;
  mix.sla0_fraction = energy_rng.Uniform(0.0, 0.3);
  mix.sla1_fraction = energy_rng.Uniform(0.0, 0.3);
  mix.sla2_fraction = energy_rng.Uniform(0.0, 0.3);
  mix.seed = energy_rng.Next();
  scenario.jobs = AssignSlaClasses(scenario.jobs, mix);
  return scenario;
}

bool WriteScenario(std::ostream& out, const Scenario& scenario) {
  out << "# sia_fuzz reproducer v1\n";
  out << "seed=" << scenario.seed << "\n";
  out << "scheduler=" << scenario.scheduler << "\n";
  for (const ScenarioNodeGroup& group : scenario.node_groups) {
    out << "node_group=" << group.gpu_type << ":" << group.num_nodes << ":" << group.gpus_per_node
        << "\n";
  }
  out << "node_mtbf_hours=" << FormatDouble(scenario.node_mtbf_hours) << "\n";
  out << "node_mttr_hours=" << FormatDouble(scenario.node_mttr_hours) << "\n";
  out << "degraded_frac=" << FormatDouble(scenario.degraded_frac) << "\n";
  out << "telemetry_dropout_prob=" << FormatDouble(scenario.telemetry_dropout_prob) << "\n";
  out << "telemetry_outlier_prob=" << FormatDouble(scenario.telemetry_outlier_prob) << "\n";
  out << "sim_seed=" << scenario.sim_seed << "\n";
  out << "profiling_mode=" << scenario.profiling_mode << "\n";
  out << "observation_noise_sigma=" << FormatDouble(scenario.observation_noise_sigma) << "\n";
  out << "pgns_noise_sigma=" << FormatDouble(scenario.pgns_noise_sigma) << "\n";
  out << "max_hours=" << FormatDouble(scenario.max_hours) << "\n";
  out << "sched_threads=" << scenario.sched_threads << "\n";
  out << "warm_start=" << (scenario.warm_start ? 1 : 0) << "\n";
  out << "candidate_cache=" << (scenario.candidate_cache ? 1 : 0) << "\n";
  out << "sim_core=" << scenario.sim_core << "\n";
  if (scenario.crash_round >= 0) {
    out << "crash_round=" << scenario.crash_round << "\n";
  }
  // Energy keys are only written when the scenario engages the subsystem,
  // so pre-energy reproducer files and their byte-exact rewrites coincide.
  if (scenario.track_energy != 0) {
    out << "track_energy=" << scenario.track_energy << "\n";
  }
  if (scenario.power_cap_watts != 0.0) {
    out << "power_cap_watts=" << FormatDouble(scenario.power_cap_watts) << "\n";
  }
  if (scenario.energy_weight != 0.0) {
    out << "energy_weight=" << FormatDouble(scenario.energy_weight) << "\n";
  }
  if (scenario.transition_joules >= 0.0) {
    out << "transition_joules=" << FormatDouble(scenario.transition_joules) << "\n";
  }
  if (scenario.idle_rounds_to_low_power > 0) {
    out << "idle_rounds_to_low_power=" << scenario.idle_rounds_to_low_power << "\n";
  }
  for (const FaultEvent& event : scenario.faults) {
    out << "fault=" << FormatDouble(event.time_seconds) << "," << FaultKindName(event.kind) << ","
        << event.node << "," << FormatDouble(event.duration_seconds) << ","
        << FormatDouble(event.severity) << "\n";
  }
  out << "jobs_begin\n";
  if (!WriteTraceCsv(out, scenario.jobs)) {
    return false;
  }
  out << "jobs_end\n";
  return static_cast<bool>(out);
}

bool WriteScenario(const std::string& path, const Scenario& scenario) {
  std::ofstream out(path);
  return out && WriteScenario(out, scenario);
}

bool ReadScenario(std::istream& in, Scenario* scenario, std::string* error) {
  Scenario result;
  std::string line;
  int line_number = 0;
  bool saw_jobs = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line == "jobs_begin") {
      // The trace CSV runs until jobs_end; collect and parse it whole.
      std::ostringstream csv;
      bool closed = false;
      while (std::getline(in, line)) {
        ++line_number;
        if (line == "jobs_end") {
          closed = true;
          break;
        }
        csv << line << "\n";
      }
      if (!closed) {
        return Fail(error, "unterminated jobs_begin block");
      }
      std::istringstream csv_in(csv.str());
      std::string csv_error;
      if (!ReadTraceCsv(csv_in, &result.jobs, &csv_error)) {
        return Fail(error, "embedded trace CSV: " + csv_error);
      }
      saw_jobs = true;
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Fail(error, "line " + std::to_string(line_number) + ": expected key=value");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    auto bad = [&]() {
      return Fail(error,
                  "line " + std::to_string(line_number) + ": bad value for " + key);
    };
    int64_t as_int = 0;
    uint64_t as_uint = 0;
    double as_double = 0.0;
    if (key == "seed") {
      if (!ParseUint(value, &as_uint)) return bad();
      result.seed = as_uint;
    } else if (key == "scheduler") {
      result.scheduler = value;
    } else if (key == "node_group") {
      const std::vector<std::string> parts = Split(value, ':');
      int64_t nodes = 0;
      int64_t gpus = 0;
      if (parts.size() != 3 || !ParseInt(parts[1], &nodes) || !ParseInt(parts[2], &gpus) ||
          nodes <= 0 || gpus <= 0) {
        return bad();
      }
      if (FindCatalogEntry(parts[0]) == nullptr) {
        return Fail(error, "line " + std::to_string(line_number) + ": unknown GPU type " +
                               parts[0]);
      }
      result.node_groups.push_back(
          {parts[0], static_cast<int>(nodes), static_cast<int>(gpus)});
    } else if (key == "fault") {
      const std::vector<std::string> parts = Split(value, ',');
      FaultEvent event;
      int64_t node = 0;
      if (parts.size() != 5 || !ParseDouble(parts[0], &event.time_seconds) ||
          !FaultKindFromName(parts[1], &event.kind) || !ParseInt(parts[2], &node) ||
          !ParseDouble(parts[3], &event.duration_seconds) ||
          !ParseDouble(parts[4], &event.severity)) {
        return bad();
      }
      event.node = static_cast<int>(node);
      result.faults.push_back(event);
    } else if (key == "node_mtbf_hours") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.node_mtbf_hours = as_double;
    } else if (key == "node_mttr_hours") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.node_mttr_hours = as_double;
    } else if (key == "degraded_frac") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.degraded_frac = as_double;
    } else if (key == "telemetry_dropout_prob") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.telemetry_dropout_prob = as_double;
    } else if (key == "telemetry_outlier_prob") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.telemetry_outlier_prob = as_double;
    } else if (key == "sim_seed") {
      if (!ParseUint(value, &as_uint)) return bad();
      result.sim_seed = as_uint;
    } else if (key == "profiling_mode") {
      if (!ParseInt(value, &as_int) || as_int < 0 || as_int > 2) return bad();
      result.profiling_mode = static_cast<int>(as_int);
    } else if (key == "observation_noise_sigma") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.observation_noise_sigma = as_double;
    } else if (key == "pgns_noise_sigma") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.pgns_noise_sigma = as_double;
    } else if (key == "max_hours") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.max_hours = as_double;
    } else if (key == "sched_threads") {
      if (!ParseInt(value, &as_int) || as_int <= 0) return bad();
      result.sched_threads = static_cast<int>(as_int);
    } else if (key == "warm_start") {
      if (!ParseInt(value, &as_int)) return bad();
      result.warm_start = as_int != 0;
    } else if (key == "candidate_cache") {
      if (!ParseInt(value, &as_int)) return bad();
      result.candidate_cache = as_int != 0;
    } else if (key == "sim_core") {
      if (!ParseInt(value, &as_int) || as_int < 0 || as_int > 1) return bad();
      result.sim_core = static_cast<int>(as_int);
    } else if (key == "crash_round") {
      if (!ParseInt(value, &as_int) || as_int < -1) return bad();
      result.crash_round = as_int;
    } else if (key == "track_energy") {
      if (!ParseInt(value, &as_int) || as_int < 0 || as_int > 1) return bad();
      result.track_energy = static_cast<int>(as_int);
    } else if (key == "power_cap_watts") {
      if (!ParseDouble(value, &as_double) || as_double < 0.0) return bad();
      result.power_cap_watts = as_double;
    } else if (key == "energy_weight") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.energy_weight = as_double;
    } else if (key == "transition_joules") {
      if (!ParseDouble(value, &as_double)) return bad();
      result.transition_joules = as_double;
    } else if (key == "idle_rounds_to_low_power") {
      if (!ParseInt(value, &as_int) || as_int < 0) return bad();
      result.idle_rounds_to_low_power = static_cast<int>(as_int);
    } else {
      return Fail(error, "line " + std::to_string(line_number) + ": unknown key " + key);
    }
  }
  if (result.node_groups.empty()) {
    return Fail(error, "scenario has no node_group lines");
  }
  if (!saw_jobs) {
    return Fail(error, "scenario has no jobs_begin block");
  }
  *scenario = std::move(result);
  return true;
}

bool ReadScenario(const std::string& path, Scenario* scenario, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return Fail(error, "cannot open " + path);
  }
  return ReadScenario(in, scenario, error);
}

}  // namespace sia::testing
