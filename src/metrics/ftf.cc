#include "src/metrics/ftf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/models/goodput.h"
#include "src/models/profile_db.h"

namespace sia {
namespace {

// Best ground-truth goodput achievable on an isolated mini-cluster of
// `num_gpus` GPUs (nodes of `gpus_per_node`) at the given noise scale.
double BestIsolatedGoodput(const JobSpec& spec, const ModelInfo& info,
                           const std::string& gpu_type_name, int num_gpus, int gpus_per_node,
                           double pgns) {
  double best = 0.0;
  if (info.hybrid_parallel) {
    const HybridProfile& hybrid = GetHybridProfile(spec.model, gpu_type_name);
    if (!hybrid.available) {
      return 0.0;
    }
    const int max_replicas = num_gpus / hybrid.pipeline_gpus;
    for (int replicas = 1; replicas <= max_replicas; ++replicas) {
      const auto decision =
          HybridGoodput(hybrid, info.efficiency, pgns, replicas, info.max_bsz);
      if (decision.feasible) {
        best = std::max(best, decision.goodput);
      }
    }
    return best;
  }

  const DeviceProfile& device = GetDeviceProfile(spec.model, gpu_type_name);
  if (!device.available) {
    return 0.0;
  }
  // Candidate shapes: powers of two within one node, then whole nodes.
  std::vector<std::pair<int, int>> shapes;  // (nodes, gpus)
  for (int g = 1; g <= std::min(num_gpus, gpus_per_node); g *= 2) {
    shapes.emplace_back(1, g);
  }
  for (int n = 2; n * gpus_per_node <= num_gpus; ++n) {
    shapes.emplace_back(n, n * gpus_per_node);
  }
  const int cap = std::min(num_gpus, spec.max_num_gpus);
  for (const auto& [nodes, gpus] : shapes) {
    if (gpus > cap) {
      continue;
    }
    BatchDecision decision;
    if (spec.adaptivity == AdaptivityMode::kAdaptive) {
      decision = OptimizeBatch(device.truth, info.efficiency, pgns, info.min_bsz, info.max_bsz,
                               device.max_local_bsz, nodes, gpus);
    } else {
      if (spec.adaptivity == AdaptivityMode::kRigid && gpus != spec.rigid_num_gpus) {
        continue;
      }
      decision = EvaluateFixedBatch(device.truth, info.efficiency, pgns, spec.fixed_bsz,
                                    device.max_local_bsz, nodes, gpus);
    }
    if (decision.feasible) {
      best = std::max(best, decision.goodput);
    }
  }
  if (best == 0.0 && spec.adaptivity == AdaptivityMode::kRigid) {
    // Rigid job larger than the fair share: run at the fair share size
    // anyway (the isolated baseline must be able to run the job).
    const auto decision = EvaluateFixedBatch(device.truth, info.efficiency, pgns, spec.fixed_bsz,
                                             device.max_local_bsz, 1,
                                             std::min(num_gpus, gpus_per_node));
    if (decision.feasible) {
      best = decision.goodput;
    }
  }
  return best;
}

}  // namespace

double IsolatedRuntimeSeconds(const JobSpec& spec, const std::string& gpu_type_name, int num_gpus,
                              int gpus_per_node) {
  const ModelInfo& info = GetModelInfo(spec.model);
  double progress = 0.0;
  // Initial restore, as in the shared cluster.
  double elapsed = 0.5 * info.restart_seconds;
  // Integrate with the gradient noise scale evolving over progress.
  constexpr int kMaxSteps = 100000;
  for (int step = 0; step < kMaxSteps && progress < info.total_work; ++step) {
    const double pgns = PgnsAt(info.efficiency, progress / info.total_work);
    const double rate =
        BestIsolatedGoodput(spec, info, gpu_type_name, num_gpus, gpus_per_node, pgns);
    if (rate <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    const double remaining_time = (info.total_work - progress) / rate;
    // Re-evaluate the batch choice every 2% of the job or 10 minutes.
    const double dt = std::min({remaining_time, info.total_work / (50.0 * rate), 600.0});
    progress += rate * std::max(dt, 1e-6);
    elapsed += std::max(dt, 1e-6);
  }
  return elapsed;
}

double FinishTimeFairness(const JobSpec& spec, double jct_seconds, double avg_contention,
                          const ClusterSpec& cluster) {
  SIA_CHECK(avg_contention > 0.0);
  double rho = 0.0;
  double probability_mass = 0.0;
  const int total_gpus = cluster.TotalGpus();
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    const int type_gpus = cluster.TotalGpus(t);
    if (type_gpus == 0) {
      continue;
    }
    const double probability = static_cast<double>(type_gpus) / total_gpus;
    const int gpus_per_node = cluster.GpusPerNode(t);
    const int fair_gpus = std::clamp(
        static_cast<int>(std::lround(type_gpus / avg_contention)), 1, type_gpus);
    const double isolated =
        IsolatedRuntimeSeconds(spec, cluster.gpu_type(t).name, fair_gpus, gpus_per_node);
    if (!std::isfinite(isolated)) {
      continue;  // Model cannot run on this type: excluded from the mix.
    }
    rho += probability * (jct_seconds / isolated);
    probability_mass += probability;
  }
  if (probability_mass <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return rho / probability_mass;
}

std::vector<double> FtfRatios(const SimResult& result, const ClusterSpec& cluster) {
  std::vector<double> ratios;
  ratios.reserve(result.jobs.size());
  const double contention = std::max(result.avg_contention, 1.0);
  for (const JobResult& job : result.jobs) {
    if (!job.finished) {
      continue;
    }
    const double rho = FinishTimeFairness(job.spec, job.jct, contention, cluster);
    if (std::isfinite(rho)) {
      ratios.push_back(rho);
    }
  }
  return ratios;
}

}  // namespace sia
