// Finish-time fairness (FTF, Mahajan et al. [34]) extended to heterogeneous
// clusters per §5.5:
//
//   rho = sum_g P(G = g) * rho_g,     rho_g = T_shared / T_isolated_g
//
// where P(G = g) is the fraction of cluster GPUs of type g and T_isolated_g
// is the job's completion time alone on a "fair-sized" cluster of
// N_g / N_avg GPUs of type g (N_avg = average contention). rho > 1 means the
// job would have finished faster in isolation (unfair execution).
#ifndef SIA_SRC_METRICS_FTF_H_
#define SIA_SRC_METRICS_FTF_H_

#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/sim/simulator.h"
#include "src/workload/job.h"

namespace sia {

// Completion time of `spec` running alone on `num_gpus` GPUs of the named
// type (gpus_per_node-sized nodes), with oracle knowledge -- integrates
// ground-truth goodput as the gradient noise scale evolves. Returns +inf if
// the model cannot run on this GPU type.
double IsolatedRuntimeSeconds(const JobSpec& spec, const std::string& gpu_type_name, int num_gpus,
                              int gpus_per_node);

// Heterogeneous FTF ratio (Eq. 6) for a finished job.
double FinishTimeFairness(const JobSpec& spec, double jct_seconds, double avg_contention,
                          const ClusterSpec& cluster);

// FTF ratios for all finished jobs of a simulation result.
std::vector<double> FtfRatios(const SimResult& result, const ClusterSpec& cluster);

}  // namespace sia

#endif  // SIA_SRC_METRICS_FTF_H_
