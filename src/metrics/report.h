// Aggregation of simulation results into paper-style summary rows
// (Table 3 / Table 4 columns) across one or many trace samples, and the
// Report builder that renders any combination of column groups from them.
#ifndef SIA_SRC_METRICS_REPORT_H_
#define SIA_SRC_METRICS_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "src/models/model_kind.h"
#include "src/sim/simulator.h"

namespace sia {

// One scheduler's metrics aggregated over trace samples (mean +- stddev
// where the paper reports them).
struct PolicySummary {
  std::string policy;
  int num_traces = 0;
  double avg_jct_hours = 0.0;
  double avg_jct_std = 0.0;
  double p99_jct_hours = 0.0;  // Mean of per-trace p99s.
  double makespan_hours = 0.0;
  double makespan_std = 0.0;
  double gpu_hours_per_job = 0.0;
  double gpu_hours_std = 0.0;
  double avg_contention = 0.0;
  double max_contention = 0.0;
  double avg_restarts = 0.0;
  bool all_finished = true;

  // --- resilience columns (all zero when no faults were injected) ---
  double avg_crashes = 0.0;            // Node crash events per trace.
  double avg_evictions = 0.0;          // Failure-induced job evictions per trace.
  double downtime_gpu_hours = 0.0;     // Mean capacity lost to crash windows.
  double avg_recovery_minutes = 0.0;   // Mean time-to-recover after a crash.
  double zero_goodput_rounds = 0.0;    // Degenerate-goodput rounds per trace.

  // --- policy-cost columns (from SimResult::PolicyCost) ---
  double median_policy_ms = 0.0;       // Median per-round solve wall-clock.
  double p95_policy_ms = 0.0;          // p95 per-round solve wall-clock.
  double avg_bb_nodes = 0.0;           // MILP B&B nodes per trace.
  double avg_lp_iterations = 0.0;      // Simplex iterations per trace.
};

// Aggregates per-trace results for one scheduler.
PolicySummary Summarize(const std::string& policy, const std::vector<SimResult>& results);

// Average GPU-hours consumed per job, grouped by model kind (Fig. 6).
std::map<ModelKind, double> GpuHoursByModel(const std::vector<SimResult>& results);

// Average JCT (hours) grouped by job-size category -- shows which class of
// jobs a policy is serving well (small jobs dominate avg JCT; XL jobs
// dominate GPU-hours).
std::map<SizeCategory, double> AvgJctByCategory(const std::vector<SimResult>& results);

// Column groups a Report can render. Groups compose: requesting several
// concatenates their columns (after the shared "policy" key column) in the
// order listed here, regardless of With() call order.
enum class ReportColumns {
  kHeadline,    // avg/p99 JCT, makespan, GPU-h/job, contention, restarts.
  kResilience,  // Crashes, evictions, downtime, recovery time, zero-goodput.
  kPolicyCost,  // Median/p95 solve wall-clock, B&B nodes, LP iterations.
};

// Builder for paper-style summary tables over PolicySummary rows:
//
//   std::cout << Report("Table 3").Add(summaries).Render();                 // headline
//   std::cout << Report("faults").With(ReportColumns::kResilience)
//                    .Add(summaries).Render();                              // resilience
//
// A Report with no With() call renders kHeadline. Every view of the same
// summaries goes through this one surface, so adding a column group is a
// local change instead of another Render*Table free function.
class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  // Requests a column group (idempotent). Returns *this for chaining.
  Report& With(ReportColumns group);
  Report& Add(const PolicySummary& summary);
  Report& Add(const std::vector<PolicySummary>& summaries);

  // Renders the title plus one table row per added summary.
  std::string Render() const;

 private:
  std::string title_;
  std::vector<ReportColumns> groups_;  // Insertion-ordered, deduplicated.
  std::vector<PolicySummary> rows_;
};

// Renders a Table 3/4-style row set to stdout-ready text. Equivalent to
// Report(title).Add(summaries).Render().
std::string RenderSummaryTable(const std::vector<PolicySummary>& summaries,
                               const std::string& title);

// Jain's fairness index over non-negative values: (sum x)^2 / (n sum x^2),
// in (0, 1]; 1 = perfectly equal. Returns 0 for empty/all-zero input.
double JainFairnessIndex(const std::vector<double>& values);

// Serializes per-job results to CSV:
//   id,name,model,submit_time,finished,jct_hours,gpu_hours,restarts,failures
bool WriteJobResultsCsv(std::ostream& out, const SimResult& result);
bool WriteJobResultsCsv(const std::string& path, const SimResult& result);

}  // namespace sia

#endif  // SIA_SRC_METRICS_REPORT_H_
