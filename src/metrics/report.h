// Aggregation of simulation results into paper-style summary rows
// (Table 3 / Table 4 columns) across one or many trace samples.
#ifndef SIA_SRC_METRICS_REPORT_H_
#define SIA_SRC_METRICS_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "src/models/model_kind.h"
#include "src/sim/simulator.h"

namespace sia {

// One scheduler's metrics aggregated over trace samples (mean +- stddev
// where the paper reports them).
struct PolicySummary {
  std::string policy;
  int num_traces = 0;
  double avg_jct_hours = 0.0;
  double avg_jct_std = 0.0;
  double p99_jct_hours = 0.0;  // Mean of per-trace p99s.
  double makespan_hours = 0.0;
  double makespan_std = 0.0;
  double gpu_hours_per_job = 0.0;
  double gpu_hours_std = 0.0;
  double avg_contention = 0.0;
  double max_contention = 0.0;
  double avg_restarts = 0.0;
  bool all_finished = true;

  // --- resilience columns (all zero when no faults were injected) ---
  double avg_crashes = 0.0;            // Node crash events per trace.
  double avg_evictions = 0.0;          // Failure-induced job evictions per trace.
  double downtime_gpu_hours = 0.0;     // Mean capacity lost to crash windows.
  double avg_recovery_minutes = 0.0;   // Mean time-to-recover after a crash.
  double zero_goodput_rounds = 0.0;    // Degenerate-goodput rounds per trace.
};

// Aggregates per-trace results for one scheduler.
PolicySummary Summarize(const std::string& policy, const std::vector<SimResult>& results);

// Average GPU-hours consumed per job, grouped by model kind (Fig. 6).
std::map<ModelKind, double> GpuHoursByModel(const std::vector<SimResult>& results);

// Average JCT (hours) grouped by job-size category -- shows which class of
// jobs a policy is serving well (small jobs dominate avg JCT; XL jobs
// dominate GPU-hours).
std::map<SizeCategory, double> AvgJctByCategory(const std::vector<SimResult>& results);

// Renders a Table 3/4-style row set to stdout-ready text.
std::string RenderSummaryTable(const std::vector<PolicySummary>& summaries,
                               const std::string& title);

// Renders the resilience view of the same summaries: crash/eviction counts,
// downtime GPU-hours, mean recovery time, and zero-goodput rounds alongside
// the headline JCT so degradation under faults reads in one table.
std::string RenderResilienceTable(const std::vector<PolicySummary>& summaries,
                                  const std::string& title);

// Jain's fairness index over non-negative values: (sum x)^2 / (n sum x^2),
// in (0, 1]; 1 = perfectly equal. Returns 0 for empty/all-zero input.
double JainFairnessIndex(const std::vector<double>& values);

// Serializes per-job results to CSV:
//   id,name,model,submit_time,finished,jct_hours,gpu_hours,restarts,failures
bool WriteJobResultsCsv(std::ostream& out, const SimResult& result);
bool WriteJobResultsCsv(const std::string& path, const SimResult& result);

}  // namespace sia

#endif  // SIA_SRC_METRICS_REPORT_H_
