#include "src/metrics/report.h"

#include <cmath>
#include <fstream>

#include "src/common/stats.h"
#include "src/common/table.h"

namespace sia {

PolicySummary Summarize(const std::string& policy, const std::vector<SimResult>& results) {
  PolicySummary summary;
  summary.policy = policy;
  summary.num_traces = static_cast<int>(results.size());
  RunningStats jct, p99, makespan, gpu_hours, contention, restarts;
  RunningStats crashes, evictions, downtime, recovery, zero_goodput;
  RunningStats policy_median, policy_p95, bb_nodes, lp_iterations;
  double max_contention = 0.0;
  for (const SimResult& result : results) {
    jct.Add(result.AvgJctHours());
    p99.Add(result.P99JctHours());
    makespan.Add(result.MakespanHours());
    gpu_hours.Add(result.AvgGpuHoursPerJob());
    contention.Add(result.avg_contention);
    restarts.Add(result.AvgRestarts());
    max_contention = std::max(max_contention, static_cast<double>(result.max_contention));
    summary.all_finished = summary.all_finished && result.all_finished;
    crashes.Add(static_cast<double>(result.resilience.total_failures));
    evictions.Add(static_cast<double>(result.resilience.failure_evictions));
    downtime.Add(result.NodeDowntimeGpuHours());
    if (!result.resilience.recovery_seconds.empty()) {
      recovery.Add(result.AvgRecoveryMinutes());
    }
    zero_goodput.Add(static_cast<double>(result.resilience.zero_goodput_rounds));
    policy_median.Add(result.MedianPolicyRuntime() * 1e3);
    policy_p95.Add(result.P95PolicyRuntime() * 1e3);
    bb_nodes.Add(static_cast<double>(result.policy_cost.solver_bb_nodes));
    lp_iterations.Add(static_cast<double>(result.policy_cost.solver_lp_iterations));
  }
  summary.avg_jct_hours = jct.mean();
  summary.avg_jct_std = jct.stddev();
  summary.p99_jct_hours = p99.mean();
  summary.makespan_hours = makespan.mean();
  summary.makespan_std = makespan.stddev();
  summary.gpu_hours_per_job = gpu_hours.mean();
  summary.gpu_hours_std = gpu_hours.stddev();
  summary.avg_contention = contention.mean();
  summary.max_contention = max_contention;
  summary.avg_restarts = restarts.mean();
  summary.avg_crashes = crashes.mean();
  summary.avg_evictions = evictions.mean();
  summary.downtime_gpu_hours = downtime.mean();
  summary.avg_recovery_minutes = recovery.mean();
  summary.zero_goodput_rounds = zero_goodput.mean();
  summary.median_policy_ms = policy_median.mean();
  summary.p95_policy_ms = policy_p95.mean();
  summary.avg_bb_nodes = bb_nodes.mean();
  summary.avg_lp_iterations = lp_iterations.mean();
  return summary;
}

std::map<ModelKind, double> GpuHoursByModel(const std::vector<SimResult>& results) {
  std::map<ModelKind, double> totals;
  std::map<ModelKind, int> counts;
  for (const SimResult& result : results) {
    for (const JobResult& job : result.jobs) {
      totals[job.spec.model] += job.gpu_seconds / 3600.0;
      counts[job.spec.model] += 1;
    }
  }
  std::map<ModelKind, double> averages;
  for (const auto& [model, total] : totals) {
    averages[model] = total / counts[model];
  }
  return averages;
}

std::map<SizeCategory, double> AvgJctByCategory(const std::vector<SimResult>& results) {
  std::map<SizeCategory, double> totals;
  std::map<SizeCategory, int> counts;
  for (const SimResult& result : results) {
    for (const JobResult& job : result.jobs) {
      const SizeCategory category = CategoryOf(job.spec.model);
      totals[category] += job.jct / 3600.0;
      counts[category] += 1;
    }
  }
  std::map<SizeCategory, double> averages;
  for (const auto& [category, total] : totals) {
    averages[category] = total / counts[category];
  }
  return averages;
}

namespace {

void AppendHeader(ReportColumns group, std::vector<std::string>& header) {
  switch (group) {
    case ReportColumns::kHeadline:
      header.insert(header.end(), {"avg JCT (h)", "p99 JCT (h)", "makespan (h)", "GPU-h/job",
                                   "contention avg", "contention max", "restarts/job"});
      break;
    case ReportColumns::kResilience:
      header.insert(header.end(), {"avg JCT (h)", "crashes", "evictions", "downtime GPU-h",
                                   "recovery (min)", "zero-goodput", "finished"});
      break;
    case ReportColumns::kPolicyCost:
      header.insert(header.end(),
                    {"policy med (ms)", "policy p95 (ms)", "B&B nodes", "LP iters"});
      break;
  }
}

void AppendCells(ReportColumns group, const PolicySummary& summary,
                 std::vector<std::string>& row) {
  switch (group) {
    case ReportColumns::kHeadline:
      row.insert(row.end(),
                 {Table::Num(summary.avg_jct_hours) + " +- " + Table::Num(summary.avg_jct_std, 2),
                  Table::Num(summary.p99_jct_hours, 1),
                  Table::Num(summary.makespan_hours, 1) + " +- " +
                      Table::Num(summary.makespan_std, 1),
                  Table::Num(summary.gpu_hours_per_job) + " +- " +
                      Table::Num(summary.gpu_hours_std, 2),
                  Table::Num(summary.avg_contention, 1), Table::Num(summary.max_contention, 0),
                  Table::Num(summary.avg_restarts, 1)});
      break;
    case ReportColumns::kResilience:
      row.insert(row.end(),
                 {Table::Num(summary.avg_jct_hours), Table::Num(summary.avg_crashes, 1),
                  Table::Num(summary.avg_evictions, 1), Table::Num(summary.downtime_gpu_hours, 1),
                  Table::Num(summary.avg_recovery_minutes, 1),
                  Table::Num(summary.zero_goodput_rounds, 1),
                  summary.all_finished ? "yes" : "NO"});
      break;
    case ReportColumns::kPolicyCost:
      row.insert(row.end(),
                 {Table::Num(summary.median_policy_ms, 2), Table::Num(summary.p95_policy_ms, 2),
                  Table::Num(summary.avg_bb_nodes, 0), Table::Num(summary.avg_lp_iterations, 0)});
      break;
  }
}

}  // namespace

Report& Report::With(ReportColumns group) {
  for (ReportColumns existing : groups_) {
    if (existing == group) {
      return *this;
    }
  }
  groups_.push_back(group);
  return *this;
}

Report& Report::Add(const PolicySummary& summary) {
  rows_.push_back(summary);
  return *this;
}

Report& Report::Add(const std::vector<PolicySummary>& summaries) {
  rows_.insert(rows_.end(), summaries.begin(), summaries.end());
  return *this;
}

std::string Report::Render() const {
  // Fixed rendering order regardless of With() call order, so composed
  // reports always read headline -> resilience -> policy cost.
  std::vector<ReportColumns> groups;
  for (ReportColumns group : {ReportColumns::kHeadline, ReportColumns::kResilience,
                              ReportColumns::kPolicyCost}) {
    for (ReportColumns requested : groups_) {
      if (requested == group) {
        groups.push_back(group);
      }
    }
  }
  if (groups.empty()) {
    groups.push_back(ReportColumns::kHeadline);
  }
  std::vector<std::string> header{"policy"};
  for (ReportColumns group : groups) {
    AppendHeader(group, header);
  }
  Table table(header);
  for (const PolicySummary& summary : rows_) {
    std::vector<std::string> row{summary.policy};
    for (ReportColumns group : groups) {
      AppendCells(group, summary, row);
    }
    table.AddRow(row);
  }
  return title_ + "\n" + table.Render();
}

std::string RenderSummaryTable(const std::vector<PolicySummary>& summaries,
                               const std::string& title) {
  return Report(title).Add(summaries).Render();
}

double JainFairnessIndex(const std::vector<double>& values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq == 0.0) {
    return 0.0;
  }
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

bool WriteJobResultsCsv(std::ostream& out, const SimResult& result) {
  // SLA columns appear only when the run had SLA jobs, so all-best-effort
  // results keep the classic byte-identical 9-column layout.
  bool any_sla = false;
  for (const JobResult& job : result.jobs) {
    any_sla = any_sla || job.spec.sla_class != SlaClass::kBestEffort;
  }
  out << "id,name,model,submit_time,finished,jct_hours,gpu_hours,restarts,failures";
  if (any_sla) {
    out << ",sla_class,deadline_hours,sla_violated";
  }
  out << "\n";
  for (const JobResult& job : result.jobs) {
    out << job.spec.id << "," << job.spec.name << "," << ToString(job.spec.model) << ","
        << job.spec.submit_time << "," << (job.finished ? 1 : 0) << "," << job.jct / 3600.0
        << "," << job.gpu_seconds / 3600.0 << "," << job.num_restarts << "," << job.num_failures;
    if (any_sla) {
      out << "," << static_cast<int>(job.spec.sla_class) << ","
          << job.spec.deadline_seconds / 3600.0 << "," << (job.sla_violated ? 1 : 0);
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool WriteJobResultsCsv(const std::string& path, const SimResult& result) {
  std::ofstream out(path);
  return out.is_open() && WriteJobResultsCsv(out, result);
}

}  // namespace sia
