// Durable file-write helpers for crash-safe persistence (ISSUE 5).
#ifndef SIA_SRC_COMMON_FILE_UTIL_H_
#define SIA_SRC_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

namespace sia {

// Writes `contents` to `path` atomically: write to `<path>.tmp`, fsync the
// file, close it (checking the close result, which can carry a deferred
// write-back error), rename over `path`, then fsync the containing
// directory.
//
// Power-loss guarantee: once this returns true, the complete new contents
// survive a crash or power loss at any later instant -- the data was synced
// before the rename and the rename itself was synced via the parent
// directory. If the machine dies mid-call, a reader afterwards sees either
// the old file (or nothing) or the complete new one, never a partial or
// interleaved state; at worst a stale `<path>.tmp` is left behind and is
// overwritten by the next successful call. Returns false and fills `error`
// (if non-null) on failure; a failed write never leaves a partial `path`
// behind.
bool AtomicWriteFile(const std::string& path, std::string_view contents,
                     std::string* error = nullptr);

// Reads the whole file into `out`. Returns false (and fills `error`) when the
// file cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* out, std::string* error = nullptr);

// Truncates `path` to exactly `size` bytes and fsyncs the result, so a
// repaired (torn-tail-trimmed) journal cannot revert to its torn state
// after power loss. Fails when the file is shorter than `size` (truncation
// must only ever discard data, never invent it).
bool TruncateFile(const std::string& path, uint64_t size, std::string* error = nullptr);

}  // namespace sia

#endif  // SIA_SRC_COMMON_FILE_UTIL_H_
