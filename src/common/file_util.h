// Durable file-write helpers for crash-safe persistence (ISSUE 5).
#ifndef SIA_SRC_COMMON_FILE_UTIL_H_
#define SIA_SRC_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

namespace sia {

// Writes `contents` to `path` atomically: write to `<path>.tmp`, fsync the
// file, rename over `path`, then fsync the containing directory. A reader
// never observes a partially written file -- either the old file (or
// nothing) or the complete new one. Returns false and fills `error` (if
// non-null) on failure; a failed write never leaves a partial `path` behind.
bool AtomicWriteFile(const std::string& path, std::string_view contents,
                     std::string* error = nullptr);

// Reads the whole file into `out`. Returns false (and fills `error`) when the
// file cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* out, std::string* error = nullptr);

// Truncates `path` to exactly `size` bytes. Fails when the file is shorter
// than `size` (truncation must only ever discard data, never invent it).
bool TruncateFile(const std::string& path, uint64_t size, std::string* error = nullptr);

}  // namespace sia

#endif  // SIA_SRC_COMMON_FILE_UTIL_H_
