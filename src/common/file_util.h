// Durable file-write helpers for crash-safe persistence (ISSUE 5) and the
// injectable filesystem seam the storage-fault tests drive (ISSUE 10).
#ifndef SIA_SRC_COMMON_FILE_UTIL_H_
#define SIA_SRC_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#ifndef _WIN32
#include <sys/types.h>
#endif

namespace sia {

#ifndef _WIN32
// The syscall seam every durable-write path in the tree goes through
// (AtomicWriteFile, TruncateFile, the service journal). The default
// implementation forwards to the real syscalls; tests install a
// FaultInjectingFileOps (src/common/fault_file_ops.h) to inject ENOSPC, EIO,
// torn writes, fsync failures, and rename failures at scripted or seeded
// points. All methods follow syscall conventions: negative return (or -1)
// means failure with the cause in errno.
//
// Read paths (ReadFileToString, std::ifstream) intentionally bypass the
// seam: the fault model is write-side storage loss, and recovery code must
// be able to read back whatever the faulted writes left behind.
class FileOps {
 public:
  virtual ~FileOps() = default;

  virtual int Open(const char* path, int flags, mode_t mode);
  virtual ssize_t Write(int fd, const void* buf, size_t count);
  virtual int Fsync(int fd);
  virtual int Fdatasync(int fd);
  virtual int Close(int fd);
  virtual int Rename(const char* from, const char* to);
  virtual int Unlink(const char* path);
  virtual int Ftruncate(int fd, off_t length);
};

// Current seam; never nullptr (defaults to the real-syscall implementation).
FileOps* GetFileOps();

// Installs `ops` process-wide and returns the previous seam; nullptr
// restores the real syscalls. The caller keeps ownership of `ops` and must
// keep it alive until replaced. Thread-compatible: install before spawning
// threads that do durable writes (tests and tool main()s do).
FileOps* SetFileOps(FileOps* ops);

// Flushes a file (or directory) to stable storage through the seam. Best
// effort on filesystems that reject fsync on directories (EINVAL/EBADF).
bool FsyncPath(const std::string& path, bool is_dir, std::string* error = nullptr);
#endif  // !_WIN32

// Writes `contents` to `path` atomically: write to `<path>.tmp`, fsync the
// file, close it (checking the close result, which can carry a deferred
// write-back error), rename over `path`, then fsync the containing
// directory.
//
// Power-loss guarantee: once this returns true, the complete new contents
// survive a crash or power loss at any later instant -- the data was synced
// before the rename and the rename itself was synced via the parent
// directory. If the machine dies mid-call, a reader afterwards sees either
// the old file (or nothing) or the complete new one, never a partial or
// interleaved state. Returns false and fills `error` (if non-null) on
// failure; a failed write never leaves a partial `path` behind, and the
// temp file is unlinked on every error path (close-failure included).
bool AtomicWriteFile(const std::string& path, std::string_view contents,
                     std::string* error = nullptr);

// Reads the whole file into `out`. Returns false (and fills `error`) when the
// file cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* out, std::string* error = nullptr);

// Truncates `path` to exactly `size` bytes and fsyncs the result, so a
// repaired (torn-tail-trimmed) journal cannot revert to its torn state
// after power loss. Fails when the file is shorter than `size` (truncation
// must only ever discard data, never invent it).
bool TruncateFile(const std::string& path, uint64_t size, std::string* error = nullptr);

}  // namespace sia

#endif  // SIA_SRC_COMMON_FILE_UTIL_H_
