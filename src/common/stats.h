// Summary-statistics helpers shared by the simulator, metrics, and benches.
#ifndef SIA_SRC_COMMON_STATS_H_
#define SIA_SRC_COMMON_STATS_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace sia {

// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  // Raw Welford second moment, exposed for snapshot serialization (ISSUE 5).
  double m2() const { return m2_; }

  // Rebuilds an accumulator from previously saved raw parts; restoring the
  // exact bits guarantees the continuation of a resumed run accumulates
  // identically to the uninterrupted one.
  static RunningStats FromParts(size_t count, double mean, double m2, double min, double max,
                                double sum) {
    RunningStats s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    s.sum_ = sum;
    return s;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Returns the q-quantile (q in [0,1]) of `values` using linear interpolation
// between closest ranks. Copies and sorts internally. Requires non-empty input.
double Percentile(std::vector<double> values, double q);

// Convenience wrappers.
double Mean(const std::vector<double>& values);
double Median(std::vector<double> values);

// Empirical CDF: sorted (value, cumulative fraction) points, one per sample.
std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> values);

// Fraction of samples strictly greater than `threshold`.
double FractionAbove(const std::vector<double>& values, double threshold);

}  // namespace sia

#endif  // SIA_SRC_COMMON_STATS_H_
