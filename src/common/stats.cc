#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace sia {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

double Percentile(std::vector<double> values, double q) {
  SIA_CHECK(!values.empty()) << "Percentile of empty vector";
  SIA_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 0.5); }

std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cdf.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t count = 0;
  for (double v : values) {
    if (v > threshold) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace sia
