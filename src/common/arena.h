// Per-round scratch arena (ISSUE 8).
//
// A bump allocator for transient round-scoped state: candidate lists, LP
// row assembly, and branch-and-bound node state all live exactly one
// scheduling round, so individually freeing them is pure overhead. The
// arena hands out pointers from large blocks and recycles every block on
// Reset() -- after a warm-up round the steady state performs zero upstream
// (malloc) allocations, which Stats::upstream_allocations makes testable.
//
// NOT thread-safe: allocation and Reset must stay on one thread. Parallel
// phases (candidate generation) must carve their containers out of the
// arena in a sequential prologue and only write element slots from workers.
//
// Objects allocated here are never destructed -- only trivially
// destructible payloads are legal, which ArenaVector enforces.
#ifndef SIA_SRC_COMMON_ARENA_H_
#define SIA_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/common/check.h"

namespace sia {

class ScratchArena {
 public:
  struct Stats {
    // malloc-backed block acquisitions over the arena's lifetime. Flat
    // across steady-state rounds = the round ran allocation-free.
    uint64_t upstream_allocations = 0;
    uint64_t resets = 0;
    uint64_t lifetime_bytes = 0;  // Sum of all Allocate() requests.
    size_t block_count = 0;
    size_t reserved_bytes = 0;  // Total capacity across blocks.
  };

  explicit ScratchArena(size_t initial_block_bytes = kDefaultBlockBytes)
      : initial_block_bytes_(initial_block_bytes < kMinBlockBytes ? kMinBlockBytes
                                                                  : initial_block_bytes) {}
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two). The
  // memory is uninitialized and valid until the next Reset().
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (count == 0) {
      return nullptr;
    }
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Recycles every block: subsequent allocations reuse the reserved
  // capacity front-to-back. All previously returned pointers become
  // invalid. O(1) apart from bookkeeping; nothing is freed.
  void Reset();

  const Stats& stats() const { return stats_; }

 private:
  static constexpr size_t kDefaultBlockBytes = size_t{256} << 10;
  static constexpr size_t kMinBlockBytes = size_t{1} << 10;

  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
  };

  void* AllocateSlow(size_t bytes, size_t align);

  size_t initial_block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;  // Index of the block being bumped.
  size_t offset_ = 0;   // Bump cursor within blocks_[current_].
  Stats stats_;
};

// Minimal vector over arena storage. Growth allocates a fresh arena array
// and memcpys (old storage is abandoned to the arena -- cheap by design,
// since everything is reclaimed wholesale at Reset). reserve() up front
// where the bound is known; push_back past capacity in a parallel section
// is a data race, exactly like any other allocation there.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "ArenaVector elements are moved with memcpy and never destructed");

 public:
  ArenaVector() = default;
  explicit ArenaVector(ScratchArena* arena) : arena_(arena) {}

  void set_arena(ScratchArena* arena) {
    SIA_CHECK(data_ == nullptr) << "rebinding a non-empty ArenaVector";
    arena_ = arena;
  }

  void reserve(size_t capacity) {
    if (capacity > capacity_) {
      Grow(capacity);
    }
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow(capacity_ == 0 ? 8 : capacity_ * 2);
    }
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }
  void pop_back() { --size_; }
  void resize(size_t size) {
    reserve(size);
    if (size > size_) {
      std::memset(static_cast<void*>(data_ + size_), 0, (size - size_) * sizeof(T));
    }
    size_ = size;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& back() { return data_[size_ - 1]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

 private:
  void Grow(size_t capacity) {
    SIA_CHECK(arena_ != nullptr) << "ArenaVector used without an arena";
    T* grown = arena_->AllocateArray<T>(capacity);
    if (size_ > 0) {
      std::memcpy(static_cast<void*>(grown), static_cast<const void*>(data_),
                  size_ * sizeof(T));
    }
    data_ = grown;
    capacity_ = capacity;
  }

  ScratchArena* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace sia

#endif  // SIA_SRC_COMMON_ARENA_H_
