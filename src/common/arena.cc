#include "src/common/arena.h"

namespace sia {

void* ScratchArena::Allocate(size_t bytes, size_t align) {
  SIA_CHECK(align != 0 && (align & (align - 1)) == 0) << "alignment must be a power of two";
  stats_.lifetime_bytes += bytes;
  if (bytes == 0) {
    bytes = 1;  // Distinct non-null pointers keep callers honest.
  }
  if (current_ < blocks_.size()) {
    const uintptr_t base = reinterpret_cast<uintptr_t>(blocks_[current_].data.get());
    const size_t aligned = ((base + offset_ + align - 1) & ~(align - 1)) - base;
    if (aligned + bytes <= blocks_[current_].capacity) {
      offset_ = aligned + bytes;
      return blocks_[current_].data.get() + aligned;
    }
  }
  return AllocateSlow(bytes, align);
}

void* ScratchArena::AllocateSlow(size_t bytes, size_t align) {
  // Advance through already-reserved blocks first (they were acquired in a
  // previous round and recycled by Reset); only when none fits does the
  // arena go upstream. Blocks double so any workload reaches a steady
  // state after logarithmically many acquisitions.
  while (current_ + 1 < blocks_.size()) {
    ++current_;
    offset_ = 0;
    const uintptr_t base = reinterpret_cast<uintptr_t>(blocks_[current_].data.get());
    const size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
    if (aligned + bytes <= blocks_[current_].capacity) {
      offset_ = aligned + bytes;
      return blocks_[current_].data.get() + aligned;
    }
  }
  size_t capacity = blocks_.empty() ? initial_block_bytes_ : blocks_.back().capacity * 2;
  while (capacity < bytes + align) {
    capacity *= 2;
  }
  Block block;
  block.data = std::make_unique<unsigned char[]>(capacity);
  block.capacity = capacity;
  blocks_.push_back(std::move(block));
  ++stats_.upstream_allocations;
  stats_.block_count = blocks_.size();
  stats_.reserved_bytes += capacity;
  current_ = blocks_.size() - 1;
  const uintptr_t base = reinterpret_cast<uintptr_t>(blocks_[current_].data.get());
  const size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
  offset_ = aligned + bytes;
  return blocks_[current_].data.get() + aligned;
}

void ScratchArena::Reset() {
  current_ = 0;
  offset_ = 0;
  ++stats_.resets;
}

}  // namespace sia
