#include "src/common/flags.h"

#include <cstdlib>

#include "src/common/check.h"

namespace sia {

bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      error_ = "bare '--' is not a flag";
      return false;
    }
    // Only --name=value and bare --name (boolean true) are supported;
    // "--name value" is ambiguous with positional arguments.
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

bool FlagParser::Has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double FlagParser::GetDouble(const std::string& name, double default_value) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  SIA_CHECK(end != it->second.c_str() && *end == '\0')
      << "flag --" << name << " expects a number, got '" << it->second << "'";
  return value;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  SIA_CHECK(end != it->second.c_str() && *end == '\0')
      << "flag --" << name << " expects an integer, got '" << it->second << "'";
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  SIA_CHECK(false) << "flag --" << name << " expects a boolean, got '" << v << "'";
  return default_value;
}

std::vector<std::string> FlagParser::UnknownFlags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (!queried_.count(name)) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace sia
