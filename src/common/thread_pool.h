// Fixed-size thread pool for the scheduling fast path (ISSUE 3).
//
// Design constraints:
//  * deterministic results -- ParallelFor hands each index to exactly one
//    worker and callers write into per-index slots, so the output is
//    byte-identical regardless of how many threads execute it (including
//    zero: a 1-thread pool runs everything inline on the caller);
//  * no work stealing, no task dependencies -- the schedulers' per-job
//    candidate loops are embarrassingly parallel, so a mutex-guarded deque
//    plus an atomic index counter is all the machinery needed;
//  * safe reuse -- one pool per scheduler lives across rounds; Submit/Drain
//    and ParallelFor may be called repeatedly and from different rounds.
//
// Tasks must not throw: an escaping exception would terminate the process
// (worker threads have no handler), which SIA_CHECK-style aborts already do.
#ifndef SIA_SRC_COMMON_THREAD_POOL_H_
#define SIA_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sia {

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers: the calling thread always participates
  // in ParallelFor, so a pool of size 1 runs strictly inline and spawns
  // nothing. num_threads < 1 is clamped to 1; 0 from
  // std::thread::hardware_concurrency() callers therefore degrades safely.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues a task for any worker (inline when the pool has no workers).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Drain();

  // Runs fn(0) ... fn(n-1), each exactly once, and returns when all calls
  // completed. Indices are claimed from a shared atomic counter, so the
  // execution *order* is nondeterministic but the index->call mapping is
  // not; callers must write results into per-index slots. The calling
  // thread participates, so this never deadlocks even on a 1-thread pool.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: task queued / stop.
  std::condition_variable drain_cv_;  // Signals Drain(): queue empty & idle.
  int active_ = 0;                    // Tasks currently executing.
  bool stop_ = false;
};

}  // namespace sia

#endif  // SIA_SRC_COMMON_THREAD_POOL_H_
