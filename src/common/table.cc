#include "src/common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/common/check.h"

namespace sia {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SIA_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  SIA_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, header has " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_separator = [&widths]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_separator();
  out += render_row(headers_);
  out += render_separator();
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += render_separator();
  return out;
}

std::string Table::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace sia
