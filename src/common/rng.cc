#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace sia {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a hash over a string, used to key Fork() streams by name.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64Next(sm);
  }
}

Rng Rng::Fork(std::string_view name, uint64_t index) const {
  // Mix the current state (not advanced) with the stream key. Copies of the
  // same Rng produce identical forks, which keeps experiments reproducible.
  uint64_t key = state_[0] ^ Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^ Rotl(state_[3], 47);
  key ^= HashName(name) + 0x9E3779B97F4A7C15ULL * (index + 1);
  return Rng(key);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform(double lo, double hi) {
  SIA_DCHECK(lo <= hi);
  // 53 random mantissa bits -> uniform in [0, 1).
  const double unit = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SIA_CHECK(lo <= hi) << "UniformInt range [" << lo << ", " << hi << "]";
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~0ULL) - ((~0ULL) % span);
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  SIA_CHECK(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  SIA_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double draw = Normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  // Knuth's algorithm.
  const double limit = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= Uniform();
  } while (product > limit);
  return count;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return Uniform() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SIA_DCHECK(w >= 0.0);
    total += w;
  }
  SIA_CHECK(total > 0.0) << "WeightedIndex requires positive total weight";
  double draw = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

void Rng::SaveState(BinaryWriter& w) const {
  for (uint64_t word : state_) w.U64(word);
  w.Bool(has_cached_normal_);
  w.F64(cached_normal_);
}

bool Rng::RestoreState(BinaryReader& r) {
  for (auto& word : state_) word = r.U64();
  has_cached_normal_ = r.Bool();
  cached_normal_ = r.F64();
  return r.ok();
}

}  // namespace sia
