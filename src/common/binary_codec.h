// Minimal bounds-checked binary serialization used by the snapshot subsystem
// (ISSUE 5). Fixed-width little-endian-on-x86 host encoding: snapshots are a
// crash-recovery mechanism for the *same* binary on the *same* machine, not a
// portable interchange format, so no byte-swapping is attempted (the framing
// layer in src/snapshot rejects foreign files via magic + version + checksum).
//
// Header-only so that low-level components (Rng, estimator, schedulers) can
// serialize themselves without a link-time dependency on the snapshot
// library.
#ifndef SIA_SRC_COMMON_BINARY_CODEC_H_
#define SIA_SRC_COMMON_BINARY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace sia {

// Appends primitives to an in-memory buffer. Never fails.
class BinaryWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  // Doubles are written as raw IEEE-754 bits so restore is bit-exact (NaN
  // payloads and signed zeros included) -- required for byte-identical
  // resumed traces.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  // Length-prefixed opaque blob (e.g. a nested writer's buffer).
  void Blob(std::string_view s) { Str(s); }

  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    for (double x : v) F64(x);
  }
  void VecU64(const std::vector<uint64_t>& v) {
    U64(v.size());
    for (uint64_t x : v) U64(x);
  }
  void VecU8(const std::vector<uint8_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size());
  }

  const std::string& data() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void Raw(const void* p, size_t n) {
    if (n > 0) buffer_.append(static_cast<const char*>(p), n);
  }
  std::string buffer_;
};

// Reads primitives back. Out-of-bounds or failed validation flips `ok()` to
// false and every subsequent read returns a zero value, so callers can do one
// `ok()` check at the end of a decode instead of after every field.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  bool Bool() { return U8() != 0; }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint64_t n = U64();
    if (!CheckAvailable(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::string Blob() { return Str(); }

  std::vector<double> VecF64() {
    uint64_t n = U64();
    if (!CheckCount(n, sizeof(double))) return {};
    std::vector<double> v(n);
    for (uint64_t i = 0; i < n; ++i) v[i] = F64();
    return v;
  }
  std::vector<uint64_t> VecU64() {
    uint64_t n = U64();
    if (!CheckCount(n, sizeof(uint64_t))) return {};
    std::vector<uint64_t> v(n);
    for (uint64_t i = 0; i < n; ++i) v[i] = U64();
    return v;
  }
  std::vector<uint8_t> VecU8() {
    uint64_t n = U64();
    if (!CheckAvailable(n)) return {};
    std::vector<uint8_t> v(n);
    if (n > 0) std::memcpy(v.data(), data_.data() + pos_, n);
    pos_ += n;
    return v;
  }

  // Marks the decode as failed with a reason (e.g. a version or size
  // validation the caller performed itself).
  void Fail(std::string message) {
    if (ok_) error_ = std::move(message);
    ok_ = false;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool CheckAvailable(uint64_t n) {
    if (!ok_) return false;
    if (n > data_.size() - pos_) {
      Fail("truncated payload");
      return false;
    }
    return true;
  }
  // Guards element-count prefixes against absurd values that would trigger a
  // huge allocation before the per-element reads start failing.
  bool CheckCount(uint64_t n, size_t elem_size) {
    if (!ok_) return false;
    if (n > (data_.size() - pos_) / elem_size) {
      Fail("truncated payload");
      return false;
    }
    return true;
  }
  void Raw(void* p, size_t n) {
    if (!CheckAvailable(n)) {
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace sia

#endif  // SIA_SRC_COMMON_BINARY_CODEC_H_
