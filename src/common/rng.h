// Deterministic random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng instances derived from a
// root seed via named streams, so a simulation is exactly reproducible given
// (seed, trace id) and independent components never share a stream.
#ifndef SIA_SRC_COMMON_RNG_H_
#define SIA_SRC_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/binary_codec.h"

namespace sia {

// SplitMix64: used for seeding and stream derivation.
// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
inline uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = uint64_t;

  // Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5DEECE66DULL);

  // Derives an independent child stream keyed by a name and an index, e.g.
  // rng.Fork("job-arrivals", trace_id). Deterministic in (parent seed, name, index).
  Rng Fork(std::string_view name, uint64_t index = 0) const;

  uint64_t Next();

  // UniformReal in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Standard normal via Box-Muller, scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0);
  // exp(N(mu, sigma^2)); multiplicative noise around exp(mu + sigma^2/2).
  double LogNormal(double mu, double sigma);
  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);
  // Poisson-distributed count with the given mean (Knuth for small mean,
  // normal approximation above 64).
  int64_t Poisson(double mean);
  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);
  // Samples an index according to non-negative weights; requires sum > 0.
  size_t WeightedIndex(const std::vector<double>& weights);

  // UniformRandomBitGenerator interface for <algorithm> interop.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  // Snapshot support (ISSUE 5): serializes the full stream position -- the
  // four xoshiro state words plus the cached Box-Muller variate -- so a
  // restored stream reproduces the exact tail of the original, across every
  // distribution above.
  void SaveState(BinaryWriter& w) const;
  // Returns false (and marks `r` failed) on a malformed record.
  bool RestoreState(BinaryReader& r);

 private:
  uint64_t state_[4];
  // Cached second Box-Muller variate.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sia

#endif  // SIA_SRC_COMMON_RNG_H_
