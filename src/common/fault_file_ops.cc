#include "src/common/fault_file_ops.h"

#ifndef _WIN32

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace sia {
namespace {

// SplitMix64: one independent, well-mixed draw per (seed, op index) without
// any shared RNG stream to contend on.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double UnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);  // 2^-53.
}

}  // namespace

FaultInjectingFileOps::FaultInjectingFileOps(FaultFileOpsOptions options)
    : options_(std::move(options)),
      fail_points_(options_.fail_points.begin(), options_.fail_points.end()) {}

FaultFileOpsStats FaultInjectingFileOps::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjectingFileOps::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool FaultInjectingFileOps::NextOpFails(uint64_t* index) {
  // Caller holds mu_. Disabled periods do not consume op indices, so a
  // reference pass leaves the schedule where it started.
  if (!enabled_) {
    return false;
  }
  *index = next_op_++;
  ++stats_.eligible_ops;
  if (options_.period > 0 &&
      static_cast<int>(*index % static_cast<uint64_t>(options_.period)) < options_.burst) {
    return true;
  }
  if (options_.fail_probability > 0.0 &&
      UnitDouble(Mix64(options_.seed ^ (*index * 0x2545F4914F6CDD1DULL))) <
          options_.fail_probability) {
    return true;
  }
  return fail_points_.count(*index) > 0;
}

bool FaultInjectingFileOps::TrackedFdLocked(int fd) const {
  return options_.path_filter.empty() || tracked_fds_.count(fd) > 0;
}

int FaultInjectingFileOps::Open(const char* path, int flags, mode_t mode) {
  const bool matched =
      options_.path_filter.empty() || std::strstr(path, options_.path_filter.c_str()) != nullptr;
  if (matched) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = 0;
    if (NextOpFails(&index)) {
      ++stats_.injected;
      ++stats_.open_faults;
      errno = ENOSPC;
      return -1;
    }
  }
  const int fd = FileOps::Open(path, flags, mode);
  if (fd >= 0 && matched && !options_.path_filter.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    tracked_fds_.insert(fd);
  }
  return fd;
}

ssize_t FaultInjectingFileOps::Write(int fd, const void* buf, size_t count) {
  if (count > 0) {
    int kind = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t index = 0;
      if (TrackedFdLocked(fd) && NextOpFails(&index)) {
        kind = static_cast<int>(Mix64(options_.seed ^ index) % 3);
        ++stats_.injected;
        ++stats_.write_faults;
        if (kind == 2) {
          ++stats_.torn_writes;
        }
      }
    }
    if (kind == 0) {
      errno = ENOSPC;
      return -1;
    }
    if (kind == 1) {
      errno = EIO;
      return -1;
    }
    if (kind == 2) {
      // Torn write: half the buffer really lands on disk, then the device
      // errors. The caller sees a failure; the file carries a partial record
      // that recovery must cope with.
      const size_t half = count / 2;
      if (half > 0) {
        size_t done = 0;
        while (done < half) {
          const ssize_t n = FileOps::Write(fd, static_cast<const char*>(buf) + done, half - done);
          if (n <= 0) break;
          done += static_cast<size_t>(n);
        }
      }
      errno = EIO;
      return -1;
    }
  }
  return FileOps::Write(fd, buf, count);
}

int FaultInjectingFileOps::Fsync(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = 0;
    if (TrackedFdLocked(fd) && NextOpFails(&index)) {
      ++stats_.injected;
      ++stats_.sync_faults;
      errno = EIO;
      return -1;
    }
  }
  return FileOps::Fsync(fd);
}

int FaultInjectingFileOps::Fdatasync(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = 0;
    if (TrackedFdLocked(fd) && NextOpFails(&index)) {
      ++stats_.injected;
      ++stats_.sync_faults;
      errno = EIO;
      return -1;
    }
  }
  return FileOps::Fdatasync(fd);
}

int FaultInjectingFileOps::Close(int fd) {
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = 0;
    if (TrackedFdLocked(fd) && NextOpFails(&index)) {
      fail = true;
      ++stats_.injected;
      ++stats_.close_faults;
    }
    tracked_fds_.erase(fd);
  }
  // Like a real deferred write-back error: the fd is released either way,
  // only the result differs -- no test may leak fds through the seam.
  const int rc = FileOps::Close(fd);
  if (fail) {
    errno = EIO;
    return -1;
  }
  return rc;
}

int FaultInjectingFileOps::Rename(const char* from, const char* to) {
  const bool matched = options_.path_filter.empty() ||
                       std::strstr(from, options_.path_filter.c_str()) != nullptr ||
                       std::strstr(to, options_.path_filter.c_str()) != nullptr;
  if (matched) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = 0;
    if (NextOpFails(&index)) {
      // Crash-before-rename analog: the data file is synced but the link
      // step never happens; the target keeps its old contents.
      ++stats_.injected;
      ++stats_.rename_faults;
      errno = EIO;
      return -1;
    }
  }
  return FileOps::Rename(from, to);
}

int FaultInjectingFileOps::Unlink(const char* path) {
  // Unlink is cleanup, not durability; never faulted (error paths that
  // unlink a temp file must always be able to finish cleaning up).
  return FileOps::Unlink(path);
}

int FaultInjectingFileOps::Ftruncate(int fd, off_t length) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t index = 0;
    if (TrackedFdLocked(fd) && NextOpFails(&index)) {
      ++stats_.injected;
      ++stats_.truncate_faults;
      errno = EIO;
      return -1;
    }
  }
  return FileOps::Ftruncate(fd, length);
}

}  // namespace sia

#endif  // !_WIN32
