// Minimal command-line flag parser for the tools and examples:
// --name=value, or bare --name for booleans; everything else is positional.
// Unknown flags are reported. No global state.
#ifndef SIA_SRC_COMMON_FLAGS_H_
#define SIA_SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace sia {

class FlagParser {
 public:
  // Parses argv; returns false (and fills error()) on malformed input.
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  // Typed getters with defaults; abort on unparseable values.
  std::string GetString(const std::string& name, const std::string& default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  // Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }
  // Names seen during Parse but never queried (typo detection); call after
  // all Get*() calls.
  std::vector<std::string> UnknownFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace sia

#endif  // SIA_SRC_COMMON_FLAGS_H_
