// Minimal leveled logging for the Sia library.
//
// Usage: SIA_LOG(INFO) << "scheduled " << n << " jobs";
// The global threshold is controlled with sia::SetLogLevel(); messages below
// the threshold are not evaluated.
#ifndef SIA_SRC_COMMON_LOGGING_H_
#define SIA_SRC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace sia {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Returns the current global log threshold (default: kWarning so library
// consumers are quiet unless they opt in).
LogLevel GetLogLevel();

// Sets the global log threshold. Thread-compatible: call before spawning.
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal
}  // namespace sia

#define SIA_LOG(severity)                                                      \
  (::sia::LogLevel::k##severity < ::sia::GetLogLevel())                        \
      ? (void)0                                                               \
      : ::sia::internal::LogVoidify() &                                       \
            ::sia::internal::LogMessage(::sia::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // SIA_SRC_COMMON_LOGGING_H_
