#include "src/common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "src/common/check.h"

namespace sia {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

std::string FormatTick(double value) {
  std::ostringstream out;
  if (std::abs(value) >= 1000.0 || (std::abs(value) < 0.01 && value != 0.0)) {
    out << std::scientific << std::setprecision(1) << value;
  } else {
    out << std::fixed << std::setprecision(2) << value;
  }
  return out.str();
}

}  // namespace

std::string AsciiChart::Render() const {
  std::ostringstream out;
  if (!title_.empty()) {
    out << title_ << "\n";
  }
  bool any_points = false;
  double x_min = 0.0;
  double x_max = 1.0;
  double y_min = 0.0;
  double y_max = 1.0;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      double yy = y;
      if (log_y_) {
        SIA_CHECK(y > 0.0) << "log-scale chart requires positive y, got " << y;
        yy = std::log10(y);
      }
      if (!any_points) {
        x_min = x_max = x;
        y_min = y_max = yy;
        any_points = true;
      } else {
        x_min = std::min(x_min, x);
        x_max = std::max(x_max, x);
        y_min = std::min(y_min, yy);
        y_max = std::max(y_max, yy);
      }
    }
  }
  if (!any_points) {
    out << "(no data)\n";
    return out.str();
  }
  if (x_max == x_min) {
    x_max = x_min + 1.0;
  }
  if (y_max == y_min) {
    y_max = y_min + 1.0;
  }

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series_[si].points) {
      const double yy = log_y_ ? std::log10(y) : y;
      int col = static_cast<int>(std::lround((x - x_min) / (x_max - x_min) * (width_ - 1)));
      int row = static_cast<int>(std::lround((yy - y_min) / (y_max - y_min) * (height_ - 1)));
      col = std::clamp(col, 0, width_ - 1);
      row = std::clamp(row, 0, height_ - 1);
      grid[height_ - 1 - row][col] = glyph;
    }
  }

  const std::string y_top = FormatTick(log_y_ ? std::pow(10.0, y_max) : y_max);
  const std::string y_bot = FormatTick(log_y_ ? std::pow(10.0, y_min) : y_min);
  const size_t margin = std::max(y_top.size(), y_bot.size()) + 1;
  for (int r = 0; r < height_; ++r) {
    std::string label(margin, ' ');
    if (r == 0) {
      label = y_top + std::string(margin - y_top.size(), ' ');
    } else if (r == height_ - 1) {
      label = y_bot + std::string(margin - y_bot.size(), ' ');
    }
    out << label << "|" << grid[r] << "\n";
  }
  out << std::string(margin, ' ') << "+" << std::string(width_, '-') << "\n";
  out << std::string(margin + 1, ' ') << FormatTick(x_min)
      << std::string(std::max<int>(1, width_ - 16), ' ') << FormatTick(x_max) << "\n";
  if (!x_label_.empty() || !y_label_.empty()) {
    out << std::string(margin + 1, ' ') << "x: " << x_label_;
    if (log_y_) {
      out << "   y(log10): " << y_label_;
    } else {
      out << "   y: " << y_label_;
    }
    out << "\n";
  }
  for (size_t si = 0; si < series_.size(); ++si) {
    out << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series_[si].name << "\n";
  }
  return out.str();
}

std::string RenderBarChart(const std::string& title,
                           const std::vector<std::pair<std::string, double>>& bars, int width) {
  std::ostringstream out;
  if (!title.empty()) {
    out << title << "\n";
  }
  if (bars.empty()) {
    out << "(no data)\n";
    return out.str();
  }
  double max_value = 0.0;
  size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  if (max_value <= 0.0) {
    max_value = 1.0;
  }
  for (const auto& [label, value] : bars) {
    const int len = static_cast<int>(std::lround(value / max_value * width));
    out << "  " << label << std::string(label_width - label.size(), ' ') << " |"
        << std::string(std::max(0, len), '=') << " " << FormatTick(value) << "\n";
  }
  return out.str();
}

}  // namespace sia
