// Lightweight assertion macros used throughout the Sia library.
//
// SIA_CHECK(cond) aborts with a message when `cond` is false, in all build
// modes. SIA_DCHECK(cond) compiles out in NDEBUG builds. Both accept a
// streamed message: SIA_CHECK(x > 0) << "x must be positive, got " << x;
#ifndef SIA_SRC_COMMON_CHECK_H_
#define SIA_SRC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sia {
namespace internal {

// Collects the streamed message and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line, const char* condition) {
    stream_ << kind << " failed: " << condition << " at " << file << ":" << line << ": ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// operator& binds more loosely than operator<<, letting the macros below
// swallow an arbitrary streamed tail expression and yield void.
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal
}  // namespace sia

#define SIA_CHECK(condition)            \
  (condition) ? (void)0                 \
              : ::sia::internal::Voidify() & ::sia::internal::CheckFailureStream( \
                    "SIA_CHECK", __FILE__, __LINE__, #condition)

#ifdef NDEBUG
// Evaluates to a dead branch so the condition and message compile but never run.
#define SIA_DCHECK(condition)           \
  true ? (void)0                        \
       : ::sia::internal::Voidify() & ::sia::internal::CheckFailureStream( \
             "SIA_DCHECK", __FILE__, __LINE__, #condition)
#else
#define SIA_DCHECK(condition)           \
  (condition) ? (void)0                 \
              : ::sia::internal::Voidify() & ::sia::internal::CheckFailureStream( \
                    "SIA_DCHECK", __FILE__, __LINE__, #condition)
#endif

#endif  // SIA_SRC_COMMON_CHECK_H_
