// Terminal line/bar chart renderer: the bench harness uses this to print
// figure-shaped output (series over a swept parameter) next to each table.
#ifndef SIA_SRC_COMMON_ASCII_CHART_H_
#define SIA_SRC_COMMON_ASCII_CHART_H_

#include <string>
#include <utility>
#include <vector>

namespace sia {

// A named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

// Renders one or more series into a fixed-size character grid with axes and
// a legend. Each series gets a distinct glyph. Intended for quick visual
// sanity-checking of experiment shapes, not publication graphics.
class AsciiChart {
 public:
  AsciiChart(int width = 72, int height = 20) : width_(width), height_(height) {}

  void AddSeries(Series series) { series_.push_back(std::move(series)); }

  // When true, the y axis is log10-scaled (all y must be > 0).
  void SetLogY(bool log_y) { log_y_ = log_y; }
  void SetTitle(std::string title) { title_ = std::move(title); }
  void SetXLabel(std::string label) { x_label_ = std::move(label); }
  void SetYLabel(std::string label) { y_label_ = std::move(label); }

  std::string Render() const;

 private:
  int width_;
  int height_;
  bool log_y_ = false;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

// Renders a horizontal bar chart from (label, value) pairs.
std::string RenderBarChart(const std::string& title,
                           const std::vector<std::pair<std::string, double>>& bars,
                           int width = 50);

}  // namespace sia

#endif  // SIA_SRC_COMMON_ASCII_CHART_H_
