#include "src/common/thread_pool.h"

#include <atomic>
#include <memory>

namespace sia {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Drain() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // Shared claim/completion state. Helpers capture it by shared_ptr: a
  // helper that wakes up after all indices were claimed exits without
  // touching anything owned by this (already returned) frame.
  struct State {
    std::atomic<int> next{0};
    std::atomic<int> remaining;
    std::mutex mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<State>();
  state->remaining.store(n, std::memory_order_relaxed);

  // fn is copied into the helper task so queued stragglers never dangle.
  auto body = [state, n, fn]() {
    while (true) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      fn(i);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    }
  };

  const int helpers = std::min(static_cast<int>(workers_.size()), n - 1);
  for (int h = 0; h < helpers; ++h) {
    Submit(body);
  }
  body();  // The caller is always one of the workers.

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace sia
