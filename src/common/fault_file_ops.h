// Fault-injecting FileOps for storage-robustness tests (ISSUE 10).
//
// Wraps the real syscalls and fails a deterministic subset of the
// fault-eligible operations (open/write/fsync/fdatasync/close/rename/
// ftruncate -- everything that can lose or corrupt durable data). Three
// scheduling modes compose; an op fails if any of them selects it:
//
//  * cycle:    of every `period` eligible ops, the first `burst` fail
//              (period <= 0 disables). Deterministic heal windows, which is
//              what lets retrying clients always make progress in soaks.
//  * seeded:   each eligible op fails independently with probability
//              `fail_probability`, drawn from a SplitMix64 stream keyed by
//              (seed, op index) -- reproducible per seed, no global RNG.
//  * scripted: exact op indices in `fail_points` fail (exact-point repro
//              for shrunk fuzz findings).
//
// The failure *kind* is derived from the operation itself: writes fail with
// ENOSPC, EIO, or a torn write (half the buffer really persists, then EIO
// -- the caller sees a failure but the file carries a partial record);
// fsync/fdatasync/close/ftruncate fail with EIO; open fails with ENOSPC;
// rename fails with EIO (the crash-before-rename analog: data synced, link
// step lost). Reads are never faulted -- recovery must read back whatever
// the faulted writes left behind.
//
// `path_filter` scopes injection to paths containing the substring (and to
// fds opened through such paths), so a test can fault only `journal.` or
// only `checkpoints/` traffic. Thread-safe; stats are cumulative.
#ifndef SIA_SRC_COMMON_FAULT_FILE_OPS_H_
#define SIA_SRC_COMMON_FAULT_FILE_OPS_H_

#ifndef _WIN32

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/file_util.h"

namespace sia {

struct FaultFileOpsOptions {
  // Cycle scheduling: fail ops [k*period, k*period+burst) for every k.
  int period = 0;
  int burst = 1;
  // Seeded scheduling: per-op failure probability in [0, 1).
  uint64_t seed = 1;
  double fail_probability = 0.0;
  // Scripted scheduling: exact eligible-op indices that must fail.
  std::vector<uint64_t> fail_points;
  // Only fault paths containing this substring (empty = every path).
  std::string path_filter;
};

struct FaultFileOpsStats {
  uint64_t eligible_ops = 0;   // Fault-eligible calls seen.
  uint64_t injected = 0;       // Calls that failed by injection.
  uint64_t open_faults = 0;
  uint64_t write_faults = 0;
  uint64_t torn_writes = 0;    // Write faults that persisted a partial record.
  uint64_t sync_faults = 0;    // fsync + fdatasync.
  uint64_t close_faults = 0;
  uint64_t rename_faults = 0;
  uint64_t truncate_faults = 0;
};

class FaultInjectingFileOps : public FileOps {
 public:
  explicit FaultInjectingFileOps(FaultFileOpsOptions options);

  int Open(const char* path, int flags, mode_t mode) override;
  ssize_t Write(int fd, const void* buf, size_t count) override;
  int Fsync(int fd) override;
  int Fdatasync(int fd) override;
  int Close(int fd) override;
  int Rename(const char* from, const char* to) override;
  int Unlink(const char* path) override;
  int Ftruncate(int fd, off_t length) override;

  FaultFileOpsStats stats() const;
  // Atomically disables (or re-enables) injection without uninstalling the
  // seam -- reference passes and teardown paths run clean through it.
  void set_enabled(bool enabled);

 private:
  // Claims the next eligible-op index and decides whether it fails.
  bool NextOpFails(uint64_t* index);
  bool TrackedFdLocked(int fd) const;

  const FaultFileOpsOptions options_;
  mutable std::mutex mu_;
  bool enabled_ = true;
  uint64_t next_op_ = 0;
  std::set<uint64_t> fail_points_;
  std::set<int> tracked_fds_;  // Fds whose path matched path_filter.
  FaultFileOpsStats stats_;
};

}  // namespace sia

#endif  // !_WIN32
#endif  // SIA_SRC_COMMON_FAULT_FILE_OPS_H_
