#include "src/common/file_util.h"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace sia {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

#ifndef _WIN32

int FileOps::Open(const char* path, int flags, mode_t mode) {
  return ::open(path, flags, mode);
}
ssize_t FileOps::Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}
int FileOps::Fsync(int fd) { return ::fsync(fd); }
int FileOps::Fdatasync(int fd) { return ::fdatasync(fd); }
int FileOps::Close(int fd) { return ::close(fd); }
int FileOps::Rename(const char* from, const char* to) { return ::rename(from, to); }
int FileOps::Unlink(const char* path) { return ::unlink(path); }
int FileOps::Ftruncate(int fd, off_t length) { return ::ftruncate(fd, length); }

namespace {

FileOps* RealFileOps() {
  static FileOps real;
  return &real;
}

std::atomic<FileOps*> g_file_ops{nullptr};

}  // namespace

FileOps* GetFileOps() {
  FileOps* ops = g_file_ops.load(std::memory_order_acquire);
  return ops != nullptr ? ops : RealFileOps();
}

FileOps* SetFileOps(FileOps* ops) {
  FileOps* previous = g_file_ops.exchange(ops, std::memory_order_acq_rel);
  return previous != nullptr ? previous : RealFileOps();
}

bool FsyncPath(const std::string& path, bool is_dir, std::string* error) {
  FileOps* ops = GetFileOps();
  int fd = ops->Open(path.c_str(), is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY, 0);
  if (fd < 0) {
    SetError(error, Errno("open", path));
    return false;
  }
  int rc = ops->Fsync(fd);
  ops->Close(fd);
  if (rc != 0 && !(is_dir && (errno == EINVAL || errno == EBADF))) {
    SetError(error, Errno("fsync", path));
    return false;
  }
  return true;
}

#endif  // !_WIN32

bool AtomicWriteFile(const std::string& path, std::string_view contents, std::string* error) {
  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  FileOps* ops = GetFileOps();
  int fd = ops->Open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    SetError(error, Errno("open", tmp));
    return false;
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ops->Write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, Errno("write", tmp));
      ops->Close(fd);
      ops->Unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (ops->Fsync(fd) != 0) {
    SetError(error, Errno("fsync", tmp));
    ops->Close(fd);
    ops->Unlink(tmp.c_str());
    return false;
  }
  // A failed close can report a deferred write-back error (e.g. NFS, quota);
  // treating it as success would rename a possibly-corrupt temp file over
  // the target.
  if (ops->Close(fd) != 0) {
    SetError(error, Errno("close", tmp));
    ops->Unlink(tmp.c_str());
    return false;
  }
  if (ops->Rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, Errno("rename", tmp));
    ops->Unlink(tmp.c_str());
    return false;
  }
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  return FsyncPath(dir.string(), /*is_dir=*/true, error);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, "open " + tmp + " failed");
      return false;
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    if (!out) {
      SetError(error, "write " + tmp + " failed");
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    SetError(error, "rename " + tmp + ": " + ec.message());
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
#endif
}

bool ReadFileToString(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "open " + path + " failed");
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    SetError(error, "read " + path + " failed");
    return false;
  }
  *out = std::move(data);
  return true;
}

bool TruncateFile(const std::string& path, uint64_t size, std::string* error) {
  std::error_code ec;
  uint64_t current = std::filesystem::file_size(path, ec);
  if (ec) {
    SetError(error, "stat " + path + ": " + ec.message());
    return false;
  }
  if (current < size) {
    SetError(error, "file " + path + " is shorter (" + std::to_string(current) +
                        " bytes) than the requested truncation point (" + std::to_string(size) +
                        " bytes)");
    return false;
  }
#ifndef _WIN32
  FileOps* ops = GetFileOps();
  int fd = ops->Open(path.c_str(), O_WRONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    SetError(error, Errno("open", path));
    return false;
  }
  if (ops->Ftruncate(fd, static_cast<off_t>(size)) != 0) {
    SetError(error, Errno("truncate", path));
    ops->Close(fd);
    return false;
  }
  // Persist the new length: torn-tail repair relies on a truncated journal
  // staying truncated after power loss, not reverting to the torn state.
  if (ops->Fsync(fd) != 0) {
    SetError(error, Errno("fsync", path));
    ops->Close(fd);
    return false;
  }
  if (ops->Close(fd) != 0) {
    SetError(error, Errno("close", path));
    return false;
  }
  return true;
#else
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    SetError(error, "truncate " + path + ": " + ec.message());
    return false;
  }
  return true;
#endif
}

}  // namespace sia
