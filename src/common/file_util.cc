#include "src/common/file_util.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace sia {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

#ifndef _WIN32
// Flushes a file (or directory) to stable storage. Best effort on
// filesystems that reject fsync on directories (EINVAL).
bool FsyncPath(const std::string& path, bool is_dir, std::string* error) {
  int fd = ::open(path.c_str(), is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    SetError(error, Errno("open", path));
    return false;
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !(is_dir && (errno == EINVAL || errno == EBADF))) {
    SetError(error, Errno("fsync", path));
    return false;
  }
  return true;
}
#endif

}  // namespace

bool AtomicWriteFile(const std::string& path, std::string_view contents, std::string* error) {
  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    SetError(error, Errno("open", tmp));
    return false;
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, Errno("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    SetError(error, Errno("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  // A failed close can report a deferred write-back error (e.g. NFS, quota);
  // treating it as success would rename a possibly-corrupt temp file over
  // the target.
  if (::close(fd) != 0) {
    SetError(error, Errno("close", tmp));
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, Errno("rename", tmp));
    ::unlink(tmp.c_str());
    return false;
  }
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  return FsyncPath(dir.string(), /*is_dir=*/true, error);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, "open " + tmp + " failed");
      return false;
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    if (!out) {
      SetError(error, "write " + tmp + " failed");
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    SetError(error, "rename " + tmp + ": " + ec.message());
    return false;
  }
  return true;
#endif
}

bool ReadFileToString(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "open " + path + " failed");
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    SetError(error, "read " + path + " failed");
    return false;
  }
  *out = std::move(data);
  return true;
}

bool TruncateFile(const std::string& path, uint64_t size, std::string* error) {
  std::error_code ec;
  uint64_t current = std::filesystem::file_size(path, ec);
  if (ec) {
    SetError(error, "stat " + path + ": " + ec.message());
    return false;
  }
  if (current < size) {
    SetError(error, "file " + path + " is shorter (" + std::to_string(current) +
                        " bytes) than the requested truncation point (" + std::to_string(size) +
                        " bytes)");
    return false;
  }
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    SetError(error, "truncate " + path + ": " + ec.message());
    return false;
  }
#ifndef _WIN32
  // Persist the new length: torn-tail repair relies on a truncated journal
  // staying truncated after power loss, not reverting to the torn state.
  return FsyncPath(path, /*is_dir=*/false, error);
#else
  return true;
#endif
}

}  // namespace sia
