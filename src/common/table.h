// ASCII table renderer used by the benchmark harness to print paper-style
// tables (e.g., Table 3 / Table 4 rows) to stdout.
#ifndef SIA_SRC_COMMON_TABLE_H_
#define SIA_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace sia {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and +---+ separators.
  std::string Render() const;

  // Formats a double with the given precision (fixed notation).
  static std::string Num(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sia

#endif  // SIA_SRC_COMMON_TABLE_H_
