// The one job-identifier type shared end-to-end: JobSpec::id, scheduler
// output keys, placer maps, timeline events, and trace records all use
// JobId, so an id never silently degrades to a raw int of unclear origin.
#ifndef SIA_SRC_COMMON_JOB_ID_H_
#define SIA_SRC_COMMON_JOB_ID_H_

namespace sia {

using JobId = int;

// Sentinel for "no job" (trace records, optional fields).
inline constexpr JobId kInvalidJobId = -1;

}  // namespace sia

#endif  // SIA_SRC_COMMON_JOB_ID_H_
