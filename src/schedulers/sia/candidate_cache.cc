#include "src/schedulers/sia/candidate_cache.h"

#include <algorithm>

namespace sia {

CandidateCache::Row* CandidateCache::AcquireRow(JobId job, int num_configs) {
  Row& row = rows_[job];
  if (static_cast<int>(row.entries.size()) != num_configs) {
    row.entries.assign(static_cast<std::size_t>(num_configs), Entry{});
    row.InvalidateDerived();
  }
  return &row;
}

void CandidateCache::RetainOnly(const std::vector<JobId>& live) {
  std::vector<JobId> sorted = live;
  std::sort(sorted.begin(), sorted.end());
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (std::binary_search(sorted.begin(), sorted.end(), it->first)) {
      ++it;
    } else {
      it = rows_.erase(it);
    }
  }
}

}  // namespace sia
