// The Sia scheduling policy (§3.4).
//
// Each round, Sia
//  1. evaluates every job's estimated goodput on every valid configuration
//     it could hold this round (respecting the <=2x scale-up rule, the job's
//     GPU-count cap, replica granularity for hybrid-parallel jobs, and
//     rigid/strong-scaling adaptivity limits),
//  2. row-normalizes the goodput matrix (G_ij <- G_ij / min_j G_ij * N_i^min)
//     so utilities are comparable across jobs,
//  3. discounts configurations that would restart the job by the
//     re-allocation factor r_i = (T_i - N_i S_i) / (T_i + S_i)     (Eq. 3),
//  4. applies the fairness power p (p < 0 flips the objective to minimize),
//  5. solves the resulting binary ILP
//        opt  sum_ij A_ij (r_i G_ij)^p + lambda (1 - ||A_i||_1)     (Eq. 4)
//     s.t. each job takes at most one configuration and per-GPU-type
//     capacity holds,
//  6. returns the chosen configuration per job.
#ifndef SIA_SRC_SCHEDULERS_SIA_SIA_SCHEDULER_H_
#define SIA_SRC_SCHEDULERS_SIA_SIA_SCHEDULER_H_

#include <memory>

#include "src/common/arena.h"
#include "src/common/thread_pool.h"
#include "src/schedulers/ladder.h"
#include "src/schedulers/scheduler.h"
#include "src/schedulers/sia/candidate_cache.h"
#include "src/solver/milp.h"

namespace sia {

// Round-scoped scratch containers (defined in sia_scheduler.cc).
struct SiaRoundScratch;

struct SiaOptions {
  // Fairness power p (§3.4, default -0.5; Fig. 10 sweeps [-1, 1]).
  double fairness_power = -0.5;
  // Queue-occupancy penalty lambda (default 1.1).
  double lambda = 1.1;
  double round_duration_seconds = 60.0;
  // Per-round cap on scaling a job up (2x per §3.1 "Job Scaling policy").
  int scale_up_factor = 2;
  // Lower clamp on the restart factor so long-running jobs can still move.
  double min_restart_factor = 0.05;
  // The scheduling ILP's LP relaxation is near-integral and the rounding
  // heuristic produces strong incumbents, so a loose gap and a small node
  // budget lose nothing measurable while keeping worst-case policy runtime
  // bounded (Fig. 9). The wall-clock budget caps pathological solves; a
  // timed-out solve falls back to the incumbent, or to the greedy
  // feasibility-repair allocator when none exists.
  MilpOptions milp = [] {
    MilpOptions options;
    options.max_nodes = 64;
    options.relative_gap = 3e-3;
    options.time_limit_seconds = 5.0;
    return options;
  }();
  // --- round-over-round fast path (ISSUE 3) ---
  // Threads for the candidate-generation phase (--sched-threads). Results
  // are written into per-job slots, so any value produces byte-identical
  // schedules; 1 runs strictly inline.
  int num_threads = 1;
  // Memoize Estimate() results across rounds, invalidated by estimator fit
  // epochs. Bit-equivalent to recomputing (see CandidateCache).
  bool candidate_cache = true;
  // Feed round N's MILP incumbent and root basis into round N+1. Preserves
  // the optimal objective (hints are validated, never trusted).
  bool warm_start = true;
  // Incremental re-solve (ISSUE 8): persist the simplex engine across
  // rounds and re-solve the root relaxation by parameter deltas + dual
  // simplex from the previous optimal basis, gated so only results a
  // from-scratch solve provably produces are accepted. Only engages
  // together with warm_start (the serialized warm basis is what rebuilds
  // the session after a checkpoint restore).
  bool incremental_lp = true;
  // Degradation-ladder knobs (ISSUE 6). Sia implements all five rungs
  // natively; the ladder only engages when ScheduleInput::deadline_seconds
  // >= 0 or deadline.force_rung is set, so batch runs are unaffected.
  DeadlineOptions deadline;

  // --- energy/SLA dimension (ROADMAP item 3, DESIGN.md §14) ---
  // Names the policy "sia-energy" (distinct trace/snapshot identity). The
  // knobs below default to the sia-energy variant's tuning when MakeSiaEnergy
  // is used; with all of them at their zero defaults Schedule() is
  // byte-identical to plain sia (every energy branch is structurally gated).
  bool energy_aware = false;
  // w > 0 scores candidates by goodput / active_watts^w (goodput-per-watt at
  // w = 1) before row normalization; 0 keeps the paper's objective exactly.
  double energy_weight = 0.0;
  // Native power-cap awareness: adds sum(x_ij * active_watts_ij) <= cap to
  // the ILP and a watt budget to the greedy rungs, so sia-energy plans under
  // the cap instead of being trimmed by the simulator after the fact.
  double power_cap_watts = 0.0;
  // Deadline-urgency boost for SLA jobs: multiplies normalized utility by
  // 1 + sla_boost * class_weight * (0.5 + min(age/deadline, 2)). 0 = off.
  double sla_boost = 0.0;
};

// The sia-energy policy variant: goodput-per-watt scoring + SLA urgency.
inline SiaOptions MakeSiaEnergyOptions(SiaOptions base = {}) {
  base.energy_aware = true;
  if (base.energy_weight == 0.0) {
    base.energy_weight = 0.5;
  }
  if (base.sla_boost == 0.0) {
    base.sla_boost = 0.5;
  }
  return base;
}

class SiaScheduler : public Scheduler {
 public:
  // Out of line: SiaRoundScratch is incomplete here.
  explicit SiaScheduler(SiaOptions options = {});
  ~SiaScheduler() override;

  std::string name() const override { return options_.energy_aware ? "sia-energy" : "sia"; }
  double round_duration_seconds() const override { return options_.round_duration_seconds; }
  ScheduleOutput Schedule(const ScheduleInput& input) override;

  // Serializes the cross-round fast-path state (warm start + candidate
  // cache) so a resumed run replays identical solver work (ISSUE 5).
  void SaveState(BinaryWriter& w) const override;
  bool RestoreState(BinaryReader& r) override;

  const SiaOptions& options() const { return options_; }

  // Allocation-counting hook (ISSUE 8): upstream_allocations staying flat
  // across rounds proves the candidate-gen / LP-build / B&B hot path ran
  // allocation-free out of the recycled arena.
  const ScratchArena::Stats& arena_stats() const { return arena_.stats(); }

 private:
  SiaOptions options_;
  // Cross-round state for the fast path. The cache is consulted only when
  // options_.candidate_cache is set; the warm start only when the new ILP
  // has the same shape as the one that produced it.
  CandidateCache cache_;
  MilpWarmStart warm_state_;
  // Persistent incremental-solve session (ISSUE 8). Deliberately NOT
  // serialized: a restored scheduler rebuilds it from warm_state_'s basis +
  // fingerprint, which yields bit-identical engine state (and therefore
  // identical pivot-count metrics) to the live session it replaces.
  IncrementalLp session_;
  bool have_warm_state_ = false;
  int warm_num_variables_ = -1;
  int warm_num_constraints_ = -1;
  // Previous round's output, the carry_over rung's source (ISSUE 6).
  // Maintained every round (cheap) so a deadline can arrive at any time.
  ScheduleOutput last_output_;
  std::unique_ptr<ThreadPool> pool_;  // Created lazily when num_threads > 1.
  // Per-round bump arena + the containers carved from it (ISSUE 8). Reset at
  // the top of every round; after a warm-up round the candidate-generation /
  // LP-build hot path performs zero upstream allocations
  // (arena_.stats().upstream_allocations stays flat).
  ScratchArena arena_;
  std::unique_ptr<SiaRoundScratch> scratch_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SIA_SIA_SCHEDULER_H_
