#include "src/schedulers/sia/sia_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace sia {

// Round-transient containers in one place (ISSUE 8): the outer std::vectors
// are owned by the scheduler so their heap capacity persists across rounds,
// while the inner ArenaVectors are re-carved from the freshly Reset arena
// each round (after arena.Reset() the previous round's inner vectors dangle;
// the per-round assign() below replaces every one before use).
struct SiaRoundScratch {
  struct Candidate {
    int config_index;
    double goodput;
    int lp_var = -1;
  };
  // One entry per configuration that survives the eligibility filters,
  // recording where its (feasible, goodput) pair comes from. Cache misses
  // are resolved by a single batch-estimator call between the two
  // candidate-generation passes.
  struct GenSlot {
    int config;
    uint8_t from_cache;
    uint8_t feasible;
    double goodput;
  };

  LinearProgram lp;
  std::vector<ArenaVector<Candidate>> candidates;
  std::vector<ArenaVector<GenSlot>> slots;
  std::vector<ArenaVector<Config>> miss_configs;
  std::vector<ArenaVector<BatchDecision>> miss_decisions;
  std::vector<ArenaVector<LpEntry>> capacity_rows;
  ArenaVector<LpEntry> job_row;
  // Power-cap row (DESIGN.md §14): sum(x_ij * active_watts_ij) <= cap.
  // Carved only when SiaOptions::power_cap_watts > 0.
  ArenaVector<LpEntry> power_row;
  // Per-job energy-adjusted goodputs (goodput / watts^w). Kept outside the
  // arena: only the sia-energy variant touches it, and it is cleared per job.
  std::vector<double> adjusted;
  std::vector<int> capacity_counts;
  std::vector<double> min_goodputs;
  std::vector<int> min_required;
  std::vector<int> cache_hits;
  std::vector<int> cache_misses;
  std::vector<uint8_t> job_changed;
  std::vector<CandidateCache::Row*> cache_rows;
};

SiaScheduler::SiaScheduler(SiaOptions options) : options_(options) {}
SiaScheduler::~SiaScheduler() = default;

namespace {

using Candidate = SiaRoundScratch::Candidate;
using GenSlot = SiaRoundScratch::GenSlot;

// See the resume-stickiness comment in Schedule().
constexpr double kResumePenalty = 0.95;
// See the tie-breaking comment in Schedule().
constexpr double kServiceTieBreak = 0.05;

// Per-round GPU-count cap from the scale-up rule: jobs start at their
// minimum size and may at most double each round (scale-down is free).
int ScaleUpCap(const JobView& job, int min_gpus, int scale_up_factor) {
  if (job.spec->adaptivity == AdaptivityMode::kRigid) {
    return job.spec->rigid_num_gpus;
  }
  if (job.peak_num_gpus <= 0) {
    return min_gpus;
  }
  return std::max(min_gpus, scale_up_factor * job.peak_num_gpus);
}

// Feasibility-repair fallback for failed/timed-out ILP solves. The old
// "leave allocations unchanged" fallback is wrong after a crash shrinks
// capacity: stale placements can exceed what is live. Instead, greedily
// re-pack jobs into the *available* per-type capacity -- non-preemptible
// first (their reservation must hold), then running jobs (avoid restarts),
// then queued jobs -- giving each its highest-goodput candidate that still
// fits, preferring the current configuration for running jobs.
//
// power_cap_watts > 0 additionally budgets active watts (DESIGN.md §14):
// preemptible candidates must fit the remaining watt budget too.
// Non-preemptible incumbents always keep their reservation -- their draw was
// admitted under the cap when they were first placed, so honoring it cannot
// newly exceed the cap.
ScheduleOutput GreedyRepairAllocations(const ScheduleInput& input,
                                       const std::vector<Config>& configs,
                                       const std::vector<ArenaVector<Candidate>>& candidates,
                                       double power_cap_watts) {
  ScheduleOutput output;
  std::vector<int> free_gpus(input.cluster->num_gpu_types());
  for (int t = 0; t < input.cluster->num_gpu_types(); ++t) {
    free_gpus[t] = input.cluster->AvailableGpus(t);
  }
  const bool capped = power_cap_watts > 0.0;
  double free_watts = power_cap_watts;
  const auto config_watts = [&input](const Config& config) {
    return static_cast<double>(config.num_gpus) *
           input.cluster->power_model(config.gpu_type).active_watts;
  };

  std::vector<size_t> order(input.jobs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&input](size_t a, size_t b) {
    const JobView& ja = input.jobs[a];
    const JobView& jb = input.jobs[b];
    const bool ra = !ja.spec->preemptible && ja.current_config.num_gpus > 0;
    const bool rb = !jb.spec->preemptible && jb.current_config.num_gpus > 0;
    if (ra != rb) {
      return ra;
    }
    const bool runs_a = ja.current_config.num_gpus > 0;
    const bool runs_b = jb.current_config.num_gpus > 0;
    if (runs_a != runs_b) {
      return runs_a;
    }
    return ja.service_gpu_seconds < jb.service_gpu_seconds;  // Starved first.
  });

  // Rank each job's candidates by goodput once up front (stable: goodput
  // ties keep config order) so the scan below stops at the first candidate
  // that fits instead of rescanning the whole list for the max.
  std::vector<std::vector<const Candidate*>> ranked(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranked[i].reserve(candidates[i].size());
    for (const Candidate& candidate : candidates[i]) {
      ranked[i].push_back(&candidate);
    }
    std::stable_sort(
        ranked[i].begin(), ranked[i].end(),
        [](const Candidate* a, const Candidate* b) { return a->goodput > b->goodput; });
  }

  for (size_t i : order) {
    const JobView& job = input.jobs[i];
    // Non-preemptible incumbents bypass the watt check (see above).
    const bool reserved = !job.spec->preemptible && job.current_config.num_gpus > 0;
    const Candidate* best = nullptr;
    // Keeping the incumbent shape is restart-free: it wins whenever it fits.
    if (job.current_config.num_gpus > 0) {
      for (const Candidate& candidate : candidates[i]) {
        if (configs[candidate.config_index] == job.current_config) {
          if (job.current_config.num_gpus <= free_gpus[job.current_config.gpu_type] &&
              (!capped || reserved || config_watts(job.current_config) <= free_watts)) {
            best = &candidate;
          }
          break;
        }
      }
    }
    if (best == nullptr) {
      for (const Candidate* candidate : ranked[i]) {
        const Config& config = configs[candidate->config_index];
        if (config.num_gpus <= free_gpus[config.gpu_type] &&
            (!capped || reserved || config_watts(config) <= free_watts)) {
          best = candidate;
          break;
        }
      }
    }
    if (best == nullptr) {
      continue;  // Stays queued this round.
    }
    const Config& config = configs[best->config_index];
    free_gpus[config.gpu_type] -= config.num_gpus;
    if (capped) {
      free_watts -= config_watts(config);
    }
    output[job.spec->id] = config;
  }
  return output;
}

}  // namespace

ScheduleOutput SiaScheduler::Schedule(const ScheduleInput& input) {
  SIA_CHECK(input.cluster != nullptr && input.config_set != nullptr);

  // --- degradation ladder (ISSUE 6) ---
  // The rung is planned up front from the round budget; with no deadline and
  // no forced rung this is kFullMilp and the round proceeds exactly as
  // before. Carry-over skips candidate generation entirely -- it is the "we
  // have no time for anything" rung.
  const auto round_start = std::chrono::steady_clock::now();
  const LadderRung rung = ChooseLadderRung(options_.deadline, input.deadline_seconds,
                                           /*milp_capable=*/true, input.metrics);
  if (rung == LadderRung::kCarryOver) {
    ScheduleOutput output = CarryOverAllocation(input, last_output_, options_.scale_up_factor);
    RecordLadderServed(rung, input.metrics);
    last_output_ = output;
    return output;
  }

  const std::vector<Config>& configs = *input.config_set;
  const double p = options_.fairness_power;
  SIA_CHECK(p != 0.0) << "fairness power must be nonzero";
  const bool minimize = p < 0.0;

  // --- round scratch (ISSUE 8) ---
  // One arena Reset makes every byte the previous round carved out reusable;
  // the sequential prologue below re-carves (and pre-reserves) every
  // container the parallel phase writes into, because ArenaVector growth is
  // not thread-safe.
  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<SiaRoundScratch>();
  }
  SiaRoundScratch& scratch = *scratch_;
  arena_.Reset();

  LinearProgram& lp = scratch.lp;
  lp.Reset(minimize ? ObjectiveSense::kMinimize : ObjectiveSense::kMaximize);
  const int num_jobs = static_cast<int>(input.jobs.size());
  const int num_configs = static_cast<int>(configs.size());
  std::vector<ArenaVector<Candidate>>& candidates = scratch.candidates;
  candidates.assign(num_jobs, ArenaVector<Candidate>(&arena_));
  scratch.slots.assign(num_jobs, ArenaVector<GenSlot>(&arena_));
  scratch.miss_configs.assign(num_jobs, ArenaVector<Config>(&arena_));
  scratch.miss_decisions.assign(num_jobs, ArenaVector<BatchDecision>(&arena_));
  for (int i = 0; i < num_jobs; ++i) {
    candidates[i].reserve(num_configs);
    scratch.slots[i].reserve(num_configs);
    scratch.miss_configs[i].reserve(num_configs);
    scratch.miss_decisions[i].reserve(num_configs);
  }

  // --- phase A: candidate generation (parallel + memoized, ISSUE 3) ---
  // Every job writes only into its own index-i slots, so the result is
  // identical for any thread count and any claim order. LP construction
  // stays in phase B because AddBinaryVariable order defines variable
  // indices (and with them the solver's tie-breaking).
  const auto gen_start = std::chrono::steady_clock::now();

  std::vector<CandidateCache::Row*>& cache_rows = scratch.cache_rows;
  cache_rows.assign(num_jobs, nullptr);
  if (options_.candidate_cache) {
    std::vector<JobId> live;
    live.reserve(input.jobs.size());
    for (const JobView& job : input.jobs) {
      live.push_back(job.spec->id);
    }
    cache_.RetainOnly(live);
    // Rows are created sequentially: the map must not rehash/rebalance under
    // the parallel loop below.
    for (int i = 0; i < num_jobs; ++i) {
      cache_rows[i] = cache_.AcquireRow(input.jobs[i].spec->id, num_configs);
    }
  }

  std::vector<double>& min_goodputs = scratch.min_goodputs;
  std::vector<int>& min_required = scratch.min_required;
  std::vector<int>& cache_hits = scratch.cache_hits;
  std::vector<int>& cache_misses = scratch.cache_misses;
  min_goodputs.assign(num_jobs, std::numeric_limits<double>::infinity());
  min_required.assign(num_jobs, std::numeric_limits<int>::max());
  cache_hits.assign(num_jobs, 0);
  cache_misses.assign(num_jobs, 0);

  // ScheduleView delta (ISSUE 7): jobs the producer vouches are unchanged
  // since the previous round replay their row's derived candidates without
  // walking the config set. Without a delta (standalone drivers, dense
  // core, cache disabled) every job takes the full pass.
  std::vector<uint8_t>& job_changed = scratch.job_changed;
  job_changed.assign(static_cast<std::size_t>(num_jobs), 1);
  if (options_.candidate_cache && input.incremental) {
    std::fill(job_changed.begin(), job_changed.end(), static_cast<uint8_t>(0));
    for (int32_t idx : input.changed) {
      if (idx >= 0 && idx < num_jobs) {
        job_changed[static_cast<std::size_t>(idx)] = 1;
      }
    }
  }

  const auto generate = [&](int i) {
    const JobView& job = input.jobs[i];
    const JobSpec& spec = *job.spec;
    const GoodputEstimator& estimator = *job.estimator;
    CandidateCache::Row* row = cache_rows[i];

    // --- delta fast path: replay the last full pass for unchanged jobs ---
    // Unchanged means same view row *and* same fit epochs, so a full pass
    // would consult exactly derived_checked entries, hit on all of them,
    // and rebuild the same candidate list -- the counters and results below
    // are bit-identical to taking the loop.
    if (row != nullptr && !job_changed[static_cast<std::size_t>(i)] && row->derived_valid) {
      cache_hits[i] = row->derived_checked;
      min_goodputs[i] = row->derived_min_goodput;
      min_required[i] = row->derived_min_required;
      candidates[i].reserve(row->derived_candidates.size());
      for (const CandidateCache::CachedCandidate& cached : row->derived_candidates) {
        candidates[i].push_back({cached.config_index, cached.goodput});
      }
      return;
    }

    // --- build this job's row of the goodput matrix ---
    // Pass 1: eligibility filters + cache probes. Configurations without a
    // fresh cache entry are gathered so the estimator sees the whole miss
    // set in one vectorized call (src/models/batch_goodput.h).
    ArenaVector<GenSlot>& slots = scratch.slots[i];
    ArenaVector<Config>& misses = scratch.miss_configs[i];
    for (int c = 0; c < num_configs; ++c) {
      const Config& config = configs[c];
      const int min_gpus = estimator.MinGpus(config.gpu_type);
      if (min_gpus <= 0) {
        continue;  // Model cannot run on this GPU type.
      }
      min_required[i] = std::min(min_required[i], min_gpus);
      if (config.num_gpus % min_gpus != 0) {
        continue;  // Hybrid jobs scale in whole replicas.
      }
      const int cap =
          std::min(spec.max_num_gpus, ScaleUpCap(job, min_gpus, options_.scale_up_factor));
      if (config.num_gpus < min_gpus || config.num_gpus > cap) {
        continue;
      }
      if (spec.adaptivity == AdaptivityMode::kRigid && config.num_gpus != spec.rigid_num_gpus) {
        continue;  // Rigid jobs only pick the GPU type (Eq. 5).
      }
      GenSlot slot{c, 0, 0, 0.0};
      if (row != nullptr) {
        const CandidateCache::Entry& entry = row->entries[c];
        if (entry.epoch == estimator.fit_epoch(config.gpu_type)) {
          ++cache_hits[i];
          slot.from_cache = 1;
          slot.feasible = entry.feasible ? 1 : 0;
          slot.goodput = entry.goodput;
        } else {
          ++cache_misses[i];
          misses.push_back(config);
        }
      } else {
        misses.push_back(config);
      }
      slots.push_back(slot);
    }

    // Pass 2: one batch-estimator call resolves every miss (bit-identical to
    // per-config Estimate -- the backend contract), then candidates are
    // emitted in the same configuration order the single-pass loop used.
    ArenaVector<BatchDecision>& decisions = scratch.miss_decisions[i];
    decisions.resize(misses.size());
    if (!misses.empty()) {
      estimator.EstimateBatch(misses.data(), misses.size(), spec.adaptivity, spec.fixed_bsz,
                              decisions.data());
    }
    size_t miss_cursor = 0;
    for (const GenSlot& slot : slots) {
      bool feasible;
      double goodput;
      if (slot.from_cache) {
        feasible = slot.feasible != 0;
        goodput = slot.goodput;
      } else {
        const BatchDecision& decision = decisions[miss_cursor++];
        feasible = decision.feasible;
        goodput = decision.goodput;
        if (row != nullptr) {
          const int gpu_type = configs[slot.config].gpu_type;
          row->entries[slot.config] = {estimator.fit_epoch(gpu_type), feasible, goodput};
        }
      }
      if (!feasible || goodput <= 0.0) {
        continue;
      }
      candidates[i].push_back({slot.config, goodput});
      min_goodputs[i] = std::min(min_goodputs[i], goodput);
    }

    if (row != nullptr) {
      row->derived_valid = true;
      row->derived_checked = cache_hits[i] + cache_misses[i];
      row->derived_min_goodput = min_goodputs[i];
      row->derived_min_required = min_required[i];
      row->derived_candidates.clear();
      row->derived_candidates.reserve(candidates[i].size());
      for (const Candidate& candidate : candidates[i]) {
        row->derived_candidates.push_back({candidate.config_index, candidate.goodput});
      }
    }
  };

  const int threads = std::max(1, options_.num_threads);
  if (threads > 1 && num_jobs > 1) {
    if (pool_ == nullptr || pool_->num_threads() != threads) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    pool_->ParallelFor(num_jobs, generate);
  } else {
    for (int i = 0; i < num_jobs; ++i) {
      generate(i);
    }
  }

  if (input.metrics != nullptr) {
    const auto gen_elapsed = std::chrono::steady_clock::now() - gen_start;
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (int i = 0; i < num_jobs; ++i) {
      hits += static_cast<uint64_t>(cache_hits[i]);
      misses += static_cast<uint64_t>(cache_misses[i]);
    }
    input.metrics->counter("sia.candidate_cache_hits").Add(hits);
    input.metrics->counter("sia.candidate_cache_misses").Add(misses);
    if (input.record_timings) {
      input.metrics->counter("sia.candidate_gen_wall_ns")
          .Add(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(gen_elapsed).count()));
    }
  }

  if (rung == LadderRung::kGreedy) {
    // Greedy rung: candidates are ready, but there is no budget for even one
    // LP solve. Same allocator as the failed-solve repair path.
    ScheduleOutput output =
        GreedyRepairAllocations(input, configs, candidates, options_.power_cap_watts);
    RecordLadderServed(rung, input.metrics);
    last_output_ = output;
    return output;
  }

  // --- phase B: LP construction (sequential by design) ---
  const auto build_start = std::chrono::steady_clock::now();
  const int num_gpu_types = input.cluster->num_gpu_types();
  std::vector<ArenaVector<LpEntry>>& capacity_rows = scratch.capacity_rows;
  capacity_rows.assign(num_gpu_types, ArenaVector<LpEntry>(&arena_));
  {
    // Exact per-type reserve so the pushes below never grow mid-build.
    std::vector<int>& counts = scratch.capacity_counts;
    counts.assign(num_gpu_types, 0);
    for (int i = 0; i < num_jobs; ++i) {
      for (const Candidate& candidate : candidates[i]) {
        ++counts[configs[candidate.config_index].gpu_type];
      }
    }
    for (int t = 0; t < num_gpu_types; ++t) {
      capacity_rows[t].reserve(counts[t]);
    }
  }
  ArenaVector<LpEntry>& job_row = scratch.job_row;
  job_row = ArenaVector<LpEntry>(&arena_);
  job_row.reserve(num_configs);
  // Power-cap row (DESIGN.md §14): one global watt budget across every
  // chosen configuration. Only carved when the cap is live, so the zero-knob
  // scheduler builds a byte-identical LP.
  const bool power_capped = options_.power_cap_watts > 0.0;
  ArenaVector<LpEntry>& power_row = scratch.power_row;
  power_row = ArenaVector<LpEntry>(&arena_);
  if (power_capped) {
    int total_candidates = 0;
    for (int count : scratch.capacity_counts) {
      total_candidates += count;
    }
    power_row.reserve(total_candidates);
  }
  const bool energy_scored = options_.energy_weight != 0.0;
  std::vector<double>& adjusted = scratch.adjusted;
  for (int i = 0; i < num_jobs; ++i) {
    const JobView& job = input.jobs[i];
    const JobSpec& spec = *job.spec;
    const double min_goodput = min_goodputs[i];
    const int min_required_gpus = min_required[i];
    if (candidates[i].empty()) {
      continue;
    }

    // --- restart factor (Eq. 3) ---
    const double age = std::max(input.age_seconds(job), 1.0);
    const double restart_cost = std::max(job.restart_overhead_seconds, 0.0);
    double restart_factor =
        (age - job.num_restarts * restart_cost) / (age + restart_cost);
    restart_factor = std::clamp(restart_factor, options_.min_restart_factor, 1.0);

    // --- normalized utilities + ILP variables ---
    const bool currently_running = job.current_config.num_gpus > 0;
    const bool ever_allocated = job.peak_num_gpus > 0;
    // Energy scoring (DESIGN.md §14): rank configurations by goodput per
    // watt^w instead of raw goodput, re-deriving the row minimum over the
    // adjusted values so the normalization contract (min maps to N_i^min)
    // is preserved. Done here in phase B -- the candidate cache and the
    // delta-replay lists store *raw* goodputs, so adjusting phase A would
    // poison the fast path.
    double adjusted_min = std::numeric_limits<double>::infinity();
    if (energy_scored) {
      adjusted.clear();
      for (const Candidate& candidate : candidates[i]) {
        const Config& config = configs[candidate.config_index];
        const double watts =
            static_cast<double>(config.num_gpus) *
            input.cluster->power_model(config.gpu_type).active_watts;
        const double adj =
            candidate.goodput / std::pow(std::max(watts, 1.0), options_.energy_weight);
        adjusted.push_back(adj);
        adjusted_min = std::min(adjusted_min, adj);
      }
    }
    size_t candidate_index = 0;
    for (Candidate& candidate : candidates[i]) {
      const Config& config = configs[candidate.config_index];
      double normalized =
          energy_scored
              ? adjusted[candidate_index] / adjusted_min *
                    static_cast<double>(min_required_gpus)
              : candidate.goodput / min_goodput * static_cast<double>(min_required_gpus);
      ++candidate_index;
      // Eq. 3: discount configurations that would restart a running job.
      if (currently_running && !(config == job.current_config)) {
        normalized *= restart_factor;
      } else if (!currently_running && ever_allocated) {
        // Mild fixed stickiness for preempted jobs: resuming costs a restore
        // wherever they land, and without this, utility ties between
        // incumbents and equally-good queued jobs cause running<->queued
        // thrash under heavy contention. Kept small so genuinely better
        // queued jobs still displace incumbents.
        normalized *= kResumePenalty;
      }
      // SLA urgency (DESIGN.md §14): boost deadline-class jobs as their age
      // approaches the deadline. The floor term (0.5) gives SLA jobs a head
      // start even when freshly submitted; urgency saturates at 2x deadline
      // so one hopeless straggler cannot dominate the objective.
      if (options_.sla_boost > 0.0 && spec.sla_class != SlaClass::kBestEffort &&
          spec.deadline_seconds > 0.0) {
        static constexpr double kClassWeight[4] = {0.0, 3.0, 2.0, 1.0};
        const double urgency = std::min(age / spec.deadline_seconds, 2.0);
        normalized *= 1.0 + options_.sla_boost *
                                kClassWeight[static_cast<int>(spec.sla_class)] *
                                (0.5 + urgency);
      }
      double utility = std::pow(normalized, p);
      // Tie-breaking: Eq. 4 leaves utility ties (common under heavy
      // contention, when most queued jobs compete for 1-GPU slots with
      // identical normalized goodput) to the solver. Break them by least
      // attained service so short/new jobs flow through the queue -- the
      // behaviour §5.5 describes ("scale down long jobs ... to prioritize
      // incoming short jobs"). The perturbation is far below any real
      // utility difference.
      const double service_fraction =
          job.service_gpu_seconds / (job.service_gpu_seconds + 2.0 * 3600.0);
      utility += (minimize ? 1.0 : -1.0) * kServiceTieBreak * service_fraction;
      // Objective rewrite: sum_ij A_ij u_ij + lambda sum_i (1 - ||A_i||_1)
      // = const + sum_ij A_ij (u_ij - lambda).
      candidate.lp_var = lp.AddBinaryVariable(utility - options_.lambda);
      capacity_rows[config.gpu_type].push_back(
          {candidate.lp_var, static_cast<double>(config.num_gpus)});
      if (power_capped) {
        power_row.push_back(
            {candidate.lp_var,
             static_cast<double>(config.num_gpus) *
                 input.cluster->power_model(config.gpu_type).active_watts});
      }
    }

    job_row.clear();
    for (const Candidate& candidate : candidates[i]) {
      job_row.push_back({candidate.lp_var, 1.0});
    }
    if (!spec.preemptible && currently_running) {
      // Non-preemptible jobs must retain their current configuration (§3.4
      // "Preemption and reservation").
      for (const Candidate& candidate : candidates[i]) {
        if (configs[candidate.config_index] == job.current_config) {
          lp.SetVariableBounds(candidate.lp_var, 1.0, 1.0);
        }
      }
    }
    // Reservations: non-preemptible jobs are *forced* to receive resources
    // ("this constraint ensures that the non-preemptive jobs get allocated
    // first", §3.4); preemptible jobs may be left queued.
    lp.AddConstraint(spec.preemptible ? ConstraintOp::kLessEq : ConstraintOp::kEqual, 1.0,
                     job_row.data(), job_row.size());
  }

  for (int t = 0; t < num_gpu_types; ++t) {
    if (!capacity_rows[t].empty()) {
      // Capacity is live capacity: down nodes (crash/repair window) must not
      // be allocatable, or the placer would have to evict the overflow.
      lp.AddConstraint(ConstraintOp::kLessEq,
                       static_cast<double>(input.cluster->AvailableGpus(t)),
                       capacity_rows[t].data(), capacity_rows[t].size());
    }
  }
  if (power_capped && !power_row.empty()) {
    // Cap enforcement, planned natively (DESIGN.md §14): the simulator's
    // post-hoc trim never fires on sia-energy's output in steady state.
    // Pinned non-preemptible incumbents were admitted under the cap, so
    // their forced variables cannot make this row infeasible on their own;
    // if a solve still fails, the greedy repair above is watt-budgeted.
    lp.AddConstraint(ConstraintOp::kLessEq, options_.power_cap_watts, power_row.data(),
                     power_row.size());
  }

  if (input.metrics != nullptr && input.record_timings) {
    const auto build_elapsed = std::chrono::steady_clock::now() - build_start;
    input.metrics->counter("sia.lp_build_wall_ns")
        .Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(build_elapsed).count()));
  }

  ScheduleOutput output;
  if (lp.num_variables() == 0) {
    have_warm_state_ = false;  // Nothing to warm-start the next round with.
    // Keep the session in lockstep with the serialized warm state: a
    // restored run would have no basis to rebuild from, so the live run
    // must not keep one either (byte-identical resumed metrics).
    session_.Invalidate();
    RecordLadderServed(rung, input.metrics);
    last_output_ = output;
    return output;
  }

  // Feed the previous round's incumbent + root basis in when the new ILP has
  // the same shape; SolveMilp re-validates both, so near-identical-but-not
  // programs degrade to a cold solve, never to a wrong answer.
  MilpOptions milp_options = options_.milp;
  milp_options.arena = &arena_;  // B&B node state joins the round scratch.
  if (rung == LadderRung::kCappedMilp) {
    milp_options.max_nodes = std::min(milp_options.max_nodes, 8);
  } else if (rung == LadderRung::kLpRound) {
    // Root relaxation only; the packing-rounding heuristic turns it into a
    // feasible integral incumbent without any branching.
    milp_options.max_nodes = 1;
    milp_options.packing_rounding = true;
  }
  if (input.deadline_seconds >= 0.0) {
    // Tighten the solver budget to what remains of the round deadline (a
    // 10% margin covers output extraction). The floor keeps the limit
    // meaningful -- a non-positive value would mean "unlimited".
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - round_start;
    const double remaining = std::max((input.deadline_seconds - elapsed.count()) * 0.9, 1e-3);
    if (milp_options.time_limit_seconds <= 0.0 ||
        remaining < milp_options.time_limit_seconds) {
      milp_options.time_limit_seconds = remaining;
    }
  }
  if (options_.warm_start && have_warm_state_ &&
      warm_num_variables_ == lp.num_variables() &&
      warm_num_constraints_ == lp.num_constraints()) {
    milp_options.warm_start = &warm_state_;
  }
  // Incremental session (ISSUE 8): requires warm_start because the
  // checkpoint-restore path rebuilds the session from the serialized warm
  // basis -- without that export a resumed run could not replay the live
  // run's incremental solves.
  long long inc_roots_before = 0;
  long long inc_fallbacks_before = 0;
  if (options_.incremental_lp && options_.warm_start) {
    milp_options.session = &session_;
    inc_roots_before = session_.stats().incremental_roots;
    inc_fallbacks_before = session_.stats().cold_fallbacks;
  }
  const auto solve_start = std::chrono::steady_clock::now();
  MilpSolution solution = SolveMilp(lp, milp_options);
  if (input.metrics != nullptr && input.record_timings) {
    const auto solve_elapsed = std::chrono::steady_clock::now() - solve_start;
    input.metrics->counter("sia.solve_wall_ns")
        .Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(solve_elapsed).count()));
  }
  if (options_.warm_start) {
    warm_state_ = std::move(solution.next_warm_start);
    have_warm_state_ = !warm_state_.empty();
    warm_num_variables_ = lp.num_variables();
    warm_num_constraints_ = lp.num_constraints();
  }
  if (input.metrics != nullptr) {
    input.metrics->counter("solver.bb_nodes").Add(static_cast<uint64_t>(solution.nodes_explored));
    input.metrics->counter("solver.lp_iterations")
        .Add(static_cast<uint64_t>(solution.lp_iterations));
    input.metrics->counter("solver.warm_started_lps")
        .Add(static_cast<uint64_t>(solution.warm_started_lps));
    input.metrics->counter("solver.warm_start_pivots_saved")
        .Add(static_cast<uint64_t>(solution.warm_start_pivots_saved));
    input.metrics->counter("solver.dual_pivots")
        .Add(static_cast<uint64_t>(solution.dual_pivots));
    input.metrics->counter("solver.cold_node_solves")
        .Add(static_cast<uint64_t>(solution.cold_node_solves));
    if (milp_options.session != nullptr) {
      // Per-round deltas, not cumulative session stats: these are identical
      // whether the round ran on a live session or one rebuilt from a
      // restored warm basis, which byte-identical resumed metrics require.
      input.metrics->counter("solver.incremental_roots")
          .Add(static_cast<uint64_t>(session_.stats().incremental_roots - inc_roots_before));
      input.metrics->counter("solver.incremental_fallbacks")
          .Add(static_cast<uint64_t>(session_.stats().cold_fallbacks - inc_fallbacks_before));
    }
    input.metrics->counter("scheduler.ilp_variables")
        .Add(static_cast<uint64_t>(lp.num_variables()));
    input.metrics->gauge("solver.last_bb_nodes").Set(solution.nodes_explored);
    input.metrics->gauge("solver.last_objective").Set(solution.objective);
  }
  const bool usable = (solution.status == SolveStatus::kOptimal ||
                       solution.status == SolveStatus::kNodeLimit ||
                       solution.status == SolveStatus::kTimeLimit) &&
                      !solution.values.empty();
  if (!usable) {
    // "Leave allocations unchanged" is not a safe fallback: after a node
    // crash the stale allocation can exceed live capacity. Re-pack greedily
    // against what is actually available instead.
    SIA_LOG(Warning) << "Sia ILP solve failed (" << ToString(solution.status)
                     << "); running greedy feasibility repair";
    if (input.metrics != nullptr) {
      input.metrics->counter("scheduler.greedy_fallbacks").Add();
    }
    RecordLadderMiss(rung, input.metrics);  // The planned rung produced nothing.
    output = GreedyRepairAllocations(input, configs, candidates, options_.power_cap_watts);
    RecordLadderServed(LadderRung::kGreedy, input.metrics);
    last_output_ = output;
    return output;
  }

  const auto place_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < input.jobs.size(); ++i) {
    for (const Candidate& candidate : candidates[i]) {
      if (solution.values[candidate.lp_var] > 0.5) {
        output[input.jobs[i].spec->id] = configs[candidate.config_index];
        break;
      }
    }
  }
  if (input.metrics != nullptr && input.record_timings) {
    const auto place_elapsed = std::chrono::steady_clock::now() - place_start;
    input.metrics->counter("sia.placement_wall_ns")
        .Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(place_elapsed).count()));
  }
  RecordLadderServed(rung, input.metrics);
  last_output_ = output;
  return output;
}

void SiaScheduler::SaveState(BinaryWriter& w) const {
  w.Bool(have_warm_state_);
  w.I32(warm_num_variables_);
  w.I32(warm_num_constraints_);
  SaveWarmStart(w, warm_state_);
  cache_.SaveState(w);
  // Carry-over rung source (ISSUE 6): without it a resumed run under a
  // deadline would carry over nothing where the uninterrupted run carries
  // the previous round's allocation.
  SaveScheduleOutput(w, last_output_);
}

bool SiaScheduler::RestoreState(BinaryReader& r) {
  // The incremental session is rebuilt lazily from the restored warm basis
  // (see SiaOptions::incremental_lp); whatever engine state exists belongs
  // to the pre-restore timeline.
  session_.Invalidate();
  have_warm_state_ = r.Bool();
  warm_num_variables_ = r.I32();
  warm_num_constraints_ = r.I32();
  if (!RestoreWarmStart(r, &warm_state_)) return false;
  if (!cache_.RestoreState(r)) return false;
  return RestoreScheduleOutput(r, &last_output_);
}

}  // namespace sia
