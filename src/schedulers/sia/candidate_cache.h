// Cross-round memoization of the goodput matrix (ISSUE 3).
//
// Sia re-evaluates jobs x configs goodputs every round, but between two
// rounds most jobs' throughput models are unchanged: queued jobs receive no
// telemetry at all, and running jobs refit only the GPU type they run on.
// The cache keys each (job, config) estimate by the estimator's fit epoch
// for that config's GPU type -- see GoodputEstimator::fit_epoch() -- so a
// hit is *guaranteed* to equal what Estimate() would return, making
// cache-enabled scheduling bit-identical to cache-disabled.
//
// On top of the per-entry memo, each row carries the *derived* result of the
// last full generation pass (candidate list, min goodput/required, entries
// checked). When the ScheduleView delta (ISSUE 7) reports a job unchanged --
// same view row, same fit epochs -- the scheduler replays the derived result
// without touching the config set at all, still bit-identical: a full pass
// over an unchanged job would hit on exactly the entries it checked last
// time and rebuild the same candidate list. Derived state is recomputed on
// demand, so it is not serialized; the first round after a restore (which
// marks every job changed) regenerates it.
//
// Threading contract: AcquireRow / RetainOnly are sequential (they mutate
// the row map); the per-row state may then be read/written concurrently as
// long as each job's row is touched by exactly one thread -- which the
// scheduler guarantees by parallelizing over jobs, not configs.
#ifndef SIA_SRC_SCHEDULERS_SIA_CANDIDATE_CACHE_H_
#define SIA_SRC_SCHEDULERS_SIA_CANDIDATE_CACHE_H_

#include <cstddef>
#include <map>
#include <vector>

#include "src/common/binary_codec.h"
#include "src/common/job_id.h"

namespace sia {

class CandidateCache {
 public:
  struct Entry {
    long long epoch = -1;  // fit_epoch the estimate was computed at; -1 = empty.
    bool feasible = false;
    double goodput = 0.0;
  };

  // A feasible (config, goodput) pair from the last full generation pass.
  struct CachedCandidate {
    int config_index = 0;
    double goodput = 0.0;
  };

  // One row per job: the per-config memo plus the derived fast-path state.
  struct Row {
    std::vector<Entry> entries;

    // Result of the last full generation pass over this row. Only replayed
    // when the ScheduleView delta says the job is unchanged; never
    // serialized (recomputed after restore).
    bool derived_valid = false;
    int derived_checked = 0;  // Entries the last full pass consulted.
    double derived_min_goodput = 0.0;
    int derived_min_required = 0;
    std::vector<CachedCandidate> derived_candidates;

    void InvalidateDerived() {
      derived_valid = false;
      derived_checked = 0;
      derived_candidates.clear();
    }
  };

  // Returns the row for `job`, creating or resizing it to `num_configs`
  // entries (a config-set change invalidates naturally: resized entries
  // start empty, and epochs never match across different estimators).
  // Sequential only.
  Row* AcquireRow(JobId job, int num_configs);

  // Drops rows of jobs not in `live` (finished / removed jobs). `live` need
  // not be sorted. Sequential only.
  void RetainOnly(const std::vector<JobId>& live);

  std::size_t num_rows() const { return rows_.size(); }

  // Snapshot support (ISSUE 5): the cache is performance state, but resumed
  // runs must replay the same hit/miss counters and warm-path behavior as
  // the uninterrupted run, so the memo entries are carried across a
  // checkpoint verbatim. Derived state is skipped: the post-restore round
  // marks every job changed, and the resulting full pass both regenerates
  // it and counts the same hits a replay would have.
  void SaveState(BinaryWriter& w) const {
    w.U64(rows_.size());
    for (const auto& [job, row] : rows_) {
      w.I32(job);
      w.U64(row.entries.size());
      for (const Entry& entry : row.entries) {
        w.I64(entry.epoch);
        w.Bool(entry.feasible);
        w.F64(entry.goodput);
      }
    }
  }
  bool RestoreState(BinaryReader& r) {
    uint64_t num_rows = r.U64();
    if (!r.ok() || num_rows > 1u << 20) {
      r.Fail("candidate cache: implausible row count");
      return false;
    }
    rows_.clear();
    for (uint64_t i = 0; i < num_rows; ++i) {
      JobId job = r.I32();
      uint64_t row_size = r.U64();
      if (!r.ok() || row_size > 1u << 20) {
        r.Fail("candidate cache: implausible row size");
        return false;
      }
      Row row;
      row.entries.resize(row_size);
      for (Entry& entry : row.entries) {
        entry.epoch = r.I64();
        entry.feasible = r.Bool();
        entry.goodput = r.F64();
      }
      rows_.emplace(job, std::move(row));
    }
    return r.ok();
  }

 private:
  std::map<JobId, Row> rows_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SIA_CANDIDATE_CACHE_H_
