// Cross-round memoization of the goodput matrix (ISSUE 3).
//
// Sia re-evaluates jobs x configs goodputs every round, but between two
// rounds most jobs' throughput models are unchanged: queued jobs receive no
// telemetry at all, and running jobs refit only the GPU type they run on.
// The cache keys each (job, config) estimate by the estimator's fit epoch
// for that config's GPU type -- see GoodputEstimator::fit_epoch() -- so a
// hit is *guaranteed* to equal what Estimate() would return, making
// cache-enabled scheduling bit-identical to cache-disabled.
//
// Threading contract: AcquireRow / RetainOnly are sequential (they mutate
// the row map); the per-row entries may then be read/written concurrently
// as long as each job's row is touched by exactly one thread -- which the
// scheduler guarantees by parallelizing over jobs, not configs.
#ifndef SIA_SRC_SCHEDULERS_SIA_CANDIDATE_CACHE_H_
#define SIA_SRC_SCHEDULERS_SIA_CANDIDATE_CACHE_H_

#include <cstddef>
#include <map>
#include <vector>

#include "src/common/binary_codec.h"
#include "src/common/job_id.h"

namespace sia {

class CandidateCache {
 public:
  struct Entry {
    long long epoch = -1;  // fit_epoch the estimate was computed at; -1 = empty.
    bool feasible = false;
    double goodput = 0.0;
  };

  // One row per job, one entry per config index.
  using Row = std::vector<Entry>;

  // Returns the row for `job`, creating or resizing it to `num_configs`
  // entries (a config-set change invalidates naturally: resized entries
  // start empty, and epochs never match across different estimators).
  // Sequential only.
  Row* AcquireRow(JobId job, int num_configs);

  // Drops rows of jobs not in `live` (finished / removed jobs). `live` need
  // not be sorted. Sequential only.
  void RetainOnly(const std::vector<JobId>& live);

  std::size_t num_rows() const { return rows_.size(); }

  // Snapshot support (ISSUE 5): the cache is performance state, but resumed
  // runs must replay the same hit/miss counters and warm-path behavior as
  // the uninterrupted run, so it is carried across a checkpoint verbatim.
  void SaveState(BinaryWriter& w) const {
    w.U64(rows_.size());
    for (const auto& [job, row] : rows_) {
      w.I32(job);
      w.U64(row.size());
      for (const Entry& entry : row) {
        w.I64(entry.epoch);
        w.Bool(entry.feasible);
        w.F64(entry.goodput);
      }
    }
  }
  bool RestoreState(BinaryReader& r) {
    uint64_t num_rows = r.U64();
    if (!r.ok() || num_rows > 1u << 20) {
      r.Fail("candidate cache: implausible row count");
      return false;
    }
    rows_.clear();
    for (uint64_t i = 0; i < num_rows; ++i) {
      JobId job = r.I32();
      uint64_t row_size = r.U64();
      if (!r.ok() || row_size > 1u << 20) {
        r.Fail("candidate cache: implausible row size");
        return false;
      }
      Row row(row_size);
      for (Entry& entry : row) {
        entry.epoch = r.I64();
        entry.feasible = r.Bool();
        entry.goodput = r.F64();
      }
      rows_.emplace(job, std::move(row));
    }
    return r.ok();
  }

 private:
  std::map<JobId, Row> rows_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SIA_CANDIDATE_CACHE_H_
