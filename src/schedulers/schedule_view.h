// ScheduleView: the scheduler-facing snapshot of active jobs.
//
// Historically `ScheduleInput` owned a `std::vector<JobView>` that the
// simulator re-copied every round. The event-driven core (ISSUE 7) keeps the
// canonical per-job views alive inside the simulator's JobTable, so the
// scheduler boundary is now a *view*: spans over storage owned elsewhere,
// plus an explicit changed-since-last-round delta that incremental policies
// (Sia's candidate cache + warm start) consume. `ScheduleInput` remains as an
// alias, and `ScheduleViewBuilder` is the one factory every producer (the
// simulator round loop, bench_util snapshots, src/testing differentials,
// unit tests) routes through, so hand-built inputs cannot drift from the
// real ones.
#ifndef SIA_SRC_SCHEDULERS_SCHEDULE_VIEW_H_
#define SIA_SRC_SCHEDULERS_SCHEDULE_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/common/job_id.h"
#include "src/models/estimator.h"
#include "src/obs/metrics_registry.h"
#include "src/workload/job.h"

namespace sia {

// Scheduler-visible state of one active job.
struct JobView {
  const JobSpec* spec = nullptr;
  // The job's learned goodput model (never the simulator's ground truth).
  const GoodputEstimator* estimator = nullptr;
  // Submission time (simulation clock). Policies derive the job's age from
  // this via ScheduleView::age_seconds(job) -- storing the absolute time
  // instead of a precomputed age keeps the view row constant while the job
  // is idle, which is what lets the event-driven core skip rewriting it.
  double submit_time_seconds = 0.0;
  int num_restarts = 0;
  // Checkpoint-restore cost for this job (S_i in Eq. 3). Known to the
  // scheduler from past restarts.
  double restart_overhead_seconds = 30.0;
  // Current allocation; num_gpus == 0 when queued/preempted.
  Config current_config;
  // Largest GPU count this job has held so far (drives the <=2x scale-up
  // rule across preemptions).
  int peak_num_gpus = 0;
  // Fraction of total work completed, as reported by the executors
  // (schedulers may use it for remaining-time estimates; they never see the
  // simulator's ground-truth throughput).
  double progress_fraction = 0.0;
  // GPU-seconds of service received so far (drives fairness policies).
  double service_gpu_seconds = 0.0;
  // Total work declared at submission (epochs x dataset size, in reference
  // samples) -- lets policies estimate remaining time.
  double total_work = 0.0;
};

struct ScheduleView {
  double now_seconds = 0.0;
  const ClusterSpec* cluster = nullptr;
  // Valid configuration set for this cluster (§3.3), prebuilt once.
  const std::vector<Config>* config_set = nullptr;
  // All active jobs in arrival order. Storage is owned by the producer
  // (JobTable / ScheduleViewBuilder) and stays valid for the duration of
  // the Schedule() call.
  std::span<const JobView> jobs;
  // Delta contract: when `incremental` is true, `changed` holds the indices
  // into `jobs` (ascending) whose view rows may differ from the previous
  // round with the same producer; every other row is bitwise-unchanged AND
  // its estimator's fit epochs are unchanged. The set may be a conservative
  // superset (e.g. the first round after a checkpoint restore marks every
  // job changed). When `incremental` is false -- standalone drivers, tests,
  // the dense reference core -- policies must treat every job as changed.
  std::span<const int32_t> changed;
  bool incremental = false;
  // Monotonic producer round counter (simulator round index). Lets policies
  // detect skipped rounds if they cache across calls.
  int64_t round_epoch = 0;
  // Observability hook (never null inside ClusterSimulator; standalone
  // drivers may leave it unset). Policies record their per-round solver work
  // here -- `solver.bb_nodes`, `solver.lp_iterations`, `scheduler.*` -- which
  // the simulator folds into SimResult::PolicyCost and the run trace.
  MetricsRegistry* metrics = nullptr;
  // Allow wall-clock counters (e.g. sia.candidate_gen_wall_ns) into the
  // registry. Off by default: wall time is nondeterministic, and default
  // registry exports must be byte-identical for a fixed seed -- including
  // across a checkpoint/resume (ISSUE 5). The simulator sets this from
  // SimOptions::trace_timings.
  bool record_timings = false;
  // Wall-clock budget for this Schedule() call in seconds; < 0 = unlimited
  // (the default, which keeps fixed-seed runs deterministic). Set per round
  // by the service / SimOptions::round_deadline_seconds. Deadline-aware
  // policies degrade through the ladder in src/schedulers/ladder.h instead
  // of overrunning; a budget of exactly 0 deterministically selects the
  // bottom (carry-over) rung.
  double deadline_seconds = -1.0;

  // Time since submission -- identical arithmetic to the pre-view API's
  // precomputed JobView::age_seconds (now_ - submit_time), so policies
  // migrate mechanically and traces stay byte-identical.
  double age_seconds(const JobView& job) const {
    return now_seconds - job.submit_time_seconds;
  }
};

// Compatibility alias: the 8 existing policies keep compiling against
// `const ScheduleInput&` with mechanical changes only.
using ScheduleInput = ScheduleView;

// The one factory for ScheduleViews. Owns the JobView rows (and the changed
// list) and stamps the metadata; View() is cheap and can be called many
// times as rows are edited between calls.
class ScheduleViewBuilder {
 public:
  double now_seconds = 0.0;
  const ClusterSpec* cluster = nullptr;
  const std::vector<Config>* config_set = nullptr;
  bool incremental = false;
  int64_t round_epoch = 0;
  MetricsRegistry* metrics = nullptr;
  bool record_timings = false;
  double deadline_seconds = -1.0;

  std::vector<JobView>& jobs() { return jobs_; }
  const std::vector<JobView>& jobs() const { return jobs_; }
  std::vector<int32_t>& changed() { return changed_; }
  const std::vector<int32_t>& changed() const { return changed_; }

  // Appends a row with the identity fields filled from the spec; the caller
  // tweaks the rest in place.
  JobView& AddJob(const JobSpec& spec, const GoodputEstimator* estimator) {
    JobView view;
    view.spec = &spec;
    view.estimator = estimator;
    view.submit_time_seconds = spec.submit_time;
    jobs_.push_back(view);
    return jobs_.back();
  }

  void Clear() {
    jobs_.clear();
    changed_.clear();
  }

  ScheduleView View() const {
    ScheduleView view;
    view.now_seconds = now_seconds;
    view.cluster = cluster;
    view.config_set = config_set;
    view.jobs = std::span<const JobView>(jobs_);
    view.changed = std::span<const int32_t>(changed_);
    view.incremental = incremental;
    view.round_epoch = round_epoch;
    view.metrics = metrics;
    view.record_timings = record_timings;
    view.deadline_seconds = deadline_seconds;
    return view;
  }

 private:
  std::vector<JobView> jobs_;
  std::vector<int32_t> changed_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SCHEDULE_VIEW_H_
