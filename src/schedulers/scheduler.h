// Scheduling-policy interface shared by Sia and all baseline policies.
//
// The simulator invokes Schedule() once per scheduling round with a snapshot
// of all active jobs (queued + running) and expects back a desired
// configuration per job (absent = no resources this round). Concrete
// placement is handled by the Placer downstream (§3.1 "decoupled allocation
// and placement").
#ifndef SIA_SRC_SCHEDULERS_SCHEDULER_H_
#define SIA_SRC_SCHEDULERS_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/common/job_id.h"
#include "src/models/estimator.h"
#include "src/obs/metrics_registry.h"
#include "src/workload/job.h"

namespace sia {

// Scheduler-visible state of one active job.
struct JobView {
  const JobSpec* spec = nullptr;
  // The job's learned goodput model (never the simulator's ground truth).
  const GoodputEstimator* estimator = nullptr;
  double age_seconds = 0.0;  // Time since submission.
  int num_restarts = 0;
  // Checkpoint-restore cost for this job (S_i in Eq. 3). Known to the
  // scheduler from past restarts.
  double restart_overhead_seconds = 30.0;
  // Current allocation; num_gpus == 0 when queued/preempted.
  Config current_config;
  // Largest GPU count this job has held so far (drives the <=2x scale-up
  // rule across preemptions).
  int peak_num_gpus = 0;
  // Fraction of total work completed, as reported by the executors
  // (schedulers may use it for remaining-time estimates; they never see the
  // simulator's ground-truth throughput).
  double progress_fraction = 0.0;
  // GPU-seconds of service received so far (drives fairness policies).
  double service_gpu_seconds = 0.0;
  // Total work declared at submission (epochs x dataset size, in reference
  // samples) -- lets policies estimate remaining time.
  double total_work = 0.0;
};

struct ScheduleInput {
  double now_seconds = 0.0;
  const ClusterSpec* cluster = nullptr;
  // Valid configuration set for this cluster (§3.3), prebuilt once.
  const std::vector<Config>* config_set = nullptr;
  std::vector<JobView> jobs;
  // Observability hook (never null inside ClusterSimulator; standalone
  // drivers may leave it unset). Policies record their per-round solver work
  // here -- `solver.bb_nodes`, `solver.lp_iterations`, `scheduler.*` -- which
  // the simulator folds into SimResult::PolicyCost and the run trace.
  MetricsRegistry* metrics = nullptr;
  // Allow wall-clock counters (e.g. sia.candidate_gen_wall_ns) into the
  // registry. Off by default: wall time is nondeterministic, and default
  // registry exports must be byte-identical for a fixed seed -- including
  // across a checkpoint/resume (ISSUE 5). The simulator sets this from
  // SimOptions::trace_timings.
  bool record_timings = false;
  // Wall-clock budget for this Schedule() call in seconds; < 0 = unlimited
  // (the default, which keeps fixed-seed runs deterministic). Set per round
  // by the service / SimOptions::round_deadline_seconds. Deadline-aware
  // policies degrade through the ladder in src/schedulers/ladder.h instead
  // of overrunning; a budget of exactly 0 deterministically selects the
  // bottom (carry-over) rung.
  double deadline_seconds = -1.0;
};

// Desired allocation per job; jobs absent from the map receive nothing.
// Keyed by JobId -- the same id type JobSpec, the placer, and the trace
// layer use -- so ids survive the whole schedule -> place -> apply chain
// without type laundering.
using ScheduleOutput = std::map<JobId, Config>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;
  // Preferred scheduling-round duration (60 s for Sia/Pollux, 360 s for the
  // rigid baselines per §4.3).
  virtual double round_duration_seconds() const = 0;
  virtual ScheduleOutput Schedule(const ScheduleInput& input) = 0;

  // Snapshot support (ISSUE 5): policies carrying cross-round state (Sia's
  // warm start + candidate cache, Gavel's service accounting, Pollux's
  // genetic-search RNG) serialize it here so a resumed run schedules
  // byte-identically to the uninterrupted one. Stateless policies keep the
  // no-op defaults.
  virtual void SaveState(BinaryWriter& w) const { (void)w; }
  virtual bool RestoreState(BinaryReader& r) { return r.ok(); }
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SCHEDULER_H_
