// Scheduling-policy interface shared by Sia and all baseline policies.
//
// The simulator invokes Schedule() once per scheduling round with a view of
// all active jobs (queued + running) and expects back a desired
// configuration per job (absent = no resources this round). Concrete
// placement is handled by the Placer downstream (§3.1 "decoupled allocation
// and placement"). The view type (ScheduleView, aliased as ScheduleInput)
// and its builder live in schedule_view.h.
#ifndef SIA_SRC_SCHEDULERS_SCHEDULER_H_
#define SIA_SRC_SCHEDULERS_SCHEDULER_H_

#include <map>
#include <string>

#include "src/common/job_id.h"
#include "src/schedulers/schedule_view.h"

namespace sia {

// Desired allocation per job; jobs absent from the map receive nothing.
// Keyed by JobId -- the same id type JobSpec, the placer, and the trace
// layer use -- so ids survive the whole schedule -> place -> apply chain
// without type laundering.
using ScheduleOutput = std::map<JobId, Config>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;
  // Preferred scheduling-round duration (60 s for Sia/Pollux, 360 s for the
  // rigid baselines per §4.3).
  virtual double round_duration_seconds() const = 0;
  virtual ScheduleOutput Schedule(const ScheduleInput& input) = 0;

  // Snapshot support (ISSUE 5): policies carrying cross-round state (Sia's
  // warm start + candidate cache, Gavel's service accounting, Pollux's
  // genetic-search RNG) serialize it here so a resumed run schedules
  // byte-identically to the uninterrupted one. Stateless policies keep the
  // no-op defaults.
  virtual void SaveState(BinaryWriter& w) const { (void)w; }
  virtual bool RestoreState(BinaryReader& r) { return r.ok(); }
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SCHEDULER_H_
