#include "src/schedulers/shape_util.h"

namespace sia {

std::optional<Config> ShapeForCount(const ClusterSpec& cluster, int gpu_type, int count,
                                    bool allow_partial_nodes) {
  if (count <= 0 || cluster.NumNodes(gpu_type) == 0) {
    return std::nullopt;
  }
  const int per_node = cluster.GpusPerNode(gpu_type);
  if (count <= per_node) {
    return Config{1, count, gpu_type};
  }
  if (!allow_partial_nodes && count % per_node != 0) {
    return std::nullopt;  // Distributed non-scatter shapes take whole nodes.
  }
  const int nodes = (count + per_node - 1) / per_node;
  if (nodes > cluster.NumNodes(gpu_type)) {
    return std::nullopt;
  }
  return Config{nodes, count, gpu_type};
}

int GpuPowerRank(const std::string& type_name) {
  if (type_name == "a100") {
    return 4;
  }
  if (type_name == "quad") {
    return 3;
  }
  if (type_name == "rtx") {
    return 2;
  }
  if (type_name == "t4") {
    return 1;
  }
  return 0;
}

}  // namespace sia
