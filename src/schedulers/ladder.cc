#include "src/schedulers/ladder.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/schedulers/shape_util.h"

namespace sia {
namespace {

constexpr const char* kRungNames[kNumLadderRungs] = {"full_milp", "capped_milp", "lp_round",
                                                     "greedy", "carry_over"};

std::string RungMetricName(const char* kind, LadderRung rung) {
  std::string name = "scheduler.ladder.";
  name += kind;
  name += '.';
  name += kRungNames[static_cast<int>(rung)];
  return name;
}

// Grants `config` to `job` if it fits the per-type budget, charging it.
bool TryGrant(const JobView& job, const Config& config, std::vector<int>& free_gpus,
              ScheduleOutput& output) {
  if (config.num_gpus <= 0 || config.gpu_type < 0 ||
      config.gpu_type >= static_cast<int>(free_gpus.size())) {
    return false;
  }
  if (config.num_gpus > free_gpus[config.gpu_type]) {
    return false;
  }
  free_gpus[config.gpu_type] -= config.num_gpus;
  output[job.spec->id] = config;
  return true;
}

std::vector<int> LiveCapacity(const ScheduleInput& input) {
  std::vector<int> free_gpus(input.cluster->num_gpu_types());
  for (int t = 0; t < input.cluster->num_gpu_types(); ++t) {
    free_gpus[t] = input.cluster->AvailableGpus(t);
  }
  return free_gpus;
}

}  // namespace

const char* ToString(LadderRung rung) {
  const int index = static_cast<int>(rung);
  SIA_CHECK(index >= 0 && index < kNumLadderRungs);
  return kRungNames[index];
}

LadderRung ChooseLadderRung(const DeadlineOptions& options, double budget_seconds,
                            bool milp_capable, MetricsRegistry* metrics) {
  const double reserves[kNumLadderRungs - 1] = {
      options.full_reserve_seconds, options.capped_reserve_seconds,
      options.lp_round_reserve_seconds, options.greedy_reserve_seconds};
  const int start = std::clamp(options.force_rung, 0, kNumLadderRungs - 1);
  for (int r = 0; r < kNumLadderRungs - 1; ++r) {
    const LadderRung rung = static_cast<LadderRung>(r);
    if (r < start) {
      RecordLadderMiss(rung, metrics);  // Forced descent (test hook).
      continue;
    }
    if (!milp_capable && (rung == LadderRung::kCappedMilp || rung == LadderRung::kLpRound)) {
      RecordLadderMiss(rung, metrics);  // Rung not implementable for this policy.
      continue;
    }
    if (budget_seconds < 0.0 || budget_seconds >= reserves[r]) {
      return rung;
    }
    RecordLadderMiss(rung, metrics);
  }
  return LadderRung::kCarryOver;
}

void RecordLadderServed(LadderRung rung, MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  metrics->counter(RungMetricName("served", rung)).Add();
  metrics->gauge("scheduler.ladder.last_rung").Set(static_cast<double>(static_cast<int>(rung)));
}

void RecordLadderMiss(LadderRung rung, MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  metrics->counter(RungMetricName("miss", rung)).Add();
}

ScheduleOutput CarryOverAllocation(const ScheduleInput& input, const ScheduleOutput& previous,
                                   int scale_up_factor) {
  SIA_CHECK(input.cluster != nullptr);
  ScheduleOutput output;
  std::vector<int> free_gpus = LiveCapacity(input);

  // Pass 1: non-preemptible running jobs -- their reservation must hold, so
  // they are charged against capacity before anything else. Pass 2: the
  // rest, in the snapshot's (JobId-stable) order.
  for (const int pass : {0, 1}) {
    for (const JobView& job : input.jobs) {
      const bool reserved = !job.spec->preemptible && job.current_config.num_gpus > 0;
      if ((pass == 0) != reserved) {
        continue;
      }
      const auto it = previous.find(job.spec->id);
      if (it == previous.end()) {
        continue;
      }
      const Config& config = it->second;
      if (scale_up_factor > 0 && job.spec->adaptivity != AdaptivityMode::kRigid) {
        // A previous *request* that was never placed does not raise
        // peak_num_gpus, so re-issuing it verbatim could overshoot the
        // scale-up cap; drop such grants rather than violate the contract.
        const int min_gpus = std::max(1, job.estimator->MinGpus(config.gpu_type));
        const int cap = job.peak_num_gpus <= 0
                            ? min_gpus
                            : std::max(min_gpus, scale_up_factor * job.peak_num_gpus);
        if (config.num_gpus > cap) {
          continue;
        }
      }
      TryGrant(job, config, free_gpus, output);
    }
  }
  return output;
}

ScheduleOutput GreedyMinimalAllocation(const ScheduleInput& input) {
  SIA_CHECK(input.cluster != nullptr);
  ScheduleOutput output;
  std::vector<int> free_gpus = LiveCapacity(input);

  std::vector<size_t> order(input.jobs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  // Same priority order as Sia's greedy repair: reservations, then running
  // jobs (restart-free), then queued jobs starved-first.
  std::stable_sort(order.begin(), order.end(), [&input](size_t a, size_t b) {
    const JobView& ja = input.jobs[a];
    const JobView& jb = input.jobs[b];
    const bool ra = !ja.spec->preemptible && ja.current_config.num_gpus > 0;
    const bool rb = !jb.spec->preemptible && jb.current_config.num_gpus > 0;
    if (ra != rb) {
      return ra;
    }
    const bool runs_a = ja.current_config.num_gpus > 0;
    const bool runs_b = jb.current_config.num_gpus > 0;
    if (runs_a != runs_b) {
      return runs_a;
    }
    return ja.service_gpu_seconds < jb.service_gpu_seconds;
  });

  for (const size_t i : order) {
    const JobView& job = input.jobs[i];
    if (job.current_config.num_gpus > 0) {
      TryGrant(job, job.current_config, free_gpus, output);
      continue;
    }
    // Queued: minimum feasible size on the first GPU type that accepts the
    // job (type order is deterministic; quality is not the point here).
    for (int t = 0; t < input.cluster->num_gpu_types(); ++t) {
      const int min_gpus = job.estimator->MinGpus(t);
      if (min_gpus <= 0) {
        continue;  // Model cannot run on this GPU type.
      }
      const int count = job.spec->adaptivity == AdaptivityMode::kRigid
                            ? job.spec->rigid_num_gpus
                            : min_gpus;
      if (count <= 0 || count > job.spec->max_num_gpus || count > free_gpus[t]) {
        continue;
      }
      const std::optional<Config> shape = ShapeForCount(*input.cluster, t, count);
      if (!shape.has_value()) {
        continue;
      }
      const BatchDecision decision =
          job.estimator->Estimate(*shape, job.spec->adaptivity, job.spec->fixed_bsz);
      if (!decision.feasible || decision.goodput <= 0.0) {
        continue;
      }
      if (TryGrant(job, *shape, free_gpus, output)) {
        break;
      }
    }
  }
  return output;
}

void SaveScheduleOutput(BinaryWriter& w, const ScheduleOutput& output) {
  w.U64(output.size());
  for (const auto& [id, config] : output) {
    w.I64(static_cast<int64_t>(id));
    w.I32(config.num_nodes);
    w.I32(config.num_gpus);
    w.I32(config.gpu_type);
    w.Bool(config.scatter);
  }
}

bool RestoreScheduleOutput(BinaryReader& r, ScheduleOutput* output) {
  output->clear();
  const uint64_t count = r.U64();
  // Guard the count before reserving anything: a corrupt prefix must fail
  // cleanly, not allocate. 1M entries is far above any real cluster.
  if (!r.ok() || count > (1u << 20)) {
    return false;
  }
  for (uint64_t k = 0; k < count; ++k) {
    const JobId id = static_cast<JobId>(r.I64());
    Config config;
    config.num_nodes = r.I32();
    config.num_gpus = r.I32();
    config.gpu_type = r.I32();
    config.scatter = r.Bool();
    if (!r.ok()) {
      return false;
    }
    (*output)[id] = config;
  }
  return r.ok();
}

DeadlineLadderScheduler::DeadlineLadderScheduler(std::unique_ptr<Scheduler> inner,
                                                 DeadlineOptions options)
    : inner_(std::move(inner)), options_(options) {
  SIA_CHECK(inner_ != nullptr);
}

std::string DeadlineLadderScheduler::name() const { return inner_->name(); }

double DeadlineLadderScheduler::round_duration_seconds() const {
  return inner_->round_duration_seconds();
}

ScheduleOutput DeadlineLadderScheduler::Schedule(const ScheduleInput& input) {
  const LadderRung rung = ChooseLadderRung(options_, input.deadline_seconds,
                                           /*milp_capable=*/false, input.metrics);
  ScheduleOutput output;
  switch (rung) {
    case LadderRung::kFullMilp:
    case LadderRung::kCappedMilp:
    case LadderRung::kLpRound:
      // Full budget (the MILP-only rungs are unreachable for the wrapper):
      // run the wrapped policy unchanged.
      output = inner_->Schedule(input);
      break;
    case LadderRung::kGreedy:
      output = GreedyMinimalAllocation(input);
      break;
    case LadderRung::kCarryOver:
      output = CarryOverAllocation(input, last_output_);
      break;
  }
  RecordLadderServed(rung, input.metrics);
  last_output_ = output;
  return output;
}

void DeadlineLadderScheduler::SaveState(BinaryWriter& w) const {
  SaveScheduleOutput(w, last_output_);
  inner_->SaveState(w);
}

bool DeadlineLadderScheduler::RestoreState(BinaryReader& r) {
  if (!RestoreScheduleOutput(r, &last_output_)) {
    return false;
  }
  return inner_->RestoreState(r);
}

}  // namespace sia
