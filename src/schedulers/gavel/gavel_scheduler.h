// Reimplementation of Gavel [40], the state-of-the-art heterogeneity-aware
// scheduler for rigid jobs, with the max-sum-throughput policy used in the
// paper's evaluation (§4.3).
//
// Allocation: an LP over time fractions x_{j,t} (job j on GPU type t at its
// fixed GPU count), maximizing the sum of per-job normalized effective
// throughputs, subject to sum_t x_{j,t} <= 1 per job and per-type GPU
// capacity. Mechanism: Gavel's round-based realization -- each round,
// (job, type) pairs are prioritized by allocated-fraction / received-
// fraction and greedily packed, time-sharing GPUs across rounds (each swap
// pays checkpoint-restore in the simulator, reproducing Gavel's congestion
// pathology on bursty traces).
#ifndef SIA_SRC_SCHEDULERS_GAVEL_GAVEL_SCHEDULER_H_
#define SIA_SRC_SCHEDULERS_GAVEL_GAVEL_SCHEDULER_H_

#include <map>
#include <vector>

#include "src/schedulers/scheduler.h"

namespace sia {

// Gavel's allocation policies [40]. The paper's evaluation uses
// kMaxSumThroughput ("it results in the lowest average JCT on Philly traces
// among the policies listed in [40]", §4.3); the others are provided for the
// policy-comparison bench and for completeness.
enum class GavelPolicy {
  // max sum_j effective_throughput(j) (normalized per job).
  kMaxSumThroughput,
  // max-min fairness: maximize the minimum normalized effective throughput
  // (Gavel's "LAS"-flavoured fairness objective), approximated by repeated
  // LP max-min water-filling.
  kMaxMinFairness,
  // Weight each job's throughput by 1/age: favors young/short jobs
  // (Gavel's finish-time-fairness-leaning variant).
  kMinJct,
};

const char* ToString(GavelPolicy policy);

struct GavelOptions {
  double round_duration_seconds = 360.0;  // §4.3 default for Gavel.
  GavelPolicy policy = GavelPolicy::kMaxSumThroughput;
};

class GavelScheduler : public Scheduler {
 public:
  explicit GavelScheduler(GavelOptions options = {}) : options_(options) {}

  std::string name() const override {
    return options_.policy == GavelPolicy::kMaxSumThroughput
               ? "gavel"
               : std::string("gavel/") + ToString(options_.policy);
  }
  double round_duration_seconds() const override { return options_.round_duration_seconds; }
  ScheduleOutput Schedule(const ScheduleInput& input) override;

  // Serializes the service-accounting state driving the x/received priority
  // mechanism (ISSUE 5).
  void SaveState(BinaryWriter& w) const override;
  bool RestoreState(BinaryReader& r) override;

 private:
  GavelOptions options_;
  // Seconds of service each (job, type) pair has received, for the
  // priority = x / received mechanism.
  std::map<int, std::vector<double>> received_seconds_;
  std::map<int, double> active_seconds_;
  ScheduleOutput last_output_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_GAVEL_GAVEL_SCHEDULER_H_
