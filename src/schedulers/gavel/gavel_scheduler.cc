#include "src/schedulers/gavel/gavel_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/schedulers/shape_util.h"
#include "src/solver/simplex.h"

namespace sia {

const char* ToString(GavelPolicy policy) {
  switch (policy) {
    case GavelPolicy::kMaxSumThroughput:
      return "max-sum-throughput";
    case GavelPolicy::kMaxMinFairness:
      return "max-min-fairness";
    case GavelPolicy::kMinJct:
      return "min-jct";
  }
  return "?";
}

ScheduleOutput GavelScheduler::Schedule(const ScheduleInput& input) {
  SIA_CHECK(input.cluster != nullptr);
  const ClusterSpec& cluster = *input.cluster;
  const int num_types = cluster.num_gpu_types();
  const int num_jobs = static_cast<int>(input.jobs.size());
  ScheduleOutput output;
  if (num_jobs == 0) {
    last_output_.clear();
    return output;
  }

  // Account service from the previous round before re-planning.
  for (const auto& [job_id, config] : last_output_) {
    auto it = received_seconds_.find(job_id);
    if (it != received_seconds_.end() && config.num_gpus > 0) {
      it->second[config.gpu_type] += options_.round_duration_seconds;
    }
  }
  for (const JobView& job : input.jobs) {
    received_seconds_.try_emplace(job.spec->id, std::vector<double>(num_types, 0.0));
    active_seconds_[job.spec->id] = std::max(input.age_seconds(job), 1.0);
  }

  // --- allocation LP ---
  // Throughputs: job at its fixed GPU count / batch on each type, from the
  // job's (profiled) estimator; normalized per job by its best type so the
  // objective is scale-free across models.
  struct JobRow {
    int count = 1;                      // Rigid GPU count.
    std::vector<double> throughput;     // Per type; 0 = cannot run.
    std::vector<int> lp_var;            // Per type; -1 = absent.
  };
  std::vector<JobRow> rows(num_jobs);
  LinearProgram lp(ObjectiveSense::kMaximize);
  for (int i = 0; i < num_jobs; ++i) {
    const JobView& job = input.jobs[i];
    JobRow& row = rows[i];
    // Gavel treats every job as rigid: it uses the submitted (tuned) count
    // and batch size; adaptive jobs submitted to Gavel fall back to their
    // max-batch single... -- in our harness Gavel always receives TunedJobs,
    // but degrade gracefully for adaptive specs (1 GPU, optimal batch).
    row.count = job.spec->rigid_num_gpus > 0 ? job.spec->rigid_num_gpus : 1;
    row.throughput.assign(num_types, 0.0);
    row.lp_var.assign(num_types, -1);
    double best = 0.0;
    for (int t = 0; t < num_types; ++t) {
      if (!job.estimator->TypeAvailable(t)) {
        continue;
      }
      const auto shape = ShapeForCount(cluster, t, row.count);
      if (!shape) {
        continue;
      }
      const AdaptivityMode mode = job.spec->fixed_bsz > 0.0 ? AdaptivityMode::kRigid
                                                            : AdaptivityMode::kAdaptive;
      const BatchDecision decision =
          job.estimator->Estimate(*shape, mode, job.spec->fixed_bsz);
      if (decision.feasible && decision.throughput > 0.0) {
        row.throughput[t] = decision.throughput;
        best = std::max(best, decision.throughput);
      }
    }
    if (best <= 0.0) {
      continue;
    }
    // Policy-specific objective weight on each (job, type) time fraction.
    double weight_scale = 1.0;
    switch (options_.policy) {
      case GavelPolicy::kMaxSumThroughput:
        weight_scale = 1.0;
        break;
      case GavelPolicy::kMinJct:
        // Favor young jobs: weight decays with age (finish-time-leaning).
        weight_scale = 1.0 / std::max(input.age_seconds(job) / 3600.0, 0.1);
        break;
      case GavelPolicy::kMaxMinFairness:
        weight_scale = 0.0;  // Objective carried by the max-min variable.
        break;
    }
    std::vector<LpTerm> job_constraint;
    for (int t = 0; t < num_types; ++t) {
      if (row.throughput[t] <= 0.0) {
        continue;
      }
      // Tiny utilization tiebreak keeps max-min solutions from leaving
      // fractions at zero when capacity is idle.
      const double coefficient =
          weight_scale * row.throughput[t] / best +
          (options_.policy == GavelPolicy::kMaxMinFairness ? 1e-3 : 0.0);
      row.lp_var[t] = lp.AddVariable(0.0, 1.0, coefficient);
      job_constraint.emplace_back(row.lp_var[t], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 1.0, std::move(job_constraint));
  }
  int maxmin_var = -1;
  if (options_.policy == GavelPolicy::kMaxMinFairness && lp.num_variables() > 0) {
    // One-shot max-min (first level of Gavel's lexicographic water-filling):
    // maximize z subject to every job's normalized effective throughput
    // >= z.
    maxmin_var = lp.AddVariable(0.0, 1.0, 1.0, "z");
    for (int i = 0; i < num_jobs; ++i) {
      double best = 0.0;
      for (int t = 0; t < num_types; ++t) {
        best = std::max(best, rows[i].throughput[t]);
      }
      if (best <= 0.0) {
        continue;
      }
      std::vector<LpTerm> fairness_row;
      for (int t = 0; t < num_types; ++t) {
        if (rows[i].lp_var[t] >= 0) {
          fairness_row.emplace_back(rows[i].lp_var[t], rows[i].throughput[t] / best);
        }
      }
      fairness_row.emplace_back(maxmin_var, -1.0);
      lp.AddConstraint(ConstraintOp::kGreaterEq, 0.0, std::move(fairness_row));
    }
  }
  for (int t = 0; t < num_types; ++t) {
    std::vector<LpTerm> capacity;
    for (int i = 0; i < num_jobs; ++i) {
      if (rows[i].lp_var[t] >= 0) {
        capacity.emplace_back(rows[i].lp_var[t], static_cast<double>(rows[i].count));
      }
    }
    if (!capacity.empty()) {
      lp.AddConstraint(ConstraintOp::kLessEq, static_cast<double>(cluster.AvailableGpus(t)),
                       std::move(capacity));
    }
  }
  if (lp.num_variables() == 0) {
    last_output_.clear();
    return output;
  }
  const LpSolution solution = SolveLp(lp);
  if (input.metrics != nullptr) {
    input.metrics->counter("solver.lp_iterations").Add(static_cast<uint64_t>(solution.iterations));
    input.metrics->gauge("solver.last_objective").Set(solution.objective);
  }
  if (solution.status != SolveStatus::kOptimal) {
    last_output_.clear();
    return output;
  }

  // --- round-based mechanism: priority = allocated fraction / received ---
  struct Priority {
    int job_index;
    int type;
    double priority;
    double fraction;
  };
  std::vector<Priority> priorities;
  for (int i = 0; i < num_jobs; ++i) {
    const JobView& job = input.jobs[i];
    for (int t = 0; t < num_types; ++t) {
      if (rows[i].lp_var[t] < 0) {
        continue;
      }
      // Gavel solves its LP with an interior-point solver, which spreads the
      // optimal face across jobs; our simplex returns vertices that can zero
      // a job out entirely. A small fraction floor restores the rotating
      // time-share behaviour for feasible (job, type) pairs.
      const double fraction = std::max(solution.values[rows[i].lp_var[t]], 0.02);
      const double received =
          received_seconds_.at(job.spec->id)[t] / active_seconds_.at(job.spec->id);
      priorities.push_back({i, t, fraction / (received + 1e-3), fraction});
    }
  }
  std::stable_sort(priorities.begin(), priorities.end(), [](const Priority& a, const Priority& b) {
    return a.priority > b.priority;
  });

  std::vector<int> free_gpus(num_types);
  for (int t = 0; t < num_types; ++t) {
    free_gpus[t] = cluster.AvailableGpus(t);  // Live capacity only.
  }
  std::vector<bool> placed(num_jobs, false);
  for (const Priority& candidate : priorities) {
    if (placed[candidate.job_index]) {
      continue;
    }
    const JobRow& row = rows[candidate.job_index];
    if (free_gpus[candidate.type] < row.count) {
      continue;
    }
    const auto shape = ShapeForCount(cluster, candidate.type, row.count);
    if (!shape) {
      continue;
    }
    free_gpus[candidate.type] -= row.count;
    placed[candidate.job_index] = true;
    output[input.jobs[candidate.job_index].spec->id] = *shape;
  }

  // Backfill: the max-sum-throughput LP can hand a job zero fraction on
  // every type (vertex solutions starve); idle capacity goes to unplaced
  // jobs in least-served-first order, as Gavel's mechanism does.
  std::vector<int> backfill;
  for (int i = 0; i < num_jobs; ++i) {
    if (!placed[i]) {
      backfill.push_back(i);
    }
  }
  std::stable_sort(backfill.begin(), backfill.end(), [&](int a, int b) {
    const JobView& ja = input.jobs[a];
    const JobView& jb = input.jobs[b];
    return ja.service_gpu_seconds / std::max(input.age_seconds(ja), 1.0) <
           jb.service_gpu_seconds / std::max(input.age_seconds(jb), 1.0);
  });
  for (int i : backfill) {
    const JobRow& row = rows[i];
    for (int t = 0; t < num_types; ++t) {
      if (row.throughput[t] <= 0.0 || free_gpus[t] < row.count) {
        continue;
      }
      const auto shape = ShapeForCount(cluster, t, row.count);
      if (!shape) {
        continue;
      }
      free_gpus[t] -= row.count;
      output[input.jobs[i].spec->id] = *shape;
      break;
    }
  }

  last_output_ = output;
  return output;
}

void GavelScheduler::SaveState(BinaryWriter& w) const {
  w.U64(received_seconds_.size());
  for (const auto& [job, per_type] : received_seconds_) {
    w.I32(job);
    w.VecF64(per_type);
  }
  w.U64(active_seconds_.size());
  for (const auto& [job, seconds] : active_seconds_) {
    w.I32(job);
    w.F64(seconds);
  }
  w.U64(last_output_.size());
  for (const auto& [job, config] : last_output_) {
    w.I32(job);
    w.I32(config.num_nodes);
    w.I32(config.num_gpus);
    w.I32(config.gpu_type);
    w.Bool(config.scatter);
  }
}

bool GavelScheduler::RestoreState(BinaryReader& r) {
  constexpr uint64_t kMaxEntries = 1u << 20;
  uint64_t num_received = r.U64();
  if (!r.ok() || num_received > kMaxEntries) {
    r.Fail("gavel: implausible received-seconds count");
    return false;
  }
  received_seconds_.clear();
  for (uint64_t i = 0; i < num_received; ++i) {
    int job = r.I32();
    received_seconds_[job] = r.VecF64();
  }
  uint64_t num_active = r.U64();
  if (!r.ok() || num_active > kMaxEntries) {
    r.Fail("gavel: implausible active-seconds count");
    return false;
  }
  active_seconds_.clear();
  for (uint64_t i = 0; i < num_active; ++i) {
    int job = r.I32();
    active_seconds_[job] = r.F64();
  }
  uint64_t num_output = r.U64();
  if (!r.ok() || num_output > kMaxEntries) {
    r.Fail("gavel: implausible last-output count");
    return false;
  }
  last_output_.clear();
  for (uint64_t i = 0; i < num_output; ++i) {
    JobId job = r.I32();
    Config config;
    config.num_nodes = r.I32();
    config.num_gpus = r.I32();
    config.gpu_type = r.I32();
    config.scatter = r.Bool();
    last_output_[job] = config;
  }
  return r.ok();
}

}  // namespace sia
