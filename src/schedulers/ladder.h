// Deadline degradation ladder for the scheduling core (ISSUE 6).
//
// A long-running service must answer every round within a bounded budget
// (ScheduleInput::deadline_seconds); it cannot hope the MILP finishes. The
// ladder trades solution quality for latency in five rungs:
//
//   0 full_milp    full warm-started MILP (the normal batch path)
//   1 capped_milp  MILP with a tightened node budget + remaining wall clock
//   2 lp_round     one LP relaxation + packing rounding (no branching)
//   3 greedy       greedy feasibility repair, no solver at all
//   4 carry_over   re-validate and re-issue the previous round's allocation
//
// Rung selection is *planned up front* from the remaining budget and a
// per-rung reserve (the minimum budget worth even attempting that rung),
// not discovered by timing out rung after rung -- so a budget of exactly 0
// deterministically walks every computational rung (recording one
// `scheduler.ladder.miss.<rung>` each) and serves from carry_over, which is
// what the soak harness byte-compares. Budgets strictly between 0 and the
// top reserve select a rung by wall clock and are therefore not part of any
// byte-identity contract.
//
// Every served round records `scheduler.ladder.served.<rung>` and updates
// the `scheduler.ladder.last_rung` gauge, which the simulator copies into
// the round trace record (`ladder_rung`).
//
// SiaScheduler implements all five rungs natively. The baselines get rungs
// {full, greedy, carry_over} via DeadlineLadderScheduler, which wraps any
// policy; the two MILP-specific rungs are recorded as misses when descent
// passes through them.
#ifndef SIA_SRC_SCHEDULERS_LADDER_H_
#define SIA_SRC_SCHEDULERS_LADDER_H_

#include <memory>
#include <string>

#include "src/common/binary_codec.h"
#include "src/schedulers/scheduler.h"

namespace sia {

enum class LadderRung : int {
  kFullMilp = 0,
  kCappedMilp = 1,
  kLpRound = 2,
  kGreedy = 3,
  kCarryOver = 4,
};

inline constexpr int kNumLadderRungs = 5;

// Stable metric-suffix names: full_milp / capped_milp / lp_round / greedy /
// carry_over.
const char* ToString(LadderRung rung);

struct DeadlineOptions {
  // Minimum remaining budget (seconds) worth attempting each computational
  // rung. Descent stops at the first rung whose reserve fits; carry_over
  // needs no reserve. Monotone decreasing by construction.
  double full_reserve_seconds = 0.5;
  double capped_reserve_seconds = 0.05;
  double lp_round_reserve_seconds = 0.01;
  double greedy_reserve_seconds = 0.002;
  // Test hook: start the descent at this rung regardless of budget; every
  // rung above it records a deterministic miss. -1 = off.
  int force_rung = -1;
};

// Picks the rung for a round with `budget_seconds` remaining (< 0 =
// unlimited), recording a `scheduler.ladder.miss.<rung>` counter for every
// rung skipped. `milp_capable` = false (the baseline wrapper) records the
// two MILP-only rungs as misses whenever descent reaches them.
LadderRung ChooseLadderRung(const DeadlineOptions& options, double budget_seconds,
                            bool milp_capable, MetricsRegistry* metrics);

// Bumps `scheduler.ladder.served.<rung>` and sets the
// `scheduler.ladder.last_rung` gauge.
void RecordLadderServed(LadderRung rung, MetricsRegistry* metrics);
// Bumps `scheduler.ladder.miss.<rung>` (exposed for runtime failures, e.g.
// an unusable MILP solve demoting the round to greedy repair).
void RecordLadderMiss(LadderRung rung, MetricsRegistry* metrics);

// Bottom rung: re-issues `previous` filtered down to jobs still in the
// snapshot and to live per-type capacity (a crash may have shrunk it).
// Non-preemptible running jobs are re-granted first -- their reservation
// must hold -- then map order. When `scale_up_factor` > 0, grants to
// never-yet-placed jobs are additionally capped by the <=2x scale-up rule
// (Sia's contract; the wrapper passes 0 because baselines size freely).
ScheduleOutput CarryOverAllocation(const ScheduleInput& input, const ScheduleOutput& previous,
                                   int scale_up_factor = 0);

// Greedy rung for arbitrary policies: running jobs keep their current
// configuration when it still fits live capacity (restart-free and already
// policy-approved); queued jobs are admitted at their minimum feasible size
// on the first GPU type that accepts them, starved-first. Never calls a
// solver.
ScheduleOutput GreedyMinimalAllocation(const ScheduleInput& input);

// ScheduleOutput snapshot helpers for policies that persist a carry-over
// allocation across checkpoint/resume.
void SaveScheduleOutput(BinaryWriter& w, const ScheduleOutput& output);
bool RestoreScheduleOutput(BinaryReader& r, ScheduleOutput* output);

// Deadline ladder for policies without native deadline support. Delegates
// name() / round_duration_seconds() to the wrapped policy, so the trace and
// snapshot fingerprint are unchanged; SaveState nests the inner policy's
// blob after the wrapper's own carry-over state.
class DeadlineLadderScheduler : public Scheduler {
 public:
  DeadlineLadderScheduler(std::unique_ptr<Scheduler> inner, DeadlineOptions options);

  std::string name() const override;
  double round_duration_seconds() const override;
  ScheduleOutput Schedule(const ScheduleInput& input) override;
  void SaveState(BinaryWriter& w) const override;
  bool RestoreState(BinaryReader& r) override;

 private:
  std::unique_ptr<Scheduler> inner_;
  DeadlineOptions options_;
  ScheduleOutput last_output_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_LADDER_H_
