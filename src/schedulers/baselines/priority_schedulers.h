// Rigid-job priority schedulers: Shockwave [61], Themis [34], FIFO, SRTF.
//
// All four share a greedy mechanism -- rank active jobs by a policy-specific
// priority and pack them (at their fixed GPU counts) onto whichever GPU type
// has room, preferring the type with the most free GPUs. They never adapt
// batch sizes or GPU counts, matching the paper's "rigid jobs on
// homogeneous clusters" category (§2.1):
//
//  * Themis: finish-time-fairness -- jobs with the highest attained-service
//    deficit (age per unit of GPU service) first.
//  * Shockwave: FTF priority like Themis, but regularized to also favor
//    jobs that are close to finishing (its makespan-aware market term),
//    which is why it beats Themis/Gavel in Table 4. Simplified from the
//    full dynamic-market formulation; documented in DESIGN.md.
//  * FIFO: submission order.
//  * SRTF: shortest estimated remaining time first.
#ifndef SIA_SRC_SCHEDULERS_BASELINES_PRIORITY_SCHEDULERS_H_
#define SIA_SRC_SCHEDULERS_BASELINES_PRIORITY_SCHEDULERS_H_

#include "src/schedulers/scheduler.h"

namespace sia {

enum class PriorityPolicy { kShockwave, kThemis, kFifo, kSrtf };

struct PrioritySchedulerOptions {
  PriorityPolicy policy = PriorityPolicy::kShockwave;
  double round_duration_seconds = 360.0;  // §4.3 default for rigid baselines.
};

class PriorityScheduler : public Scheduler {
 public:
  explicit PriorityScheduler(PrioritySchedulerOptions options) : options_(options) {}

  std::string name() const override;
  double round_duration_seconds() const override { return options_.round_duration_seconds; }
  ScheduleOutput Schedule(const ScheduleInput& input) override;

 private:
  double PriorityOf(const JobView& job, const ScheduleInput& input) const;

  PrioritySchedulerOptions options_;
};

// Convenience factories.
PrioritySchedulerOptions ShockwaveOptions();
PrioritySchedulerOptions ThemisOptions();
PrioritySchedulerOptions FifoOptions();
PrioritySchedulerOptions SrtfOptions();

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_BASELINES_PRIORITY_SCHEDULERS_H_
