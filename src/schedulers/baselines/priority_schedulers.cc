#include "src/schedulers/baselines/priority_schedulers.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/schedulers/shape_util.h"

namespace sia {
namespace {

// Estimated seconds to finish the job if it ran its rigid configuration on
// its best GPU type starting now (used by SRTF and Shockwave).
double EstimatedRemainingSeconds(const JobView& job, const ClusterSpec& cluster) {
  const int count = job.spec->rigid_num_gpus > 0 ? job.spec->rigid_num_gpus : 1;
  double best_goodput = 0.0;
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    if (!job.estimator->TypeAvailable(t)) {
      continue;
    }
    const auto shape = ShapeForCount(cluster, t, count);
    if (!shape) {
      continue;
    }
    const AdaptivityMode mode =
        job.spec->fixed_bsz > 0.0 ? AdaptivityMode::kRigid : AdaptivityMode::kAdaptive;
    const BatchDecision decision = job.estimator->Estimate(*shape, mode, job.spec->fixed_bsz);
    if (decision.feasible) {
      best_goodput = std::max(best_goodput, decision.goodput);
    }
  }
  if (best_goodput <= 0.0) {
    return 1e9;
  }
  const double remaining_work = (1.0 - job.progress_fraction) * job.total_work;
  return remaining_work / best_goodput;
}

}  // namespace

std::string PriorityScheduler::name() const {
  switch (options_.policy) {
    case PriorityPolicy::kShockwave:
      return "shockwave";
    case PriorityPolicy::kThemis:
      return "themis";
    case PriorityPolicy::kFifo:
      return "fifo";
    case PriorityPolicy::kSrtf:
      return "srtf";
  }
  return "?";
}

double PriorityScheduler::PriorityOf(const JobView& job, const ScheduleInput& input) const {
  const double age = std::max(input.age_seconds(job), 1.0);
  const int count = std::max(job.spec->rigid_num_gpus, 1);
  switch (options_.policy) {
    case PriorityPolicy::kThemis: {
      // Attained-service fairness: seconds of age per GPU-second of service
      // per requested GPU. Starved jobs float to the top. Themis allocates
      // on leases, so running jobs get a small incumbency bonus standing in
      // for the unexpired-lease period.
      const double service = job.service_gpu_seconds / count;
      const double incumbency = job.current_config.num_gpus > 0 ? 1.3 : 1.0;
      return incumbency * age / (service + 1.0);
    }
    case PriorityPolicy::kShockwave: {
      // FTF deficit regularized toward finishing near-done jobs (the
      // makespan-aware term of Shockwave's market objective). Shockwave
      // plans over multi-round epochs, so running jobs keep a moderate
      // incumbency bonus -- without it, per-round FTF re-ranking swaps jobs
      // continuously and checkpoint-restore overhead dominates.
      const double service = job.service_gpu_seconds / count;
      const double ftf_deficit = age / (service + 1.0);
      const double remaining_hours =
          EstimatedRemainingSeconds(job, *input.cluster) / 3600.0;
      const double incumbency = job.current_config.num_gpus > 0 ? 1.5 : 1.0;
      return ftf_deficit * (1.0 + 1.0 / (1.0 + remaining_hours)) * incumbency;
    }
    case PriorityPolicy::kFifo:
      // Earlier submissions first.
      return -job.spec->submit_time;
    case PriorityPolicy::kSrtf:
      return -EstimatedRemainingSeconds(job, *input.cluster);
  }
  return 0.0;
}

ScheduleOutput PriorityScheduler::Schedule(const ScheduleInput& input) {
  SIA_CHECK(input.cluster != nullptr);
  const ClusterSpec& cluster = *input.cluster;
  ScheduleOutput output;

  std::vector<size_t> order(input.jobs.size());
  std::vector<double> priorities(input.jobs.size());
  for (size_t i = 0; i < input.jobs.size(); ++i) {
    order[i] = i;
    priorities[i] = PriorityOf(input.jobs[i], input);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return priorities[a] > priorities[b]; });

  std::vector<int> free_gpus(cluster.num_gpu_types());
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    free_gpus[t] = cluster.AvailableGpus(t);  // Live capacity only.
  }
  for (size_t i : order) {
    const JobView& job = input.jobs[i];
    const int count = job.spec->rigid_num_gpus > 0 ? job.spec->rigid_num_gpus : 1;
    // Prefer keeping the current GPU type (avoids pointless migration),
    // then the type with the most free GPUs.
    std::vector<int> types;
    if (job.current_config.num_gpus > 0) {
      types.push_back(job.current_config.gpu_type);
    }
    std::vector<int> by_free;
    for (int t = 0; t < cluster.num_gpu_types(); ++t) {
      by_free.push_back(t);
    }
    std::stable_sort(by_free.begin(), by_free.end(),
                     [&](int a, int b) { return free_gpus[a] > free_gpus[b]; });
    types.insert(types.end(), by_free.begin(), by_free.end());
    for (int t : types) {
      if (!job.estimator->TypeAvailable(t) || free_gpus[t] < count) {
        continue;
      }
      const auto shape = ShapeForCount(cluster, t, count);
      if (!shape) {
        continue;
      }
      free_gpus[t] -= count;
      output[job.spec->id] = *shape;
      break;
    }
  }
  if (input.metrics != nullptr) {
    input.metrics->counter("scheduler.jobs_allocated").Add(output.size());
    input.metrics->counter("scheduler.jobs_considered").Add(input.jobs.size());
  }
  return output;
}

PrioritySchedulerOptions ShockwaveOptions() { return {PriorityPolicy::kShockwave, 360.0}; }
PrioritySchedulerOptions ThemisOptions() { return {PriorityPolicy::kThemis, 360.0}; }
PrioritySchedulerOptions FifoOptions() { return {PriorityPolicy::kFifo, 360.0}; }
PrioritySchedulerOptions SrtfOptions() { return {PriorityPolicy::kSrtf, 360.0}; }

}  // namespace sia
