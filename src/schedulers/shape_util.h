// Shared helpers for mapping a bare GPU count onto a placeable (n, m, t)
// configuration shape on a given cluster.
#ifndef SIA_SRC_SCHEDULERS_SHAPE_UTIL_H_
#define SIA_SRC_SCHEDULERS_SHAPE_UTIL_H_

#include <optional>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"

namespace sia {

// Shape for `count` GPUs of `gpu_type`: single-node when it fits one node,
// otherwise whole nodes (count must then be a multiple of the node size).
// Returns nullopt when the count cannot be realized on this type (e.g. 32
// GPUs on a type with only 6 4-GPU nodes, or 12 GPUs on 8-GPU nodes).
//
// `allow_partial_nodes` lifts the multiple-of-node-size rule and returns a
// ceil(count / node_size)-node shape instead. Only for callers that mark
// the result `scatter` (Pollux): a non-scatter distributed allocation
// claims whole nodes, so a partial shape would leave residual GPUs that
// the placer hands to other jobs -- the node-sharing violation sia_fuzz
// found on 3-GPU node groups (seeds 125/176/185, every rigid policy).
std::optional<Config> ShapeForCount(const ClusterSpec& cluster, int gpu_type, int count,
                                    bool allow_partial_nodes = false);

// Power rank used by the paper's mixed-allocation fix heuristic (§4.3):
// a100 > quad > rtx > t4 > anything unknown.
int GpuPowerRank(const std::string& type_name);

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_SHAPE_UTIL_H_
