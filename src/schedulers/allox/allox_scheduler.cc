#include "src/schedulers/allox/allox_scheduler.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/schedulers/shape_util.h"

namespace sia {

ScheduleOutput AlloxScheduler::Schedule(const ScheduleInput& input) {
  SIA_CHECK(input.cluster != nullptr);
  const ClusterSpec& cluster = *input.cluster;
  const int num_types = cluster.num_gpu_types();
  ScheduleOutput output;

  struct Entry {
    size_t job_index;
    double best_remaining_seconds;
    // Types ordered fastest-first for this job.
    std::vector<std::pair<double, int>> type_speeds;  // (remaining seconds, type)
    int count;
  };
  std::vector<Entry> entries;
  for (size_t i = 0; i < input.jobs.size(); ++i) {
    const JobView& job = input.jobs[i];
    Entry entry;
    entry.job_index = i;
    entry.count = job.spec->rigid_num_gpus > 0 ? job.spec->rigid_num_gpus : 1;
    const double remaining_work = (1.0 - job.progress_fraction) * job.total_work;
    for (int t = 0; t < num_types; ++t) {
      if (!job.estimator->TypeAvailable(t)) {
        continue;
      }
      const auto shape = ShapeForCount(cluster, t, entry.count);
      if (!shape) {
        continue;
      }
      const AdaptivityMode mode =
          job.spec->fixed_bsz > 0.0 ? AdaptivityMode::kRigid : AdaptivityMode::kAdaptive;
      const BatchDecision decision =
          job.estimator->Estimate(*shape, mode, job.spec->fixed_bsz);
      if (!decision.feasible || decision.goodput <= 0.0) {
        continue;
      }
      entry.type_speeds.emplace_back(remaining_work / decision.goodput, t);
    }
    if (entry.type_speeds.empty()) {
      continue;
    }
    std::sort(entry.type_speeds.begin(), entry.type_speeds.end());
    entry.best_remaining_seconds = entry.type_speeds.front().first;
    entries.push_back(std::move(entry));
  }

  // Shortest best-case remaining time first (the SJF order that the min-cost
  // matching produces for average-JCT minimization).
  std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.best_remaining_seconds < b.best_remaining_seconds;
  });

  std::vector<int> free_gpus(num_types);
  for (int t = 0; t < num_types; ++t) {
    free_gpus[t] = cluster.AvailableGpus(t);  // Live capacity only.
  }
  for (const Entry& entry : entries) {
    for (const auto& [remaining, t] : entry.type_speeds) {
      if (free_gpus[t] < entry.count) {
        continue;
      }
      const auto shape = ShapeForCount(cluster, t, entry.count);
      if (!shape) {
        continue;
      }
      free_gpus[t] -= entry.count;
      output[input.jobs[entry.job_index].spec->id] = *shape;
      break;
    }
  }
  if (input.metrics != nullptr) {
    input.metrics->counter("scheduler.jobs_allocated").Add(output.size());
    input.metrics->counter("scheduler.jobs_considered").Add(entries.size());
  }
  return output;
}

}  // namespace sia
