// AlloX-style baseline (Le et al., EuroSys'20 [32]): heterogeneity-aware
// scheduling of rigid jobs that minimizes average completion time by
// assigning jobs to the GPU type where they run fastest, serving the
// shortest (remaining-time) jobs first.
//
// AlloX models scheduling as a min-cost bipartite matching between jobs and
// (machine, order) slots; with round-based preemptive execution this reduces
// to: each round, sort jobs by their best-case remaining time and greedily
// give each its fastest feasible GPU type. Like Gavel it does not adapt
// batch sizes or GPU counts.
#ifndef SIA_SRC_SCHEDULERS_ALLOX_ALLOX_SCHEDULER_H_
#define SIA_SRC_SCHEDULERS_ALLOX_ALLOX_SCHEDULER_H_

#include "src/schedulers/scheduler.h"

namespace sia {

struct AlloxOptions {
  double round_duration_seconds = 360.0;
};

class AlloxScheduler : public Scheduler {
 public:
  explicit AlloxScheduler(AlloxOptions options = {}) : options_(options) {}

  std::string name() const override { return "allox"; }
  double round_duration_seconds() const override { return options_.round_duration_seconds; }
  ScheduleOutput Schedule(const ScheduleInput& input) override;

 private:
  AlloxOptions options_;
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_ALLOX_ALLOX_SCHEDULER_H_
