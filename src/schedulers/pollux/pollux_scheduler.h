// Reimplementation of the Pollux scheduling policy [44], extended for
// heterogeneous clusters exactly the way the paper's baseline is (§4.3):
//
//  * Pollux is heterogeneity-UNAWARE: it treats the cluster as a pool of
//    identical virtual 4-GPU nodes and evaluates each job's goodput with a
//    single type-blind model (here: the type the job last ran on, falling
//    back to the cluster's most numerous type).
//  * The search is a genetic algorithm over per-job GPU counts, maximizing
//    the p-power mean of per-job speedups (p = -1 by default), with a
//    re-allocation penalty for changed allocations.
//  * Raw GPU counts are then mapped to single-GPU-type allocations; the
//    paper's fix heuristic resolves what would have been mixed-type
//    placements by preferring the type with the most free GPUs (ties broken
//    by GPU power: a100 > quad > rtx > t4), idling any leftover GPUs.
//
// The GA's population x generations x jobs cost reproduces Pollux's poor
// cluster-size scaling in Fig. 9.
#ifndef SIA_SRC_SCHEDULERS_POLLUX_POLLUX_SCHEDULER_H_
#define SIA_SRC_SCHEDULERS_POLLUX_POLLUX_SCHEDULER_H_

#include <memory>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/schedulers/scheduler.h"

namespace sia {

struct PolluxOptions {
  double fairness_power = -1.0;  // Same default as [44].
  double round_duration_seconds = 60.0;
  int population = 48;
  int generations = 25;
  double mutation_rate = 0.15;
  // Virtual node size used for goodput estimation (8-GPU nodes are presented
  // as two virtual 4-GPU nodes, §4.3).
  int virtual_node_gpus = 4;
  double min_restart_factor = 0.05;
  uint64_t seed = 7;
  // Threads for the per-job goodput pre-evaluation (--sched-threads). The GA
  // itself stays sequential (its RNG stream defines the search), but the
  // expensive estimator calls fan out deterministically over jobs.
  int num_threads = 1;
};

class PolluxScheduler : public Scheduler {
 public:
  explicit PolluxScheduler(PolluxOptions options = {}) : options_(options), rng_(options.seed) {}

  std::string name() const override { return "pollux"; }
  double round_duration_seconds() const override { return options_.round_duration_seconds; }
  ScheduleOutput Schedule(const ScheduleInput& input) override;

  // The GA's RNG stream defines the search; serialize it so a resumed run
  // explores the exact same populations (ISSUE 5).
  void SaveState(BinaryWriter& w) const override { rng_.SaveState(w); }
  bool RestoreState(BinaryReader& r) override { return rng_.RestoreState(r); }

 private:
  PolluxOptions options_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;  // Created lazily when num_threads > 1.
};

}  // namespace sia

#endif  // SIA_SRC_SCHEDULERS_POLLUX_POLLUX_SCHEDULER_H_
