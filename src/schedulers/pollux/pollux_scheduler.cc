#include "src/schedulers/pollux/pollux_scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/schedulers/shape_util.h"

namespace sia {
namespace {

// One individual: GPUs assigned to each job on each virtual node,
// row-major [job * num_vnodes + vnode]. This is Pollux's actual search
// space -- per-job per-node placements -- which is why its genetic algorithm
// scales poorly with cluster size (Fig. 9): genome length grows with
// #jobs x #nodes.
using Genome = std::vector<uint8_t>;

}  // namespace

ScheduleOutput PolluxScheduler::Schedule(const ScheduleInput& input) {
  SIA_CHECK(input.cluster != nullptr);
  const ClusterSpec& cluster = *input.cluster;
  const int num_jobs = static_cast<int>(input.jobs.size());
  ScheduleOutput output;
  if (num_jobs == 0) {
    return output;
  }
  const int vnode = options_.virtual_node_gpus;
  // Present every physical node as homogeneous virtual nodes of `vnode`
  // GPUs (8-GPU nodes become two virtual nodes, §4.3).
  int num_vnodes = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.NodeUp(n)) {
      continue;  // Down nodes contribute no virtual nodes.
    }
    num_vnodes += std::max(1, cluster.node(n).num_gpus / vnode);
  }
  if (num_vnodes == 0) {
    return output;  // Every node is down; nothing to allocate.
  }
  const size_t genome_len = static_cast<size_t>(num_jobs) * num_vnodes;

  // Heterogeneity-blind goodput model: each job is evaluated on one "blend"
  // type (its current type, else the most numerous type it can run on).
  int most_numerous_type = 0;
  for (int t = 1; t < cluster.num_gpu_types(); ++t) {
    if (cluster.TotalGpus(t) > cluster.TotalGpus(most_numerous_type)) {
      most_numerous_type = t;
    }
  }

  struct JobModel {
    int blend_type = -1;
    int min_count = 1;
    int max_count = 0;
    int current_count = 0;
    double restart_factor = 1.0;
    double base_goodput = 0.0;
    // Memoized goodput by (count, multi_node flag).
    mutable std::map<std::pair<int, bool>, double> cache;
  };
  std::vector<JobModel> models(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    const JobView& job = input.jobs[i];
    JobModel& model = models[i];
    int blend = job.current_config.num_gpus > 0 ? job.current_config.gpu_type
                                                : most_numerous_type;
    if (!job.estimator->TypeAvailable(blend)) {
      blend = -1;
      for (int t = 0; t < cluster.num_gpu_types(); ++t) {
        if (job.estimator->TypeAvailable(t)) {
          blend = t;
          break;
        }
      }
    }
    model.blend_type = blend;
    if (blend < 0) {
      continue;
    }
    model.min_count = std::max(1, job.estimator->MinGpus(blend));
    model.max_count = std::min(job.spec->max_num_gpus, cluster.AvailableGpus());
    if (job.spec->adaptivity == AdaptivityMode::kRigid) {
      model.min_count = model.max_count = job.spec->rigid_num_gpus;
    }
    model.current_count = job.current_config.num_gpus;
    const double age = std::max(input.age_seconds(job), 1.0);
    const double restart_cost = std::max(job.restart_overhead_seconds, 0.0);
    model.restart_factor =
        std::clamp((age - job.num_restarts * restart_cost) / (age + restart_cost),
                   options_.min_restart_factor, 1.0);
  }
  auto goodput_of = [&](int i, int count, bool multi_node) {
    const JobModel& model = models[i];
    if (model.blend_type < 0 || count < model.min_count || count > model.max_count ||
        count % model.min_count != 0) {
      return 0.0;
    }
    const auto key = std::make_pair(count, multi_node);
    const auto it = model.cache.find(key);
    if (it != model.cache.end()) {
      return it->second;
    }
    const int nodes = multi_node ? std::max(2, (count + vnode - 1) / vnode) : 1;
    const Config shape{nodes, count, model.blend_type};
    const JobView& job = input.jobs[i];
    const BatchDecision decision =
        job.estimator->Estimate(shape, job.spec->adaptivity, job.spec->fixed_bsz);
    const double goodput = decision.feasible ? decision.goodput : 0.0;
    model.cache.emplace(key, goodput);
    return goodput;
  };
  // Pre-evaluate each job's baseline goodput -- the hottest estimator calls
  // of the round. Each index touches only models[i] (and its per-job memo
  // map), so fanning over jobs is race-free and the result is identical for
  // any thread count (ISSUE 3).
  const auto eval_base = [&](int i) {
    models[i].base_goodput = goodput_of(i, models[i].min_count, false);
  };
  const int threads = std::max(1, options_.num_threads);
  if (threads > 1 && num_jobs > 1) {
    if (pool_ == nullptr || pool_->num_threads() != threads) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    pool_->ParallelFor(num_jobs, eval_base);
  } else {
    for (int i = 0; i < num_jobs; ++i) {
      eval_base(i);
    }
  }

  // --- genome helpers ---
  auto job_count = [&](const Genome& genome, int i) {
    int total = 0;
    for (int n = 0; n < num_vnodes; ++n) {
      total += genome[static_cast<size_t>(i) * num_vnodes + n];
    }
    return total;
  };
  auto job_spread = [&](const Genome& genome, int i) {
    int nodes = 0;
    for (int n = 0; n < num_vnodes; ++n) {
      nodes += genome[static_cast<size_t>(i) * num_vnodes + n] > 0 ? 1 : 0;
    }
    return nodes;
  };
  auto repair = [&](Genome& genome) {
    // Node capacity: trim random genes on overloaded virtual nodes.
    for (int n = 0; n < num_vnodes; ++n) {
      int used = 0;
      for (int i = 0; i < num_jobs; ++i) {
        used += genome[static_cast<size_t>(i) * num_vnodes + n];
      }
      while (used > vnode) {
        const int i = static_cast<int>(rng_.UniformInt(0, num_jobs - 1));
        uint8_t& gene = genome[static_cast<size_t>(i) * num_vnodes + n];
        if (gene > 0) {
          --gene;
          --used;
        }
      }
    }
    // Per-job caps and granularity: shrink over-sized rows, clear rows that
    // violate the job's replica granularity / rigid count.
    for (int i = 0; i < num_jobs; ++i) {
      const JobModel& model = models[i];
      int count = job_count(genome, i);
      while (count > model.max_count) {
        for (int n = 0; n < num_vnodes && count > model.max_count; ++n) {
          uint8_t& gene = genome[static_cast<size_t>(i) * num_vnodes + n];
          if (gene > 0) {
            --gene;
            --count;
          }
        }
      }
      if (count > 0 && (count < model.min_count || count % model.min_count != 0)) {
        if (input.jobs[i].spec->adaptivity == AdaptivityMode::kRigid || count < model.min_count) {
          for (int n = 0; n < num_vnodes; ++n) {
            genome[static_cast<size_t>(i) * num_vnodes + n] = 0;
          }
        } else {
          int excess = count % model.min_count;
          for (int n = 0; n < num_vnodes && excess > 0; ++n) {
            uint8_t& gene = genome[static_cast<size_t>(i) * num_vnodes + n];
            const int take = std::min<int>(gene, excess);
            gene = static_cast<uint8_t>(gene - take);
            excess -= take;
          }
        }
      }
    }
  };
  const double p = options_.fairness_power;
  auto fitness = [&](const Genome& genome) {
    double sum = 0.0;
    for (int i = 0; i < num_jobs; ++i) {
      const JobModel& model = models[i];
      const int count = job_count(genome, i);
      // Preempting a running job is strictly worse than leaving a queued
      // job waiting (the running job loses checkpoint-restore time), so the
      // floors are asymmetric -- without this the GA churns allocations.
      double speedup = model.current_count > 0 ? 5e-4 : 1e-3;
      if (count > 0 && model.base_goodput > 0.0) {
        double goodput = goodput_of(i, count, job_spread(genome, i) > 1);
        if (count != model.current_count) {
          goodput *= model.restart_factor;
        }
        speedup = std::max(goodput / model.base_goodput, 1e-3);
      }
      sum += std::pow(speedup, p);
    }
    const double mean = sum / num_jobs;
    return p > 0 ? std::pow(mean, 1.0 / p) : -std::pow(mean, 1.0 / std::abs(p));
  };

  // --- population ---
  std::vector<Genome> population;
  Genome zero(genome_len, 0);
  // Seed 1: approximately the current allocation (counts packed greedily).
  Genome current = zero;
  {
    std::vector<int> free_gpus(num_vnodes, vnode);
    for (int i = 0; i < num_jobs; ++i) {
      int count = models[i].current_count;
      for (int n = 0; n < num_vnodes && count > 0; ++n) {
        const int take = std::min(count, free_gpus[n]);
        current[static_cast<size_t>(i) * num_vnodes + n] = static_cast<uint8_t>(take);
        free_gpus[n] -= take;
        count -= take;
      }
    }
    repair(current);
  }
  population.push_back(current);
  population.push_back(zero);
  // A quarter of the population starts as light mutations of the current
  // allocation (local search around the status quo).
  while (static_cast<int>(population.size()) < options_.population / 4) {
    Genome genome = current;
    for (int m = 0; m < 1 + num_jobs / 4; ++m) {
      const size_t g = static_cast<size_t>(rng_.UniformInt(0, genome_len - 1));
      genome[g] = static_cast<uint8_t>(rng_.UniformInt(0, vnode));
    }
    repair(genome);
    population.push_back(std::move(genome));
  }
  while (static_cast<int>(population.size()) < options_.population) {
    Genome genome(genome_len, 0);
    for (size_t g = 0; g < genome_len; ++g) {
      if (rng_.Bernoulli(0.25)) {
        genome[g] = static_cast<uint8_t>(rng_.UniformInt(0, vnode));
      }
    }
    repair(genome);
    population.push_back(std::move(genome));
  }
  std::vector<double> scores(population.size());
  for (size_t k = 0; k < population.size(); ++k) {
    scores[k] = fitness(population[k]);
  }

  for (int gen = 0; gen < options_.generations; ++gen) {
    std::vector<Genome> next;
    std::vector<double> next_scores;
    size_t best = 0;
    for (size_t k = 1; k < population.size(); ++k) {
      if (scores[k] > scores[best]) {
        best = k;
      }
    }
    next.push_back(population[best]);
    next_scores.push_back(scores[best]);
    // Keep the current allocation competitive (stability).
    next.push_back(current);
    next_scores.push_back(fitness(current));
    while (static_cast<int>(next.size()) < options_.population) {
      auto pick = [&]() -> const Genome& {
        const size_t a = static_cast<size_t>(rng_.UniformInt(0, population.size() - 1));
        const size_t b = static_cast<size_t>(rng_.UniformInt(0, population.size() - 1));
        return scores[a] >= scores[b] ? population[a] : population[b];
      };
      const Genome& mother = pick();
      const Genome& father = pick();
      Genome child(genome_len);
      // Job-row crossover keeps each job's placement coherent.
      for (int i = 0; i < num_jobs; ++i) {
        const Genome& source = rng_.Bernoulli(0.5) ? mother : father;
        std::copy_n(source.begin() + static_cast<size_t>(i) * num_vnodes, num_vnodes,
                    child.begin() + static_cast<size_t>(i) * num_vnodes);
      }
      // Point mutations on (job, node) genes -- 1-GPU steps, as in Pollux.
      const int mutations =
          1 + static_cast<int>(options_.mutation_rate * static_cast<double>(num_jobs));
      for (int m = 0; m < mutations; ++m) {
        const size_t g = static_cast<size_t>(rng_.UniformInt(0, genome_len - 1));
        child[g] = static_cast<uint8_t>(rng_.UniformInt(0, vnode));
      }
      repair(child);
      next.push_back(child);
      next_scores.push_back(fitness(next.back()));
    }
    population = std::move(next);
    scores = std::move(next_scores);
  }
  if (input.metrics != nullptr) {
    input.metrics->counter("scheduler.ga_generations")
        .Add(static_cast<uint64_t>(options_.generations));
    input.metrics->counter("scheduler.ga_genomes_evaluated")
        .Add(static_cast<uint64_t>(options_.generations) *
             static_cast<uint64_t>(options_.population));
  }

  size_t best = 0;
  for (size_t k = 1; k < population.size(); ++k) {
    if (scores[k] > scores[best]) {
      best = k;
    }
  }
  const Genome& winner = population[best];

  // --- local refinement: marginal-utility hill climbing on the GA winner ---
  // Pollux's converged GA approaches the fractional optimum; a stochastic GA
  // under a per-round time budget does not, so we polish its output with
  // greedy single-step GPU moves evaluated under the exact same objective
  // (restart discounts included, which keeps allocations stable).
  std::vector<int> final_counts(num_jobs);
  int used_gpus = 0;
  for (int i = 0; i < num_jobs; ++i) {
    final_counts[i] = job_count(winner, i);
    used_gpus += final_counts[i];
  }
  const int total_gpus = cluster.AvailableGpus();

  // Per-job ladder of valid counts.
  std::vector<std::vector<int>> ladder(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    const JobModel& model = models[i];
    ladder[i].push_back(0);
    if (model.blend_type < 0) {
      continue;
    }
    if (input.jobs[i].spec->adaptivity == AdaptivityMode::kRigid) {
      ladder[i].push_back(model.min_count);
      continue;
    }
    for (int c = model.min_count; c <= std::min(model.max_count, vnode);
         c += model.min_count) {
      ladder[i].push_back(c);
    }
    const int stride = std::max(vnode, model.min_count);
    for (int c = ((vnode / stride) + 1) * stride; c <= model.max_count; c += stride) {
      if (c % model.min_count == 0) {
        ladder[i].push_back(c);
      }
    }
  }
  auto ladder_pos = [&](int i, int count) {
    const auto it = std::find(ladder[i].begin(), ladder[i].end(), count);
    return it == ladder[i].end() ? -1 : static_cast<int>(it - ladder[i].begin());
  };
  // Snap GA counts onto the ladder (round down).
  for (int i = 0; i < num_jobs; ++i) {
    if (ladder_pos(i, final_counts[i]) >= 0) {
      continue;
    }
    int snapped = 0;
    for (int c : ladder[i]) {
      if (c <= final_counts[i]) {
        snapped = c;
      }
    }
    used_gpus += snapped - final_counts[i];
    final_counts[i] = snapped;
  }
  const double sign = p > 0 ? 1.0 : -1.0;
  auto term = [&](int i, int count) {
    const JobModel& model = models[i];
    double speedup = model.current_count > 0 ? 5e-4 : 1e-3;
    if (count > 0 && model.base_goodput > 0.0) {
      double goodput = goodput_of(i, count, count > vnode);
      if (count != model.current_count) {
        goodput *= model.restart_factor;
      }
      speedup = std::max(goodput / model.base_goodput, 1e-3);
    }
    return sign * std::pow(speedup, p);
  };
  for (int iter = 0; iter < 400; ++iter) {
    // Best single up-move per free GPU, and cheapest down-move per GPU.
    int best_up = -1;
    double best_up_gain = 0.0;
    int best_up_next = 0;
    for (int i = 0; i < num_jobs; ++i) {
      const int pos = ladder_pos(i, final_counts[i]);
      if (pos < 0 || pos + 1 >= static_cast<int>(ladder[i].size())) {
        continue;
      }
      const int next = ladder[i][pos + 1];
      const double gain =
          (term(i, next) - term(i, final_counts[i])) / (next - final_counts[i]);
      if (gain > best_up_gain) {
        best_up_gain = gain;
        best_up = i;
        best_up_next = next;
      }
    }
    if (best_up < 0) {
      break;
    }
    const int need = best_up_next - final_counts[best_up];
    if (used_gpus + need <= total_gpus) {
      used_gpus += need;
      final_counts[best_up] = best_up_next;
      continue;
    }
    // Fund the move by shrinking the job with the smallest per-GPU loss.
    int best_down = -1;
    double best_down_loss = best_up_gain;  // Must lose less than we gain.
    int best_down_next = 0;
    for (int j = 0; j < num_jobs; ++j) {
      if (j == best_up) {
        continue;
      }
      const int pos = ladder_pos(j, final_counts[j]);
      if (pos <= 0) {
        continue;
      }
      const int next = ladder[j][pos - 1];
      const double loss =
          (term(j, final_counts[j]) - term(j, next)) / (final_counts[j] - next);
      if (loss < best_down_loss) {
        best_down_loss = loss;
        best_down = j;
        best_down_next = next;
      }
    }
    if (best_down < 0) {
      break;
    }
    used_gpus -= final_counts[best_down] - best_down_next;
    final_counts[best_down] = best_down_next;
    if (used_gpus + need <= total_gpus) {
      used_gpus += need;
      final_counts[best_up] = best_up_next;
    }
  }

  // --- map type-blind counts onto single GPU types (fix heuristic, §4.3) ---
  std::vector<int> free_gpus(cluster.num_gpu_types());
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    free_gpus[t] = cluster.AvailableGpus(t);  // Live capacity only.
  }
  std::vector<int> order(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return final_counts[a] > final_counts[b];
  });
  for (int i : order) {
    int count = final_counts[i];
    if (count <= 0) {
      continue;
    }
    const JobView& job = input.jobs[i];
    // Stickiness first: keep the current GPU type when it still fits, then
    // the most-free type (ties by GPU power).
    int chosen_type = -1;
    const int current_type =
        job.current_config.num_gpus > 0 ? job.current_config.gpu_type : -1;
    if (current_type >= 0 && job.estimator->TypeAvailable(current_type) &&
        free_gpus[current_type] >= std::min(count, free_gpus[current_type]) &&
        free_gpus[current_type] >= job.estimator->MinGpus(current_type)) {
      chosen_type = current_type;
    }
    if (chosen_type < 0) {
      for (int t = 0; t < cluster.num_gpu_types(); ++t) {
        if (!job.estimator->TypeAvailable(t)) {
          continue;
        }
        const int min_gpus = job.estimator->MinGpus(t);
        if (free_gpus[t] < min_gpus) {
          continue;
        }
        if (chosen_type < 0 || free_gpus[t] > free_gpus[chosen_type] ||
            (free_gpus[t] == free_gpus[chosen_type] &&
             GpuPowerRank(cluster.gpu_type(t).name) >
                 GpuPowerRank(cluster.gpu_type(chosen_type).name))) {
          chosen_type = t;
        }
      }
    }
    if (chosen_type < 0) {
      continue;
    }
    count = std::min(count, free_gpus[chosen_type]);
    const int min_gpus = std::max(job.estimator->MinGpus(chosen_type), 1);
    count -= count % min_gpus;
    std::optional<Config> shape;
    while (count >= min_gpus &&
           !(shape = ShapeForCount(cluster, chosen_type, count, /*allow_partial_nodes=*/true))) {
      count -= min_gpus;  // Idle leftover GPUs rather than span types (§4.3).
    }
    if (!shape) {
      continue;
    }
    if (job.spec->adaptivity == AdaptivityMode::kRigid &&
        shape->num_gpus != job.spec->rigid_num_gpus) {
      continue;  // Rigid jobs run at their exact GPU count or not at all.
    }
    if (shape->num_nodes > 1) {
      // Pollux placements may scatter across partially-free nodes (no
      // dedicated-whole-node rule, unlike Sia's configurations).
      shape->scatter = true;
    }
    free_gpus[chosen_type] -= shape->num_gpus;
    output[job.spec->id] = *shape;
  }
  return output;
}

}  // namespace sia
