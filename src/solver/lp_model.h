// Linear-program model builder shared by the LP (simplex) and MILP
// (branch-and-bound) solvers.
//
// Variables carry box bounds [lower, upper] (possibly infinite) and an
// objective coefficient; constraints are sparse rows with <=, >=, or ==
// against a right-hand side. Sia's scheduling ILP (Eq. 4/5 of the paper) and
// Gavel's max-sum-throughput LP are both expressed through this interface.
#ifndef SIA_SRC_SOLVER_LP_MODEL_H_
#define SIA_SRC_SOLVER_LP_MODEL_H_

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace sia {

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

enum class ObjectiveSense { kMaximize, kMinimize };

enum class ConstraintOp { kLessEq, kGreaterEq, kEqual };

// One sparse term: (variable index, coefficient).
using LpTerm = std::pair<int, double>;

// Trivially copyable twin of LpTerm for arena-backed row builders
// (ArenaVector requires trivially copyable elements; std::pair is not).
struct LpEntry {
  int var;
  double coeff;
};

class LinearProgram {
 public:
  explicit LinearProgram(ObjectiveSense sense = ObjectiveSense::kMaximize) : sense_(sense) {}

  // Adds a variable and returns its index.
  int AddVariable(double lower, double upper, double objective, std::string name = "");

  // Adds a binary {0,1} variable (only meaningful to MILP; LP treats it as
  // a [0,1] continuous variable).
  int AddBinaryVariable(double objective, std::string name = "");

  // Adds a sparse constraint row; duplicate variable indices are allowed and
  // are summed. Returns the row index.
  int AddConstraint(ConstraintOp op, double rhs, std::vector<LpTerm> terms,
                    std::string name = "");
  // Copy-free variant for hot builders (ISSUE 8): terms come from caller
  // scratch (e.g. an arena) and the merged row reuses the heap the slot held
  // before the last Reset(). Produces bit-identical rows to the vector
  // overload.
  int AddConstraint(ConstraintOp op, double rhs, const LpEntry* terms, size_t num_terms,
                    std::string name = "");

  // Clears the program for an in-place rebuild while keeping every
  // container's heap capacity (including per-row term storage), so a
  // scheduler that rebuilds a same-shaped program every round performs no
  // steady-state allocations here.
  void Reset(ObjectiveSense sense);

  void SetObjectiveSense(ObjectiveSense sense) { sense_ = sense; }
  ObjectiveSense objective_sense() const { return sense_; }

  void SetObjectiveCoefficient(int var, double coeff);
  void SetVariableBounds(int var, double lower, double upper);
  // Marks a variable as integral for the MILP solver.
  void SetInteger(int var, bool is_integer = true);

  int num_variables() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }

  double lower_bound(int var) const { return lower_[var]; }
  double upper_bound(int var) const { return upper_[var]; }
  double objective_coefficient(int var) const { return objective_[var]; }
  bool is_integer(int var) const { return integer_[var]; }
  const std::string& variable_name(int var) const { return var_names_[var]; }

  ConstraintOp constraint_op(int row) const { return ops_[row]; }
  double rhs(int row) const { return rhs_[row]; }
  const std::vector<LpTerm>& row_terms(int row) const { return rows_[row]; }

 private:
  int SealConstraint(ConstraintOp op, double rhs, std::string name);

  ObjectiveSense sense_;
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<bool> integer_;
  std::vector<std::string> var_names_;
  std::vector<std::vector<LpTerm>> rows_;
  std::vector<ConstraintOp> ops_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNodeLimit,
  // MILP wall-clock budget exhausted; the incumbent (if any) is returned.
  kTimeLimit,
};

const char* ToString(SolveStatus status);

// Variable-state snapshot of a simplex basis, used to warm-start re-solves
// (ISSUE 3): `state[j]` covers the structural variables first, then one slack
// per constraint row (size = num_variables + num_constraints). A basis is
// usable as a hint only when exactly num_constraints entries are kBasic; the
// solver validates the hint (size, basic count, non-singularity, primal
// feasibility under the *current* bounds) and silently falls back to its
// cold crash basis when any check fails, so a stale hint can never change
// the solve result -- only its pivot count.
struct SimplexBasis {
  enum State : uint8_t {
    kBasic = 0,
    kAtLower = 1,
    kAtUpper = 2,
    kFree = 3,  // Nonbasic free variable resting at zero.
  };
  std::vector<uint8_t> state;

  bool empty() const { return state.empty(); }
};

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // One entry per variable.
  std::vector<double> duals;   // One entry per constraint (simplex multipliers).
  int iterations = 0;
  // True when a SimplexOptions::warm_basis hint passed validation and phase 1
  // was skipped entirely.
  bool warm_started = false;
  // True when the optimal basis is certifiably the *only* optimal basis:
  // every movable nonbasic variable has a reduced cost strictly away from
  // zero and no basic variable sits on a bound. Any solve path -- warm or
  // cold -- must then terminate at this exact basis, which is what lets a
  // MILP accept a cross-round warm basis without risking a different
  // answer. Only computed for kOptimal solves.
  bool unique_optimal_basis = false;
  // Weaker certificate: the optimal *solution vector* is unique, even if
  // several bases represent it (primal degeneracy). Strictly nonzero
  // reduced costs on every movable nonbasic variable imply any feasible
  // move strictly worsens the objective, so every correct solve terminates
  // at this vertex -- possibly via a different basis, whose recomputed
  // basic values can differ in the last bits. Consumers that need
  // byte-identical answers across solve paths must therefore pair this
  // with a canonical, basis-independent rounding of the values (see
  // SolveMilp's integral-root snap). Only computed for kOptimal solves.
  bool unique_optimal_solution = false;
  // Final basis (populated when SimplexOptions::capture_basis is set and the
  // solve ended kOptimal with no artificial variable left in the basis).
  SimplexBasis basis;
};

}  // namespace sia

#endif  // SIA_SRC_SOLVER_LP_MODEL_H_
