// Branch-and-bound MILP solver on top of the revised-simplex LP solver.
//
// Sia's scheduling problem (Eq. 4/5) is a binary program whose LP relaxation
// is near-integral (one GUB row per job plus one knapsack row per GPU type),
// so best-first branch-and-bound (highest LP bound popped first, depth as a
// diving tie-break) terminates in a handful of nodes in practice. Node
// relaxations reuse the parent's simplex basis, and a whole solve can be
// warm-started from the previous scheduling round via MilpWarmStart.
#ifndef SIA_SRC_SOLVER_MILP_H_
#define SIA_SRC_SOLVER_MILP_H_

#include <cstdint>

#include "src/common/binary_codec.h"
#include "src/solver/incremental_lp.h"
#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace sia {

class ScratchArena;

// Cross-solve warm-start state (ISSUE 3). A scheduler keeps the
// `next_warm_start` returned by round N and feeds it into round N+1's
// MilpOptions; everything in it is a hint, re-validated against the new
// program before use, so a stale or mismatched warm start can never change
// the solve result -- only its cost.
struct MilpWarmStart {
  // Previous incumbent. Deliberately NOT used to prune the new search: with
  // a nonzero relative_gap, pruning against a hint-supplied incumbent can
  // steer branch-and-bound to a different near-optimal answer than a cold
  // solve. It is only returned as a fallback when the search itself ends
  // with no incumbent (so the sole result-visible effect is turning a
  // failed solve into a feasible answer).
  std::vector<double> incumbent_values;
  // Root-LP optimal basis of the previous solve, used to skip phase 1. Only
  // populated when that root's answer was canonical: a certified-unique
  // optimal basis (LpSolution::unique_optimal_basis), or a certified-unique
  // optimal *solution* snapped to its integral vertex (the degenerate but
  // dominant case for Sia's scheduling LPs). The warm root result is
  // likewise kept only when the *new* root re-certifies -- i.e. when a cold
  // solve provably reports the same values and objective. Otherwise the
  // root is (re-)solved cold so the hint cannot steer the search to a
  // different near-optimal answer.
  SimplexBasis basis;
  // Root-LP pivot count of the most recent *cold* solve in this chain;
  // carried forward across warm rounds as the baseline for the
  // pivots-saved estimate.
  int cold_root_iterations = 0;
  // Structure fingerprint (LpStructureFingerprint) of the program `basis`
  // was captured from. An IncrementalLp session rebuilt from this warm
  // start (checkpoint restore) only installs the basis when the new
  // program's fingerprint matches -- the same test the live session applies
  // to its retained state, which keeps resumed pivot counts identical.
  uint64_t lp_fingerprint = 0;

  bool empty() const { return incumbent_values.empty() && basis.empty(); }
};

struct MilpOptions {
  SimplexOptions simplex;
  // Optional warm start from a previous solve of a near-identical program.
  // Not owned; must outlive the solve.
  const MilpWarmStart* warm_start = nullptr;
  // Stop exploring once this many branch-and-bound nodes were solved.
  int max_nodes = 50000;
  // Wall-clock budget for the whole solve; <= 0 means unlimited. When the
  // budget expires the best incumbent found so far is returned with status
  // kTimeLimit (values empty if no incumbent exists yet).
  double time_limit_seconds = 0.0;
  // Accept an incumbent within this relative gap of the best bound.
  double relative_gap = 1e-6;
  // Integrality tolerance.
  double integrality_tol = 1e-6;
  // Optional persistent incremental session (ISSUE 8). When set, the root
  // relaxation is solved through the session -- retained factorization plus
  // dual-simplex re-solve, gated so only a certifiably from-scratch-equal
  // answer is accepted -- and every node LP reuses the session's engine
  // scratch. Not owned; must outlive the solve and must not be shared
  // across threads.
  IncrementalLp* session = nullptr;
  // Optional arena for branch-and-bound node state (override chains, basis
  // snapshots, the node heap). Callers solving every round (the scheduler)
  // pass their per-round arena so steady-state solves allocate nothing;
  // when null, a solve-local arena is used. Not owned; must not be shared
  // across threads.
  ScratchArena* arena = nullptr;
  // Enables a packing-aware rounding heuristic that builds an incumbent
  // from every LP relaxation. Safe (and automatically verified) only for
  // programs where all constraints are <= with non-negative coefficients on
  // integer variables, so rounding down is always feasible -- exactly the
  // shape of Sia's scheduling ILP. Ignored (with no effect) otherwise.
  bool packing_rounding = true;
};

struct MilpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  int nodes_explored = 0;
  // Simplex pivots summed over every node relaxation -- the solver-effort
  // signal the observability layer reports per scheduling round (Fig. 9).
  int lp_iterations = 0;
  // Node relaxations that accepted a warm basis (phase 1 skipped).
  int warm_started_lps = 0;
  // Estimated pivots avoided by warm starts: for every warm-started node LP,
  // max(0, cold_root_iterations - pivots actually used). An estimate -- the
  // exact number requires re-solving cold, which bench_solver_micro does.
  long long warm_start_pivots_saved = 0;
  // Dual-simplex pivots spent restoring primal feasibility across node
  // re-solves (child bound changes and incremental root deltas).
  long long dual_pivots = 0;
  // Node LPs that had no reusable basis (or whose re-solve attempt was
  // rejected) and fell back to a cold two-phase solve.
  int cold_node_solves = 0;
  // State to feed into the next round's MilpOptions::warm_start.
  MilpWarmStart next_warm_start;
};

// Solves `lp` honoring the integrality markers set via SetInteger /
// AddBinaryVariable.
MilpSolution SolveMilp(const LinearProgram& lp, const MilpOptions& options = {});

// Snapshot support (ISSUE 5): a scheduler checkpointed between rounds must
// carry its MilpWarmStart across the restart, because warm-started solves
// report different lp_iterations/warm_started_lps metrics than cold ones --
// dropping the hint would break byte-identical resumed traces. Everything in
// a warm start is already re-validated against the new program at use time,
// so a restored hint is exactly as safe as a live one.
void SaveWarmStart(BinaryWriter& w, const MilpWarmStart& warm);
bool RestoreWarmStart(BinaryReader& r, MilpWarmStart* warm);

}  // namespace sia

#endif  // SIA_SRC_SOLVER_MILP_H_
