// Branch-and-bound MILP solver on top of the revised-simplex LP solver.
//
// Sia's scheduling problem (Eq. 4/5) is a binary program whose LP relaxation
// is near-integral (one GUB row per job plus one knapsack row per GPU type),
// so depth-first branch-and-bound with best-first tie-breaking terminates in
// a handful of nodes in practice.
#ifndef SIA_SRC_SOLVER_MILP_H_
#define SIA_SRC_SOLVER_MILP_H_

#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace sia {

struct MilpOptions {
  SimplexOptions simplex;
  // Stop exploring once this many branch-and-bound nodes were solved.
  int max_nodes = 50000;
  // Wall-clock budget for the whole solve; <= 0 means unlimited. When the
  // budget expires the best incumbent found so far is returned with status
  // kTimeLimit (values empty if no incumbent exists yet).
  double time_limit_seconds = 0.0;
  // Accept an incumbent within this relative gap of the best bound.
  double relative_gap = 1e-6;
  // Integrality tolerance.
  double integrality_tol = 1e-6;
  // Enables a packing-aware rounding heuristic that builds an incumbent
  // from every LP relaxation. Safe (and automatically verified) only for
  // programs where all constraints are <= with non-negative coefficients on
  // integer variables, so rounding down is always feasible -- exactly the
  // shape of Sia's scheduling ILP. Ignored (with no effect) otherwise.
  bool packing_rounding = true;
};

struct MilpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  int nodes_explored = 0;
  // Simplex pivots summed over every node relaxation -- the solver-effort
  // signal the observability layer reports per scheduling round (Fig. 9).
  int lp_iterations = 0;
};

// Solves `lp` honoring the integrality markers set via SetInteger /
// AddBinaryVariable.
MilpSolution SolveMilp(const LinearProgram& lp, const MilpOptions& options = {});

}  // namespace sia

#endif  // SIA_SRC_SOLVER_MILP_H_
