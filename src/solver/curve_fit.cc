#include "src/solver/curve_fit.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace sia {
namespace {

double SumSquares(const std::vector<double>& r) {
  double total = 0.0;
  for (double v : r) {
    total += v * v;
  }
  return total;
}

// Solves the symmetric positive-definite-ish system M x = b in place via
// Gaussian elimination with partial pivoting. Returns false if singular.
bool SolveDense(std::vector<double> m, std::vector<double> b, int n, std::vector<double>& x) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::abs(m[static_cast<size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double cand = std::abs(m[static_cast<size_t>(r) * n + col]);
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return false;
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(m[static_cast<size_t>(pivot) * n + c], m[static_cast<size_t>(col) * n + c]);
      }
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / m[static_cast<size_t>(col) * n + col];
    for (int r = 0; r < n; ++r) {
      if (r == col) {
        continue;
      }
      const double factor = m[static_cast<size_t>(r) * n + col] * inv;
      if (factor == 0.0) {
        continue;
      }
      for (int c = col; c < n; ++c) {
        m[static_cast<size_t>(r) * n + c] -= factor * m[static_cast<size_t>(col) * n + c];
      }
      b[r] -= factor * b[col];
    }
  }
  x.resize(n);
  for (int i = 0; i < n; ++i) {
    x[i] = b[i] / m[static_cast<size_t>(i) * n + i];
  }
  return true;
}

}  // namespace

CurveFitResult FitLeastSquares(const ResidualFn& residual_fn, std::vector<double> initial,
                               const std::vector<double>& lower, const std::vector<double>& upper,
                               const CurveFitOptions& options) {
  const int p = static_cast<int>(initial.size());
  SIA_CHECK(lower.size() == initial.size() && upper.size() == initial.size());

  auto project = [&](std::vector<double>& params) {
    for (int i = 0; i < p; ++i) {
      params[i] = std::clamp(params[i], lower[i], upper[i]);
    }
  };
  project(initial);

  CurveFitResult result;
  result.params = initial;

  std::vector<double> residuals;
  residual_fn(result.params, residuals);
  double cost = SumSquares(residuals);
  result.cost = cost;
  const int num_residuals = static_cast<int>(residuals.size());
  if (num_residuals == 0 || p == 0) {
    result.converged = true;
    return result;
  }

  double lambda = options.initial_lambda;
  std::vector<double> jacobian(static_cast<size_t>(num_residuals) * p);
  std::vector<double> perturbed_residuals;
  std::vector<double> trial_params;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Forward-difference Jacobian, respecting bounds by stepping inward when
    // a parameter sits on its upper bound.
    for (int j = 0; j < p; ++j) {
      double step = options.jacobian_step * std::max(1.0, std::abs(result.params[j]));
      trial_params = result.params;
      if (trial_params[j] + step > upper[j]) {
        step = -step;
      }
      trial_params[j] += step;
      project(trial_params);
      const double actual_step = trial_params[j] - result.params[j];
      residual_fn(trial_params, perturbed_residuals);
      SIA_CHECK(static_cast<int>(perturbed_residuals.size()) == num_residuals)
          << "residual count changed during fit";
      if (actual_step == 0.0) {
        for (int i = 0; i < num_residuals; ++i) {
          jacobian[static_cast<size_t>(i) * p + j] = 0.0;
        }
        continue;
      }
      const double inv_step = 1.0 / actual_step;
      for (int i = 0; i < num_residuals; ++i) {
        jacobian[static_cast<size_t>(i) * p + j] =
            (perturbed_residuals[i] - residuals[i]) * inv_step;
      }
    }

    // Normal equations: (JtJ + lambda * diag(JtJ)) delta = -Jt r.
    std::vector<double> jtj(static_cast<size_t>(p) * p, 0.0);
    std::vector<double> jtr(p, 0.0);
    for (int i = 0; i < num_residuals; ++i) {
      const double* row = &jacobian[static_cast<size_t>(i) * p];
      for (int a = 0; a < p; ++a) {
        jtr[a] += row[a] * residuals[i];
        for (int b = a; b < p; ++b) {
          jtj[static_cast<size_t>(a) * p + b] += row[a] * row[b];
        }
      }
    }
    for (int a = 0; a < p; ++a) {
      for (int b = 0; b < a; ++b) {
        jtj[static_cast<size_t>(a) * p + b] = jtj[static_cast<size_t>(b) * p + a];
      }
    }

    bool improved = false;
    for (int attempt = 0; attempt < 12; ++attempt) {
      std::vector<double> damped = jtj;
      for (int a = 0; a < p; ++a) {
        const double diag = jtj[static_cast<size_t>(a) * p + a];
        damped[static_cast<size_t>(a) * p + a] += lambda * std::max(diag, 1e-12);
      }
      std::vector<double> neg_jtr(p);
      for (int a = 0; a < p; ++a) {
        neg_jtr[a] = -jtr[a];
      }
      std::vector<double> delta;
      if (!SolveDense(damped, neg_jtr, p, delta)) {
        lambda *= 10.0;
        continue;
      }
      trial_params = result.params;
      for (int a = 0; a < p; ++a) {
        trial_params[a] += delta[a];
      }
      project(trial_params);
      residual_fn(trial_params, perturbed_residuals);
      const double trial_cost = SumSquares(perturbed_residuals);
      if (trial_cost < cost) {
        const double improvement = (cost - trial_cost) / std::max(cost, 1e-300);
        result.params = trial_params;
        residuals = perturbed_residuals;
        cost = trial_cost;
        lambda = std::max(lambda * 0.3, 1e-12);
        improved = true;
        if (improvement < options.relative_tol) {
          result.converged = true;
          result.cost = cost;
          return result;
        }
        break;
      }
      lambda *= 10.0;
    }
    if (!improved) {
      result.converged = true;  // Local minimum within damping budget.
      break;
    }
  }

  result.cost = cost;
  return result;
}

}  // namespace sia
