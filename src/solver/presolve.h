// LP presolve: reductions applied before the simplex that shrink the
// problem without changing its optimum. Standard techniques:
//   * fixed variables (lower == upper) are substituted into rows/objective,
//   * empty constraints are checked for trivial feasibility and dropped,
//   * singleton rows (one variable) become bound tightenings,
//   * redundant rows (satisfied for every point in the variable box) drop.
// The result maps back to a solution of the original program.
//
// Opt-in: Sia's scheduling LPs are already compact, so the solvers do not
// call this implicitly; it is provided for larger/looser models built on
// the same LinearProgram interface.
#ifndef SIA_SRC_SOLVER_PRESOLVE_H_
#define SIA_SRC_SOLVER_PRESOLVE_H_

#include <vector>

#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace sia {

struct PresolveResult {
  // True when presolve alone proved the program infeasible.
  bool proven_infeasible = false;
  // The reduced program (valid only when !proven_infeasible).
  LinearProgram reduced;
  // Mapping: original variable -> reduced-program variable index, or -1 if
  // the variable was eliminated (its value is in fixed_values).
  std::vector<int> variable_map;
  std::vector<double> fixed_values;  // Per original variable; used when map == -1.
  // Constant objective contribution of eliminated variables.
  double objective_offset = 0.0;
  int rows_removed = 0;
  int variables_removed = 0;
};

// Runs the reductions to a fixed point (bounded passes).
PresolveResult PresolveLp(const LinearProgram& lp);

// Expands a reduced-program solution back to the original variable space
// and recomputes the objective in original terms.
LpSolution PostsolveLp(const LinearProgram& original, const PresolveResult& presolve,
                       const LpSolution& reduced_solution);

// Convenience: presolve, solve, postsolve.
LpSolution SolveLpWithPresolve(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace sia

#endif  // SIA_SRC_SOLVER_PRESOLVE_H_
