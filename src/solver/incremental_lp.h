// Incremental LP session (ISSUE 8): persists one SimplexEngine -- sparse
// columns, the factorized dense basis inverse, and the optimal basis --
// across scheduling rounds, so a round whose LP has the same *structure* as
// the previous one (same rows, same sparsity pattern, same coefficients) is
// re-solved by applying parameter deltas (objective, bounds, rhs) and
// running the dual simplex phase from the previous optimal basis instead of
// rebuilding and running primal phase 1.
//
// Byte-identity contract. An incremental answer may only stand when it is
// *provably* the one a from-scratch solve produces:
//   * the re-solve reaches kOptimal with a certified-unique optimal basis
//     (every correct solve of the program lands on that basis), or with a
//     certified-unique optimal *solution* at an integral vertex whose values
//     were snapped to their canonical bound pattern (see SolveMilp's
//     SnapIntegralRoot -- the dominant case for Sia's degenerate scheduling
//     LPs), or proves the program infeasible from a verified dual-feasible
//     basis (the same answer phase 1 gives);
//   * anything else -- structural mismatch, rejected basis, dual-phase
//     stall, uncertified optimum -- falls back to an engine reload plus
//     SolveFresh(), which IS the from-scratch path, with the pivots burned
//     on the failed attempt counted into the reported iteration total.
// The gate itself lives in SolveMilp (it needs the snap result); the session
// exposes the attempt / accept / cold-fallback steps separately.
// Since the engine canonicalizes + refactorizes at every optimum, its kept
// state is a pure function of (program, basis set), never of the pivot path
// -- which is also what makes a session rebuilt from a serialized basis
// (crash/resume) replay the exact pivot sequence of the live session it
// replaces.
#ifndef SIA_SRC_SOLVER_INCREMENTAL_LP_H_
#define SIA_SRC_SOLVER_INCREMENTAL_LP_H_

#include <cstdint>

#include "src/solver/simplex.h"

namespace sia {

// FNV-1a hash of the LP's *structure*: dimensions, constraint ops, sparsity
// pattern, constraint coefficients, and integrality markers. Deliberately
// excludes objective, bounds, and rhs -- those are the parameters the
// session deltas in place. Two LPs with equal fingerprints are re-solvable
// through the same engine load.
uint64_t LpStructureFingerprint(const LinearProgram& lp);

struct IncrementalLpStats {
  long long root_solves = 0;           // TryIncrementalRoot calls.
  long long incremental_roots = 0;     // Answered from a re-used basis.
  long long cold_fallbacks = 0;        // Attempted re-use, fell back cold.
  long long structure_mismatches = 0;  // Fingerprint change forced a reload.
  long long dual_pivots = 0;           // Dual-simplex pivots across roots.
  long long discarded_pivots = 0;      // Pivots burned on rejected attempts.
};

class IncrementalLp {
 public:
  IncrementalLp() = default;
  IncrementalLp(const IncrementalLp&) = delete;
  IncrementalLp& operator=(const IncrementalLp&) = delete;

  // The persistent engine; branch-and-bound child nodes solve directly on
  // it (bound overrides + InstallBasis/ResolveFromBasis), calling
  // MarkEngineDirty() so FinalizeRound knows to reinstall the root basis.
  SimplexEngine& engine() { return engine_; }

  // Step 1 of a root solve: attempts the incremental path. Prefers the
  // retained basis (when the structure fingerprint matches), then a
  // caller-provided serialized basis `hint` stamped with the fingerprint of
  // the LP it was captured from (the crash/resume path). Returns true with
  // `solution` filled in when a re-solve completed; the caller then
  // evaluates the byte-identity gate and either calls AcceptRoot() or
  // discards the answer and calls ColdRoot(). Returns false when no
  // incremental attempt was possible (or the attempt aborted mid-flight) --
  // the caller must then call ColdRoot(). `options` should carry no
  // warm_basis; capture_basis is forced on.
  bool TryIncrementalRoot(const LinearProgram& lp, const SimplexOptions& options,
                          const SimplexBasis* hint, uint64_t hint_fingerprint,
                          LpSolution* solution);

  // Step 2a: the caller's gate accepted the TryIncrementalRoot answer.
  void AcceptRoot();

  // Step 2b: from-scratch path -- fresh engine load + cold primal two-phase
  // solve, exactly what a session-less caller runs. `rejected_iterations`
  // carries the pivot count of a gate-rejected TryIncrementalRoot answer
  // (0 if none); together with pivots burned on an aborted attempt it is
  // folded into the returned iteration total so solver-effort metrics stay
  // honest, and accounted as a cold fallback when an attempt was made.
  LpSolution ColdRoot(const LinearProgram& lp, const SimplexOptions& options,
                      int rejected_iterations);

  // Child node solves pivot the engine away from the root state.
  void MarkEngineDirty() { engine_dirty_ = true; }

  // Ends the round: retains the session for the next round iff the final
  // root optimum passed the byte-identity gate (`root_retainable`) and
  // exported a basis -- the exact rule governing MilpWarmStart basis
  // export, so a live session and one rebuilt from the serialized warm
  // start agree on whether reuse happens. If children dirtied the engine,
  // the root basis is reinstalled.
  void FinalizeRound(const SimplexBasis& root_basis, bool root_retainable);

  // Drops the retained basis; the next root solve reloads cold. Parameter
  // state and heap capacity survive. Call on any out-of-band break
  // (checkpoint restore, estimator refit changing the LP shape, ...).
  void Invalidate();

  bool retained() const { return retained_; }
  uint64_t fingerprint() const { return fingerprint_; }
  const IncrementalLpStats& stats() const { return stats_; }

 private:
  // Copies the LP's objective, variable bounds, and rhs into the loaded
  // engine -- the full parameter delta for a structure-identical round.
  void ApplyParameters(const LinearProgram& lp);

  SimplexEngine engine_;
  bool retained_ = false;
  bool engine_dirty_ = false;
  uint64_t fingerprint_ = 0;
  // Between TryIncrementalRoot and AcceptRoot/ColdRoot: whether an
  // incremental attempt ran, the pivots it burned if it aborted, and the
  // new program's fingerprint (ColdRoot adopts it on reload).
  bool pending_attempted_ = false;
  int pending_discarded_ = 0;
  uint64_t pending_fingerprint_ = 0;
  IncrementalLpStats stats_;
};

}  // namespace sia

#endif  // SIA_SRC_SOLVER_INCREMENTAL_LP_H_
