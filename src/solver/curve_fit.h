// Box-constrained Levenberg-Marquardt nonlinear least squares.
//
// Used by the goodput estimator to fit per-(job, GPU-type) throughput-model
// parameters (alpha/beta compute and sync terms, gamma overlap exponent) to
// the iteration-time observations collected by the Adaptive Executors.
#ifndef SIA_SRC_SOLVER_CURVE_FIT_H_
#define SIA_SRC_SOLVER_CURVE_FIT_H_

#include <functional>
#include <vector>

namespace sia {

struct CurveFitOptions {
  int max_iterations = 200;
  // Stop when the relative cost improvement falls below this.
  double relative_tol = 1e-10;
  double initial_lambda = 1e-3;
  // Forward-difference step scale for the numeric Jacobian.
  double jacobian_step = 1e-6;
};

struct CurveFitResult {
  std::vector<double> params;
  double cost = 0.0;  // Final sum of squared residuals.
  int iterations = 0;
  bool converged = false;
};

// Computes residuals r(params); the fitter minimizes sum r_i^2.
using ResidualFn =
    std::function<void(const std::vector<double>& params, std::vector<double>& residuals)>;

// Minimizes ||r(p)||^2 over the box [lower, upper] starting from `initial`.
// `lower`/`upper` must match `initial` in size; use +-infinity for
// unconstrained parameters. Bounds are enforced by projection.
CurveFitResult FitLeastSquares(const ResidualFn& residual_fn, std::vector<double> initial,
                               const std::vector<double>& lower, const std::vector<double>& upper,
                               const CurveFitOptions& options = {});

}  // namespace sia

#endif  // SIA_SRC_SOLVER_CURVE_FIT_H_
