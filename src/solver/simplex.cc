#include "src/solver/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "src/common/check.h"

namespace sia {
namespace {

enum class VarState : uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kNonbasicFree,  // Free variable resting at zero.
};

struct SparseColumn {
  std::vector<int> rows;
  std::vector<double> values;
};

// Internal solver working over the maximize form. All constraints are turned
// into equalities via one slack per row; artificial variables are appended
// on demand for phase 1.
class SimplexSolver {
 public:
  SimplexSolver(const LinearProgram& lp, const SimplexOptions& options);

  LpSolution Solve();

 private:
  // --- setup ---
  void BuildColumns(const LinearProgram& lp);
  void InitializeBasis();
  // Attempts to install `hint` as the starting basis. On success the solver
  // is primal-feasible and phase 1 can be skipped entirely. On failure the
  // working state is garbage and the caller must run InitializeBasis().
  bool TryWarmBasis(const SimplexBasis& hint);

  // --- iteration machinery ---
  // Runs simplex pivots until optimal w.r.t. `cost_` or a limit is reached.
  // Returns the termination status for the current phase.
  SolveStatus Iterate();
  void ComputeDuals(std::vector<double>& y) const;
  double ReducedCost(int var, const std::vector<double>& y) const;
  void ComputeDirection(int var, std::vector<double>& w) const;
  void Refactorize();
  bool TryRefactorize();
  void RecomputeBasicValues();
  void CaptureBasis(LpSolution& solution) const;

  bool CertifyUniqueOptimalBasis() const;

  double LowerOf(int var) const { return lower_[var]; }
  double UpperOf(int var) const { return upper_[var]; }

  int num_total() const { return static_cast<int>(columns_.size()); }

  const LinearProgram& lp_;
  SimplexOptions options_;
  int m_ = 0;               // Number of rows.
  int n_structural_ = 0;    // Number of original variables.
  int first_artificial_ = 0;
  double sense_sign_ = 1.0;  // +1 maximize, -1 minimize (applied to costs).

  std::vector<SparseColumn> columns_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;        // Active phase cost.
  std::vector<double> phase2_cost_; // Original (sense-normalized) cost.
  std::vector<double> rhs_;

  std::vector<int> basis_;          // Row -> basic variable.
  std::vector<int> row_of_basic_;   // Var -> row (or -1).
  std::vector<VarState> state_;
  std::vector<double> x_;
  std::vector<double> binv_;        // Dense m x m, row-major.

  int iterations_ = 0;
  int max_iterations_ = 0;
  int degenerate_streak_ = 0;
  bool bland_mode_ = false;

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

SimplexSolver::SimplexSolver(const LinearProgram& lp, const SimplexOptions& options)
    : lp_(lp), options_(options) {
  m_ = lp.num_constraints();
  n_structural_ = lp.num_variables();
  sense_sign_ = lp.objective_sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0;
  BuildColumns(lp);
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 20000 + 50 * (m_ + n_structural_);
  if (options_.time_limit_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options_.time_limit_seconds));
  }
}

void SimplexSolver::BuildColumns(const LinearProgram& lp) {
  columns_.resize(n_structural_ + m_);
  lower_.resize(n_structural_ + m_);
  upper_.resize(n_structural_ + m_);
  phase2_cost_.assign(n_structural_ + m_, 0.0);
  rhs_.resize(m_);

  for (int j = 0; j < n_structural_; ++j) {
    lower_[j] = lp.lower_bound(j);
    upper_[j] = lp.upper_bound(j);
    phase2_cost_[j] = sense_sign_ * lp.objective_coefficient(j);
  }
  for (int i = 0; i < m_; ++i) {
    rhs_[i] = lp.rhs(i);
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      columns_[var].rows.push_back(i);
      columns_[var].values.push_back(coeff);
    }
    // Slack variable for row i.
    const int slack = n_structural_ + i;
    columns_[slack].rows.push_back(i);
    columns_[slack].values.push_back(1.0);
    switch (lp.constraint_op(i)) {
      case ConstraintOp::kLessEq:
        lower_[slack] = 0.0;
        upper_[slack] = kLpInfinity;
        break;
      case ConstraintOp::kGreaterEq:
        lower_[slack] = -kLpInfinity;
        upper_[slack] = 0.0;
        break;
      case ConstraintOp::kEqual:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }
  first_artificial_ = n_structural_ + m_;
}

void SimplexSolver::InitializeBasis() {
  const int total = num_total();
  state_.assign(total, VarState::kAtLower);
  x_.assign(total, 0.0);
  row_of_basic_.assign(total, -1);
  basis_.assign(m_, -1);

  // Nonbasic structurals rest at the finite bound closest to zero.
  for (int j = 0; j < n_structural_; ++j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      if (std::abs(lo) <= std::abs(hi)) {
        state_[j] = VarState::kAtLower;
        x_[j] = lo;
      } else {
        state_[j] = VarState::kAtUpper;
        x_[j] = hi;
      }
    } else if (std::isfinite(lo)) {
      state_[j] = VarState::kAtLower;
      x_[j] = lo;
    } else if (std::isfinite(hi)) {
      state_[j] = VarState::kAtUpper;
      x_[j] = hi;
    } else {
      state_[j] = VarState::kNonbasicFree;
      x_[j] = 0.0;
    }
  }

  // Residual each slack must absorb.
  std::vector<double> residual(rhs_);
  for (int j = 0; j < n_structural_; ++j) {
    if (x_[j] == 0.0) {
      continue;
    }
    const auto& col = columns_[j];
    for (size_t k = 0; k < col.rows.size(); ++k) {
      residual[col.rows[k]] -= col.values[k] * x_[j];
    }
  }

  // Slack basis where the residual fits the slack's bounds; otherwise clamp
  // the slack to its nearest bound and add a signed artificial variable.
  for (int i = 0; i < m_; ++i) {
    const int slack = n_structural_ + i;
    const double r = residual[i];
    if (r >= lower_[slack] - options_.feasibility_tol &&
        r <= upper_[slack] + options_.feasibility_tol) {
      basis_[i] = slack;
      row_of_basic_[slack] = i;
      state_[slack] = VarState::kBasic;
      x_[slack] = std::clamp(r, lower_[slack], upper_[slack]);
      continue;
    }
    const double clamped = std::clamp(r, lower_[slack], upper_[slack]);
    state_[slack] = clamped == lower_[slack] ? VarState::kAtLower : VarState::kAtUpper;
    x_[slack] = clamped;
    const double leftover = r - clamped;
    // Artificial column: +1 if leftover positive, -1 otherwise, with value
    // |leftover| and bounds [0, inf) during phase 1.
    SparseColumn art;
    art.rows.push_back(i);
    art.values.push_back(leftover > 0.0 ? 1.0 : -1.0);
    columns_.push_back(std::move(art));
    lower_.push_back(0.0);
    upper_.push_back(kLpInfinity);
    phase2_cost_.push_back(0.0);
    const int art_var = num_total() - 1;
    state_.push_back(VarState::kBasic);
    x_.push_back(std::abs(leftover));
    row_of_basic_.push_back(i);
    basis_[i] = art_var;
  }

  Refactorize();
}

bool SimplexSolver::TryWarmBasis(const SimplexBasis& hint) {
  const int total = n_structural_ + m_;
  if (static_cast<int>(hint.state.size()) != total) {
    return false;
  }
  int basic_count = 0;
  for (const uint8_t s : hint.state) {
    if (s == SimplexBasis::kBasic) {
      ++basic_count;
    }
  }
  if (basic_count != m_) {
    return false;
  }

  state_.assign(total, VarState::kAtLower);
  x_.assign(total, 0.0);
  row_of_basic_.assign(total, -1);
  basis_.assign(m_, -1);

  // Basic variables are assigned to rows in index order; the hint records
  // only variable states, and the inversion below is permutation-agnostic.
  int row = 0;
  for (int j = 0; j < total; ++j) {
    switch (hint.state[j]) {
      case SimplexBasis::kBasic:
        state_[j] = VarState::kBasic;
        basis_[row] = j;
        row_of_basic_[j] = row;
        ++row;
        break;
      case SimplexBasis::kAtLower:
        if (!std::isfinite(lower_[j])) {
          return false;
        }
        state_[j] = VarState::kAtLower;
        x_[j] = lower_[j];
        break;
      case SimplexBasis::kAtUpper:
        if (!std::isfinite(upper_[j])) {
          return false;
        }
        state_[j] = VarState::kAtUpper;
        x_[j] = upper_[j];
        break;
      case SimplexBasis::kFree:
        state_[j] = VarState::kNonbasicFree;
        x_[j] = 0.0;
        break;
      default:
        return false;
    }
  }

  if (!TryRefactorize()) {
    return false;  // Hint basis is singular for this problem's columns.
  }

  // The implied basic solution must be primal-feasible under the *current*
  // bounds (the MILP tightens bounds between parent and child nodes); if it
  // is not, skipping phase 1 would be unsound.
  for (int r = 0; r < m_; ++r) {
    const int basic = basis_[r];
    if (x_[basic] < lower_[basic] - options_.feasibility_tol ||
        x_[basic] > upper_[basic] + options_.feasibility_tol) {
      return false;
    }
  }
  return true;
}

void SimplexSolver::Refactorize() {
  SIA_CHECK(TryRefactorize()) << "singular basis during refactorization";
}

bool SimplexSolver::TryRefactorize() {
  // Gauss-Jordan inversion of the basis matrix with partial pivoting.
  std::vector<double> basis_matrix(static_cast<size_t>(m_) * m_, 0.0);
  for (int r = 0; r < m_; ++r) {
    const auto& col = columns_[basis_[r]];
    for (size_t k = 0; k < col.rows.size(); ++k) {
      basis_matrix[static_cast<size_t>(col.rows[k]) * m_ + r] = col.values[k];
    }
  }
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    binv_[static_cast<size_t>(i) * m_ + i] = 1.0;
  }
  for (int col = 0; col < m_; ++col) {
    // Partial pivot.
    int pivot = col;
    double best = std::abs(basis_matrix[static_cast<size_t>(col) * m_ + col]);
    for (int r = col + 1; r < m_; ++r) {
      const double cand = std::abs(basis_matrix[static_cast<size_t>(r) * m_ + col]);
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best <= 1e-12) {
      return false;
    }
    if (pivot != col) {
      // Row swap on the augmented system [B | I]; reducing B to the exact
      // identity leaves B^-1 on the right regardless of swaps.
      for (int c = 0; c < m_; ++c) {
        std::swap(basis_matrix[static_cast<size_t>(pivot) * m_ + c],
                  basis_matrix[static_cast<size_t>(col) * m_ + c]);
        std::swap(binv_[static_cast<size_t>(pivot) * m_ + c],
                  binv_[static_cast<size_t>(col) * m_ + c]);
      }
    }
    const double inv_pivot = 1.0 / basis_matrix[static_cast<size_t>(col) * m_ + col];
    for (int c = 0; c < m_; ++c) {
      basis_matrix[static_cast<size_t>(col) * m_ + c] *= inv_pivot;
      binv_[static_cast<size_t>(col) * m_ + c] *= inv_pivot;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == col) {
        continue;
      }
      const double factor = basis_matrix[static_cast<size_t>(r) * m_ + col];
      if (factor == 0.0) {
        continue;
      }
      for (int c = 0; c < m_; ++c) {
        basis_matrix[static_cast<size_t>(r) * m_ + c] -=
            factor * basis_matrix[static_cast<size_t>(col) * m_ + c];
        binv_[static_cast<size_t>(r) * m_ + c] -= factor * binv_[static_cast<size_t>(col) * m_ + c];
      }
    }
  }
  RecomputeBasicValues();
  return true;
}

void SimplexSolver::RecomputeBasicValues() {
  // x_B = B^-1 (b - N x_N).
  std::vector<double> residual(rhs_);
  for (int j = 0; j < num_total(); ++j) {
    if (state_[j] == VarState::kBasic || x_[j] == 0.0) {
      continue;
    }
    const auto& col = columns_[j];
    for (size_t k = 0; k < col.rows.size(); ++k) {
      residual[col.rows[k]] -= col.values[k] * x_[j];
    }
  }
  for (int r = 0; r < m_; ++r) {
    double value = 0.0;
    const double* row = &binv_[static_cast<size_t>(r) * m_];
    for (int i = 0; i < m_; ++i) {
      value += row[i] * residual[i];
    }
    x_[basis_[r]] = value;
  }
}

void SimplexSolver::CaptureBasis(LpSolution& solution) const {
  // An artificial stuck in the basis (degenerate at zero) cannot be
  // expressed in the structural+slack state vector; skip the export rather
  // than hand out a basis that TryWarmBasis would misinterpret.
  for (int r = 0; r < m_; ++r) {
    if (basis_[r] >= first_artificial_) {
      return;
    }
  }
  solution.basis.state.resize(static_cast<size_t>(n_structural_ + m_));
  for (int j = 0; j < n_structural_ + m_; ++j) {
    uint8_t s = SimplexBasis::kAtLower;
    switch (state_[j]) {
      case VarState::kBasic:
        s = SimplexBasis::kBasic;
        break;
      case VarState::kAtLower:
        s = SimplexBasis::kAtLower;
        break;
      case VarState::kAtUpper:
        s = SimplexBasis::kAtUpper;
        break;
      case VarState::kNonbasicFree:
        s = SimplexBasis::kFree;
        break;
    }
    solution.basis.state[static_cast<size_t>(j)] = s;
  }
}

bool SimplexSolver::CertifyUniqueOptimalBasis() const {
  // Strictly-nonzero reduced costs on every movable nonbasic variable mean
  // no alternate optimum exists; basic variables strictly inside their
  // bounds mean the vertex has exactly one basis. Together they certify
  // that every correct solve of this program ends in this basis. The
  // margins are deliberately wider than the pivoting tolerances so a
  // certificate issued from one pivot path holds for any other.
  constexpr double kReducedCostMargin = 1e-6;
  constexpr double kDegeneracyMargin = 1e-8;
  std::vector<double> y;
  ComputeDuals(y);
  for (int j = 0; j < num_total(); ++j) {
    if (state_[j] == VarState::kBasic) {
      const double lo = lower_[j];
      const double hi = upper_[j];
      if ((std::isfinite(lo) && x_[j] - lo <= kDegeneracyMargin) ||
          (std::isfinite(hi) && hi - x_[j] <= kDegeneracyMargin)) {
        return false;  // Degenerate: the vertex admits another basis.
      }
      continue;
    }
    if (lower_[j] == upper_[j]) {
      continue;  // Fixed variables cannot move; their reduced cost is moot.
    }
    if (std::abs(ReducedCost(j, y)) <= kReducedCostMargin) {
      return false;  // Zero reduced cost: an equally-good neighbor exists.
    }
  }
  return true;
}

void SimplexSolver::ComputeDuals(std::vector<double>& y) const {
  y.assign(m_, 0.0);
  for (int r = 0; r < m_; ++r) {
    const double cb = cost_[basis_[r]];
    if (cb == 0.0) {
      continue;
    }
    const double* row = &binv_[static_cast<size_t>(r) * m_];
    for (int i = 0; i < m_; ++i) {
      y[i] += cb * row[i];
    }
  }
}

double SimplexSolver::ReducedCost(int var, const std::vector<double>& y) const {
  double d = cost_[var];
  const auto& col = columns_[var];
  for (size_t k = 0; k < col.rows.size(); ++k) {
    d -= y[col.rows[k]] * col.values[k];
  }
  return d;
}

void SimplexSolver::ComputeDirection(int var, std::vector<double>& w) const {
  w.assign(m_, 0.0);
  const auto& col = columns_[var];
  for (size_t k = 0; k < col.rows.size(); ++k) {
    const int i = col.rows[k];
    const double v = col.values[k];
    for (int r = 0; r < m_; ++r) {
      w[r] += v * binv_[static_cast<size_t>(r) * m_ + i];
    }
  }
}

SolveStatus SimplexSolver::Iterate() {
  std::vector<double> y;
  std::vector<double> w;
  int pivots_since_refactor = 0;
  while (true) {
    if (iterations_ >= max_iterations_) {
      return SolveStatus::kIterationLimit;
    }
    // The clock check is amortized over 64 pivots; the duals/pricing pass
    // below dominates a clock read, so overshoot past the deadline stays
    // small without taxing every iteration.
    if (has_deadline_ && (iterations_ & 63) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      return SolveStatus::kTimeLimit;
    }
    ComputeDuals(y);

    // --- pricing ---
    int entering = -1;
    double entering_sign = 0.0;
    double best_violation = options_.optimality_tol;
    for (int j = 0; j < num_total(); ++j) {
      if (state_[j] == VarState::kBasic || lower_[j] == upper_[j]) {
        continue;
      }
      const double d = ReducedCost(j, y);
      double violation = 0.0;
      double sign = 0.0;
      switch (state_[j]) {
        case VarState::kAtLower:
          if (d > options_.optimality_tol) {
            violation = d;
            sign = 1.0;
          }
          break;
        case VarState::kAtUpper:
          if (d < -options_.optimality_tol) {
            violation = -d;
            sign = -1.0;
          }
          break;
        case VarState::kNonbasicFree:
          if (std::abs(d) > options_.optimality_tol) {
            violation = std::abs(d);
            sign = d > 0.0 ? 1.0 : -1.0;
          }
          break;
        case VarState::kBasic:
          break;
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        entering_sign = sign;
        if (bland_mode_) {
          break;  // Bland: first improving index.
        }
      }
    }
    if (entering < 0) {
      return SolveStatus::kOptimal;
    }

    // --- ratio test ---
    ComputeDirection(entering, w);
    // Distance until the entering variable hits its own opposite bound.
    double t_limit = kLpInfinity;
    if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
      t_limit = upper_[entering] - lower_[entering];
    }
    int leaving_row = -1;
    double t_best = t_limit;
    double best_pivot_mag = 0.0;
    const double kPivotTol = 1e-9;
    for (int r = 0; r < m_; ++r) {
      const double delta = -entering_sign * w[r];  // d(x_basic[r]) / dt
      if (std::abs(delta) <= kPivotTol) {
        continue;
      }
      const int basic = basis_[r];
      double t_r;
      if (delta > 0.0) {
        if (!std::isfinite(upper_[basic])) {
          continue;
        }
        t_r = (upper_[basic] - x_[basic]) / delta;
      } else {
        if (!std::isfinite(lower_[basic])) {
          continue;
        }
        t_r = (x_[basic] - lower_[basic]) / (-delta);
      }
      t_r = std::max(t_r, 0.0);
      if (t_r < t_best - 1e-12 ||
          (t_r < t_best + 1e-12 && std::abs(delta) > best_pivot_mag)) {
        t_best = t_r;
        leaving_row = r;
        best_pivot_mag = std::abs(delta);
      }
    }

    if (!std::isfinite(t_best)) {
      return SolveStatus::kUnbounded;
    }

    ++iterations_;
    degenerate_streak_ = (t_best <= 1e-10) ? degenerate_streak_ + 1 : 0;
    if (degenerate_streak_ > 2 * (m_ + 10)) {
      bland_mode_ = true;
    } else if (degenerate_streak_ == 0) {
      bland_mode_ = false;
    }

    // Apply the step to basic variables.
    if (t_best != 0.0) {
      for (int r = 0; r < m_; ++r) {
        x_[basis_[r]] -= entering_sign * t_best * w[r];
      }
      x_[entering] += entering_sign * t_best;
    }

    if (leaving_row < 0) {
      // Bound flip: entering variable moved to its opposite bound.
      state_[entering] = entering_sign > 0.0 ? VarState::kAtUpper : VarState::kAtLower;
      x_[entering] = entering_sign > 0.0 ? upper_[entering] : lower_[entering];
      continue;
    }

    // --- pivot ---
    const int leaving = basis_[leaving_row];
    const double w_r = w[leaving_row];
    SIA_CHECK(std::abs(w_r) > 1e-12) << "zero pivot";
    // Leaving variable lands on the bound that blocked.
    const double delta_leaving = -entering_sign * w_r;
    state_[leaving] = delta_leaving > 0.0 ? VarState::kAtUpper : VarState::kAtLower;
    x_[leaving] = delta_leaving > 0.0 ? upper_[leaving] : lower_[leaving];
    row_of_basic_[leaving] = -1;

    basis_[leaving_row] = entering;
    row_of_basic_[entering] = leaving_row;
    state_[entering] = VarState::kBasic;

    // Update the dense inverse: row ops making column `entering` a unit
    // vector in the basis.
    double* pivot_row = &binv_[static_cast<size_t>(leaving_row) * m_];
    const double inv_wr = 1.0 / w_r;
    for (int c = 0; c < m_; ++c) {
      pivot_row[c] *= inv_wr;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == leaving_row || w[r] == 0.0) {
        continue;
      }
      const double factor = w[r];
      double* row = &binv_[static_cast<size_t>(r) * m_];
      for (int c = 0; c < m_; ++c) {
        row[c] -= factor * pivot_row[c];
      }
    }

    if (++pivots_since_refactor >= options_.refactor_interval) {
      Refactorize();
      pivots_since_refactor = 0;
    }
  }
}

LpSolution SimplexSolver::Solve() {
  LpSolution solution;
  if (m_ == 0) {
    // Pure box-constrained problem: each variable sits at its best bound.
    solution.values.resize(n_structural_);
    double objective = 0.0;
    for (int j = 0; j < n_structural_; ++j) {
      const double c = phase2_cost_[j];
      double v;
      if (c > 0.0) {
        if (!std::isfinite(upper_[j])) {
          solution.status = SolveStatus::kUnbounded;
          return solution;
        }
        v = upper_[j];
      } else if (c < 0.0) {
        if (!std::isfinite(lower_[j])) {
          solution.status = SolveStatus::kUnbounded;
          return solution;
        }
        v = lower_[j];
      } else {
        v = std::isfinite(lower_[j]) ? lower_[j] : (std::isfinite(upper_[j]) ? upper_[j] : 0.0);
      }
      solution.values[j] = v;
      objective += lp_.objective_coefficient(j) * v;
    }
    solution.status = SolveStatus::kOptimal;
    solution.objective = objective;
    return solution;
  }

  // A validated warm basis is primal-feasible by construction, so the
  // entire phase-1 machinery (artificial variables included) is skipped.
  bool warm = false;
  if (options_.warm_basis != nullptr && !options_.warm_basis->empty()) {
    warm = TryWarmBasis(*options_.warm_basis);
  }
  solution.warm_started = warm;

  if (!warm) {
    InitializeBasis();

    // --- phase 1 ---
    if (num_total() > first_artificial_) {
      cost_.assign(num_total(), 0.0);
      for (int j = first_artificial_; j < num_total(); ++j) {
        cost_[j] = -1.0;  // Maximize -(sum of artificials).
      }
      const SolveStatus status = Iterate();
      if (status == SolveStatus::kIterationLimit || status == SolveStatus::kTimeLimit) {
        solution.status = status;
        solution.iterations = iterations_;
        return solution;
      }
      double infeasibility = 0.0;
      for (int j = first_artificial_; j < num_total(); ++j) {
        infeasibility += x_[j];
      }
      if (infeasibility > 1e-6) {
        solution.status = SolveStatus::kInfeasible;
        solution.iterations = iterations_;
        return solution;
      }
      // Freeze artificials at zero for phase 2.
      for (int j = first_artificial_; j < num_total(); ++j) {
        lower_[j] = 0.0;
        upper_[j] = 0.0;
        if (state_[j] != VarState::kBasic) {
          state_[j] = VarState::kAtLower;
          x_[j] = 0.0;
        }
      }
    }
  }

  // --- phase 2 ---
  cost_ = phase2_cost_;
  cost_.resize(num_total(), 0.0);
  const SolveStatus status = Iterate();
  solution.status = status;
  solution.iterations = iterations_;
  if (status != SolveStatus::kOptimal && status != SolveStatus::kIterationLimit &&
      status != SolveStatus::kTimeLimit) {
    // Deadline/iteration truncations still export the current (feasible)
    // basic solution below as a best-effort result.
    return solution;
  }

  if (status == SolveStatus::kOptimal) {
    // Recompute the inverse and basic values directly from the final basis
    // so the reported solution is a pure function of (program, basis) --
    // not of the pivot path that got here. Without this, a warm and a cold
    // solve reaching the same basis could still differ in the last bits of
    // the incrementally-updated values.
    if (TryRefactorize()) {
      solution.unique_optimal_basis = CertifyUniqueOptimalBasis();
    }
  }

  solution.values.assign(lp_.num_variables(), 0.0);
  double objective = 0.0;
  for (int j = 0; j < n_structural_; ++j) {
    solution.values[j] = x_[j];
    objective += lp_.objective_coefficient(j) * x_[j];
  }
  solution.objective = objective;

  std::vector<double> y;
  ComputeDuals(y);
  solution.duals.resize(m_);
  for (int i = 0; i < m_; ++i) {
    solution.duals[i] = sense_sign_ * y[i];
  }
  if (options_.capture_basis && status == SolveStatus::kOptimal) {
    CaptureBasis(solution);
  }
  return solution;
}

}  // namespace

LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options) {
  SimplexSolver solver(lp, options);
  return solver.Solve();
}

}  // namespace sia
