#include "src/solver/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "src/common/check.h"

namespace sia {

namespace {
// Partial pricing scans this many candidate columns per block; the pivot
// takes the best violation of the first block containing one. Must be large
// enough that small programs degenerate to a plain full Dantzig scan.
constexpr int kPricingBlock = 512;
// Ratio-test pivot tolerance (unchanged from the original solver).
constexpr double kPivotTol = 1e-9;
// Dual-phase tolerance for "this basis is not dual feasible after all".
constexpr double kDualFeasTol = 1e-6;
}  // namespace

void SimplexEngine::Load(const LinearProgram& lp, const SimplexOptions& options) {
  options_ = options;
  loaded_ = true;
  basis_live_ = false;
  m_ = lp.num_constraints();
  n_structural_ = lp.num_variables();
  sense_sign_ = lp.objective_sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0;
  BuildColumns(lp);
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 20000 + 50 * (m_ + n_structural_);
}

void SimplexEngine::set_options(const SimplexOptions& options) {
  options_ = options;
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 20000 + 50 * (m_ + n_structural_);
}

void SimplexEngine::BuildColumns(const LinearProgram& lp) {
  const int total = n_structural_ + m_;
  columns_.resize(total);
  lower_.resize(total);
  upper_.resize(total);
  phase2_cost_.assign(total, 0.0);
  obj_coeff_.resize(n_structural_);
  rhs_.resize(m_);

  // Row-count pass so every column reserves its exact capacity up front
  // instead of reallocating throughout the build (ISSUE 8 satellite).
  canon_scratch_.assign(total, 0);
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      (void)coeff;
      ++canon_scratch_[var];
    }
  }
  for (int j = 0; j < n_structural_; ++j) {
    columns_[j].rows.clear();
    columns_[j].values.clear();
    columns_[j].rows.reserve(canon_scratch_[j]);
    columns_[j].values.reserve(canon_scratch_[j]);
    lower_[j] = lp.lower_bound(j);
    upper_[j] = lp.upper_bound(j);
    obj_coeff_[j] = lp.objective_coefficient(j);
    phase2_cost_[j] = sense_sign_ * obj_coeff_[j];
  }
  for (int i = 0; i < m_; ++i) {
    rhs_[i] = lp.rhs(i);
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      columns_[var].rows.push_back(i);
      columns_[var].values.push_back(coeff);
    }
    // Slack variable for row i.
    const int slack = n_structural_ + i;
    columns_[slack].rows.clear();
    columns_[slack].values.clear();
    columns_[slack].rows.reserve(1);
    columns_[slack].values.reserve(1);
    columns_[slack].rows.push_back(i);
    columns_[slack].values.push_back(1.0);
    switch (lp.constraint_op(i)) {
      case ConstraintOp::kLessEq:
        lower_[slack] = 0.0;
        upper_[slack] = kLpInfinity;
        break;
      case ConstraintOp::kGreaterEq:
        lower_[slack] = -kLpInfinity;
        upper_[slack] = 0.0;
        break;
      case ConstraintOp::kEqual:
        lower_[slack] = 0.0;
        upper_[slack] = 0.0;
        break;
    }
  }
  first_artificial_ = total;
}

void SimplexEngine::SetObjectiveCoefficient(int var, double coeff) {
  obj_coeff_[var] = coeff;
  phase2_cost_[var] = sense_sign_ * coeff;
}

void SimplexEngine::SetVariableBounds(int var, double lower, double upper) {
  lower_[var] = lower;
  upper_[var] = upper;
}

void SimplexEngine::SetRhs(int row, double rhs) { rhs_[row] = rhs; }

void SimplexEngine::TruncateArtificials() {
  if (num_total() <= first_artificial_) {
    return;
  }
  columns_.resize(first_artificial_);
  lower_.resize(first_artificial_);
  upper_.resize(first_artificial_);
  phase2_cost_.resize(first_artificial_);
  if (static_cast<int>(state_.size()) > first_artificial_) {
    state_.resize(first_artificial_);
    x_.resize(first_artificial_);
    row_of_basic_.resize(first_artificial_);
  }
}

void SimplexEngine::InitializeBasis() {
  TruncateArtificials();
  const int total = num_total();
  state_.assign(total, VarState::kAtLower);
  x_.assign(total, 0.0);
  row_of_basic_.assign(total, -1);
  basis_.assign(m_, -1);

  // Nonbasic structurals rest at the finite bound closest to zero.
  for (int j = 0; j < n_structural_; ++j) {
    const double lo = lower_[j];
    const double hi = upper_[j];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      if (std::abs(lo) <= std::abs(hi)) {
        state_[j] = VarState::kAtLower;
        x_[j] = lo;
      } else {
        state_[j] = VarState::kAtUpper;
        x_[j] = hi;
      }
    } else if (std::isfinite(lo)) {
      state_[j] = VarState::kAtLower;
      x_[j] = lo;
    } else if (std::isfinite(hi)) {
      state_[j] = VarState::kAtUpper;
      x_[j] = hi;
    } else {
      state_[j] = VarState::kNonbasicFree;
      x_[j] = 0.0;
    }
  }

  // Residual each slack must absorb.
  residual_scratch_ = rhs_;
  for (int j = 0; j < n_structural_; ++j) {
    if (x_[j] == 0.0) {
      continue;
    }
    const auto& col = columns_[j];
    for (size_t k = 0; k < col.rows.size(); ++k) {
      residual_scratch_[col.rows[k]] -= col.values[k] * x_[j];
    }
  }

  // Slack basis where the residual fits the slack's bounds; otherwise clamp
  // the slack to its nearest bound and add a signed artificial variable.
  for (int i = 0; i < m_; ++i) {
    const int slack = n_structural_ + i;
    const double r = residual_scratch_[i];
    if (r >= lower_[slack] - options_.feasibility_tol &&
        r <= upper_[slack] + options_.feasibility_tol) {
      basis_[i] = slack;
      row_of_basic_[slack] = i;
      state_[slack] = VarState::kBasic;
      x_[slack] = std::clamp(r, lower_[slack], upper_[slack]);
      continue;
    }
    const double clamped = std::clamp(r, lower_[slack], upper_[slack]);
    state_[slack] = clamped == lower_[slack] ? VarState::kAtLower : VarState::kAtUpper;
    x_[slack] = clamped;
    const double leftover = r - clamped;
    // Artificial column: +1 if leftover positive, -1 otherwise, with value
    // |leftover| and bounds [0, inf) during phase 1.
    SparseColumn art;
    art.rows.push_back(i);
    art.values.push_back(leftover > 0.0 ? 1.0 : -1.0);
    columns_.push_back(std::move(art));
    lower_.push_back(0.0);
    upper_.push_back(kLpInfinity);
    phase2_cost_.push_back(0.0);
    const int art_var = num_total() - 1;
    state_.push_back(VarState::kBasic);
    x_.push_back(std::abs(leftover));
    row_of_basic_.push_back(i);
    basis_[i] = art_var;
  }

  Refactorize();
}

bool SimplexEngine::TryWarmBasis(const SimplexBasis& hint) {
  TruncateArtificials();
  const int total = n_structural_ + m_;
  if (static_cast<int>(hint.state.size()) != total) {
    return false;
  }
  int basic_count = 0;
  for (const uint8_t s : hint.state) {
    if (s == SimplexBasis::kBasic) {
      ++basic_count;
    }
  }
  if (basic_count != m_) {
    return false;
  }

  state_.assign(total, VarState::kAtLower);
  x_.assign(total, 0.0);
  row_of_basic_.assign(total, -1);
  basis_.assign(m_, -1);

  // Basic variables are assigned to rows in index order; the hint records
  // only variable states, and the inversion below is permutation-agnostic.
  int row = 0;
  for (int j = 0; j < total; ++j) {
    switch (hint.state[j]) {
      case SimplexBasis::kBasic:
        state_[j] = VarState::kBasic;
        basis_[row] = j;
        row_of_basic_[j] = row;
        ++row;
        break;
      case SimplexBasis::kAtLower:
        if (!std::isfinite(lower_[j])) {
          return false;
        }
        state_[j] = VarState::kAtLower;
        x_[j] = lower_[j];
        break;
      case SimplexBasis::kAtUpper:
        if (!std::isfinite(upper_[j])) {
          return false;
        }
        state_[j] = VarState::kAtUpper;
        x_[j] = upper_[j];
        break;
      case SimplexBasis::kFree:
        state_[j] = VarState::kNonbasicFree;
        x_[j] = 0.0;
        break;
      default:
        return false;
    }
  }

  if (!TryRefactorize()) {
    return false;  // Hint basis is singular for this problem's columns.
  }

  // The implied basic solution must be primal-feasible under the *current*
  // bounds (the MILP tightens bounds between parent and child nodes); if it
  // is not, skipping phase 1 would be unsound. (InstallBasis deliberately
  // omits this check: its callers re-solve through the dual phase.)
  for (int r = 0; r < m_; ++r) {
    const int basic = basis_[r];
    if (x_[basic] < lower_[basic] - options_.feasibility_tol ||
        x_[basic] > upper_[basic] + options_.feasibility_tol) {
      return false;
    }
  }
  return true;
}

bool SimplexEngine::InstallBasis(const SimplexBasis& basis) {
  return InstallBasis(basis.state.data(), basis.state.size());
}

bool SimplexEngine::InstallBasis(const uint8_t* state, size_t size) {
  SIA_CHECK(loaded_) << "InstallBasis on an unloaded engine";
  basis_live_ = false;
  TruncateArtificials();
  const int total = n_structural_ + m_;
  if (static_cast<int>(size) != total) {
    return false;
  }
  int basic_count = 0;
  for (size_t k = 0; k < size; ++k) {
    if (state[k] == SimplexBasis::kBasic) {
      ++basic_count;
    }
  }
  if (basic_count != m_) {
    return false;
  }
  state_.assign(total, VarState::kAtLower);
  x_.assign(total, 0.0);
  row_of_basic_.assign(total, -1);
  basis_.assign(m_, -1);
  int row = 0;
  for (int j = 0; j < total; ++j) {
    switch (state[j]) {
      case SimplexBasis::kBasic:
        state_[j] = VarState::kBasic;
        basis_[row] = j;
        row_of_basic_[j] = row;
        ++row;
        break;
      case SimplexBasis::kAtLower:
        state_[j] = VarState::kAtLower;
        break;
      case SimplexBasis::kAtUpper:
        state_[j] = VarState::kAtUpper;
        break;
      case SimplexBasis::kFree:
        state_[j] = VarState::kNonbasicFree;
        break;
      default:
        return false;
    }
  }
  if (!ReclampNonbasics()) {
    return false;
  }
  if (!TryRefactorize()) {
    return false;
  }
  basis_live_ = true;
  return true;
}

bool SimplexEngine::ReclampNonbasics() {
  const int total = num_total();
  for (int j = 0; j < total; ++j) {
    switch (state_[j]) {
      case VarState::kBasic:
        break;
      case VarState::kAtLower:
        if (!std::isfinite(lower_[j])) {
          return false;
        }
        x_[j] = lower_[j];
        break;
      case VarState::kAtUpper:
        if (!std::isfinite(upper_[j])) {
          return false;
        }
        x_[j] = upper_[j];
        break;
      case VarState::kNonbasicFree:
        x_[j] = 0.0;
        break;
    }
  }
  return true;
}

void SimplexEngine::Refactorize() {
  SIA_CHECK(TryRefactorize()) << "singular basis during refactorization";
}

bool SimplexEngine::TryRefactorize() {
  // Gauss-Jordan inversion of the basis matrix with partial pivoting. The
  // factor == 0.0 skip below makes this effectively sparse for Sia's nearly
  // triangular bases (every column has <= 2 structural nonzeros).
  factor_scratch_.assign(static_cast<size_t>(m_) * m_, 0.0);
  std::vector<double>& basis_matrix = factor_scratch_;
  for (int r = 0; r < m_; ++r) {
    const auto& col = columns_[basis_[r]];
    for (size_t k = 0; k < col.rows.size(); ++k) {
      basis_matrix[static_cast<size_t>(col.rows[k]) * m_ + r] = col.values[k];
    }
  }
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    binv_[static_cast<size_t>(i) * m_ + i] = 1.0;
  }
  for (int col = 0; col < m_; ++col) {
    // Partial pivot.
    int pivot = col;
    double best = std::abs(basis_matrix[static_cast<size_t>(col) * m_ + col]);
    for (int r = col + 1; r < m_; ++r) {
      const double cand = std::abs(basis_matrix[static_cast<size_t>(r) * m_ + col]);
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best <= 1e-12) {
      return false;
    }
    if (pivot != col) {
      // Row swap on the augmented system [B | I]; reducing B to the exact
      // identity leaves B^-1 on the right regardless of swaps.
      for (int c = 0; c < m_; ++c) {
        std::swap(basis_matrix[static_cast<size_t>(pivot) * m_ + c],
                  basis_matrix[static_cast<size_t>(col) * m_ + c]);
        std::swap(binv_[static_cast<size_t>(pivot) * m_ + c],
                  binv_[static_cast<size_t>(col) * m_ + c]);
      }
    }
    const double inv_pivot = 1.0 / basis_matrix[static_cast<size_t>(col) * m_ + col];
    for (int c = 0; c < m_; ++c) {
      basis_matrix[static_cast<size_t>(col) * m_ + c] *= inv_pivot;
      binv_[static_cast<size_t>(col) * m_ + c] *= inv_pivot;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == col) {
        continue;
      }
      const double factor = basis_matrix[static_cast<size_t>(r) * m_ + col];
      if (factor == 0.0) {
        continue;
      }
      for (int c = 0; c < m_; ++c) {
        basis_matrix[static_cast<size_t>(r) * m_ + c] -=
            factor * basis_matrix[static_cast<size_t>(col) * m_ + c];
        binv_[static_cast<size_t>(r) * m_ + c] -= factor * binv_[static_cast<size_t>(col) * m_ + c];
      }
    }
  }
  RecomputeBasicValues();
  return true;
}

void SimplexEngine::RecomputeBasicValues() {
  // x_B = B^-1 (b - N x_N).
  residual_scratch_ = rhs_;
  for (int j = 0; j < num_total(); ++j) {
    if (state_[j] == VarState::kBasic || x_[j] == 0.0) {
      continue;
    }
    const auto& col = columns_[j];
    for (size_t k = 0; k < col.rows.size(); ++k) {
      residual_scratch_[col.rows[k]] -= col.values[k] * x_[j];
    }
  }
  for (int r = 0; r < m_; ++r) {
    double value = 0.0;
    const double* row = &binv_[static_cast<size_t>(r) * m_];
    for (int i = 0; i < m_; ++i) {
      value += row[i] * residual_scratch_[i];
    }
    x_[basis_[r]] = value;
  }
}

void SimplexEngine::CanonicalizeBasis() {
  canon_scratch_.assign(basis_.begin(), basis_.end());
  std::sort(canon_scratch_.begin(), canon_scratch_.end());
  for (int r = 0; r < m_; ++r) {
    basis_[r] = canon_scratch_[r];
    row_of_basic_[basis_[r]] = r;
  }
}

void SimplexEngine::CaptureBasis(LpSolution& solution) const {
  // An artificial stuck in the basis (degenerate at zero) cannot be
  // expressed in the structural+slack state vector; skip the export rather
  // than hand out a basis that TryWarmBasis would misinterpret.
  for (int r = 0; r < m_; ++r) {
    if (basis_[r] >= first_artificial_) {
      return;
    }
  }
  solution.basis.state.resize(static_cast<size_t>(n_structural_ + m_));
  for (int j = 0; j < n_structural_ + m_; ++j) {
    uint8_t s = SimplexBasis::kAtLower;
    switch (state_[j]) {
      case VarState::kBasic:
        s = SimplexBasis::kBasic;
        break;
      case VarState::kAtLower:
        s = SimplexBasis::kAtLower;
        break;
      case VarState::kAtUpper:
        s = SimplexBasis::kAtUpper;
        break;
      case VarState::kNonbasicFree:
        s = SimplexBasis::kFree;
        break;
    }
    solution.basis.state[static_cast<size_t>(j)] = s;
  }
}

void SimplexEngine::CertifyOptimal(bool* unique_basis, bool* unique_solution) const {
  // Strictly-nonzero reduced costs on every movable nonbasic variable mean
  // any feasible move strictly worsens the objective, so the optimal
  // *solution vector* is unique (this holds even under primal degeneracy:
  // a point agreeing with x on every nonbasic is x). If additionally no
  // basic variable sits on a bound, the vertex has exactly one basis and
  // every correct solve terminates in *this* basis. The margins are
  // deliberately wider than the pivoting tolerances so a certificate
  // issued from one pivot path holds for any other. The duals in y_ are
  // fresh here: the caller certifies only straight after the
  // canonicalizing refactorization.
  constexpr double kReducedCostMargin = 1e-6;
  constexpr double kDegeneracyMargin = 1e-8;
  *unique_basis = true;
  *unique_solution = true;
  for (int j = 0; j < num_total(); ++j) {
    if (state_[j] == VarState::kBasic) {
      const double lo = lower_[j];
      const double hi = upper_[j];
      if ((std::isfinite(lo) && x_[j] - lo <= kDegeneracyMargin) ||
          (std::isfinite(hi) && hi - x_[j] <= kDegeneracyMargin)) {
        *unique_basis = false;  // Degenerate: the vertex admits another basis.
      }
      continue;
    }
    if (lower_[j] == upper_[j]) {
      continue;  // Fixed variables cannot move; their reduced cost is moot.
    }
    if (std::abs(ReducedCost(j, y_)) <= kReducedCostMargin) {
      // Zero reduced cost: an equally-good neighboring solution exists.
      *unique_basis = false;
      *unique_solution = false;
      return;
    }
  }
}

void SimplexEngine::ComputeDuals(std::vector<double>& y) const {
  y.assign(m_, 0.0);
  for (int r = 0; r < m_; ++r) {
    const double cb = cost_[basis_[r]];
    if (cb == 0.0) {
      continue;
    }
    const double* row = &binv_[static_cast<size_t>(r) * m_];
    for (int i = 0; i < m_; ++i) {
      y[i] += cb * row[i];
    }
  }
}

double SimplexEngine::ReducedCost(int var, const std::vector<double>& y) const {
  double d = cost_[var];
  const auto& col = columns_[var];
  for (size_t k = 0; k < col.rows.size(); ++k) {
    d -= y[col.rows[k]] * col.values[k];
  }
  return d;
}

void SimplexEngine::ComputeDirection(int var, std::vector<double>& w) const {
  w.assign(m_, 0.0);
  const auto& col = columns_[var];
  for (size_t k = 0; k < col.rows.size(); ++k) {
    const int i = col.rows[k];
    const double v = col.values[k];
    for (int r = 0; r < m_; ++r) {
      w[r] += v * binv_[static_cast<size_t>(r) * m_ + i];
    }
  }
}

bool SimplexEngine::OutOfTime() const {
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

int SimplexEngine::PriceEntering(bool partial, double& entering_sign) {
  const int total = num_total();
  entering_sign = 0.0;
  int entering = -1;
  double best_violation = options_.optimality_tol;

  if (bland_mode_) {
    // Bland's anti-cycling rule: first improving index over a full scan.
    for (int j = 0; j < total; ++j) {
      if (state_[j] == VarState::kBasic || lower_[j] == upper_[j]) {
        continue;
      }
      const double d = ReducedCost(j, y_);
      double violation = 0.0;
      double sign = 0.0;
      switch (state_[j]) {
        case VarState::kAtLower:
          if (d > options_.optimality_tol) {
            violation = d;
            sign = 1.0;
          }
          break;
        case VarState::kAtUpper:
          if (d < -options_.optimality_tol) {
            violation = -d;
            sign = -1.0;
          }
          break;
        case VarState::kNonbasicFree:
          if (std::abs(d) > options_.optimality_tol) {
            violation = std::abs(d);
            sign = d > 0.0 ? 1.0 : -1.0;
          }
          break;
        case VarState::kBasic:
          break;
      }
      if (violation > best_violation) {
        entering = j;
        entering_sign = sign;
        break;
      }
    }
    return entering;
  }

  // Dantzig pricing, optionally restricted to cyclic candidate blocks: scan
  // from the cursor and stop at the first block boundary once a candidate
  // exists, so a pivot prices O(block) columns instead of all of them. A
  // full wrap with no candidate is a tentative optimum (the caller
  // re-verifies it with fresh duals before trusting it).
  const int start = (partial && pricing_cursor_ < total) ? pricing_cursor_ : 0;
  int scanned_in_block = 0;
  for (int k = 0; k < total; ++k) {
    int j = start + k;
    if (j >= total) {
      j -= total;
    }
    if (partial && scanned_in_block >= kPricingBlock) {
      if (entering >= 0) {
        break;
      }
      scanned_in_block = 0;
    }
    ++scanned_in_block;
    if (state_[j] == VarState::kBasic || lower_[j] == upper_[j]) {
      continue;
    }
    const double d = ReducedCost(j, y_);
    double violation = 0.0;
    double sign = 0.0;
    switch (state_[j]) {
      case VarState::kAtLower:
        if (d > options_.optimality_tol) {
          violation = d;
          sign = 1.0;
        }
        break;
      case VarState::kAtUpper:
        if (d < -options_.optimality_tol) {
          violation = -d;
          sign = -1.0;
        }
        break;
      case VarState::kNonbasicFree:
        if (std::abs(d) > options_.optimality_tol) {
          violation = std::abs(d);
          sign = d > 0.0 ? 1.0 : -1.0;
        }
        break;
      case VarState::kBasic:
        break;
    }
    if (violation > best_violation) {
      best_violation = violation;
      entering = j;
      entering_sign = sign;
    }
  }
  return entering;
}

void SimplexEngine::ApplyPivot(int entering, int leaving_row, double d_entering,
                               const std::vector<double>& w, VarState leaving_state) {
  const int leaving = basis_[leaving_row];
  const double w_r = w[leaving_row];
  SIA_CHECK(std::abs(w_r) > 1e-12) << "zero pivot";
  state_[leaving] = leaving_state;
  x_[leaving] = leaving_state == VarState::kAtUpper ? upper_[leaving] : lower_[leaving];
  row_of_basic_[leaving] = -1;

  basis_[leaving_row] = entering;
  row_of_basic_[entering] = leaving_row;
  state_[entering] = VarState::kBasic;

  // Update the dense inverse: row ops making column `entering` a unit
  // vector in the basis.
  double* pivot_row = &binv_[static_cast<size_t>(leaving_row) * m_];
  const double inv_wr = 1.0 / w_r;
  for (int c = 0; c < m_; ++c) {
    pivot_row[c] *= inv_wr;
  }
  for (int r = 0; r < m_; ++r) {
    if (r == leaving_row || w[r] == 0.0) {
      continue;
    }
    const double factor = w[r];
    double* row = &binv_[static_cast<size_t>(r) * m_];
    for (int c = 0; c < m_; ++c) {
      row[c] -= factor * pivot_row[c];
    }
  }

  // Maintained duals: y' = y + d_e * (new pivot row) zeroes the entering
  // reduced cost and keeps every other basic reduced cost at zero -- an
  // O(m) update replacing the old per-pivot O(m^2) recompute. Fully fresh
  // duals are recomputed at every refactorization and before any
  // optimality claim.
  if (d_entering != 0.0) {
    for (int c = 0; c < m_; ++c) {
      y_[c] += d_entering * pivot_row[c];
    }
  }

  pricing_cursor_ = entering + 1 < num_total() ? entering + 1 : 0;
  if (++pivots_since_refactor_ >= options_.refactor_interval) {
    Refactorize();
    ComputeDuals(y_);
    pivots_since_refactor_ = 0;
  }
}

SolveStatus SimplexEngine::Iterate() {
  while (true) {
    if (iterations_ >= max_iterations_) {
      return SolveStatus::kIterationLimit;
    }
    // The clock check is amortized over 64 pivots; the pricing pass below
    // dominates a clock read, so overshoot past the deadline stays small
    // without taxing every iteration.
    if (has_deadline_ && (iterations_ & 63) == 0 && OutOfTime()) {
      return SolveStatus::kTimeLimit;
    }

    // --- pricing ---
    double entering_sign = 0.0;
    int entering = PriceEntering(/*partial=*/!bland_mode_, entering_sign);
    if (entering < 0) {
      // Tentative optimum: the maintained duals may have drifted, so
      // canonicalize + refactorize, recompute them, and re-price over all
      // columns before declaring optimality. On a confirmed optimum this
      // doubles as the pure-function-of-(program, basis) guarantee: the
      // exported values, duals, and kept factorization no longer depend on
      // the pivot path that got here.
      refactorized_at_optimal_ = false;
      CanonicalizeBasis();
      if (!TryRefactorize()) {
        return SolveStatus::kOptimal;  // Uncertifiable; FinishSolve handles.
      }
      ComputeDuals(y_);
      entering = PriceEntering(/*partial=*/false, entering_sign);
      if (entering < 0) {
        refactorized_at_optimal_ = true;
        return SolveStatus::kOptimal;
      }
    }

    // --- ratio test ---
    ComputeDirection(entering, w_scratch_);
    const std::vector<double>& w = w_scratch_;
    // Distance until the entering variable hits its own opposite bound.
    double t_limit = kLpInfinity;
    if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
      t_limit = upper_[entering] - lower_[entering];
    }
    int leaving_row = -1;
    double t_best = t_limit;
    double best_pivot_mag = 0.0;
    for (int r = 0; r < m_; ++r) {
      const double delta = -entering_sign * w[r];  // d(x_basic[r]) / dt
      if (std::abs(delta) <= kPivotTol) {
        continue;
      }
      const int basic = basis_[r];
      double t_r;
      if (delta > 0.0) {
        if (!std::isfinite(upper_[basic])) {
          continue;
        }
        t_r = (upper_[basic] - x_[basic]) / delta;
      } else {
        if (!std::isfinite(lower_[basic])) {
          continue;
        }
        t_r = (x_[basic] - lower_[basic]) / (-delta);
      }
      t_r = std::max(t_r, 0.0);
      if (t_r < t_best - 1e-12 ||
          (t_r < t_best + 1e-12 && std::abs(delta) > best_pivot_mag)) {
        t_best = t_r;
        leaving_row = r;
        best_pivot_mag = std::abs(delta);
      }
    }

    if (!std::isfinite(t_best)) {
      return SolveStatus::kUnbounded;
    }

    ++iterations_;
    degenerate_streak_ = (t_best <= 1e-10) ? degenerate_streak_ + 1 : 0;
    if (degenerate_streak_ > 2 * (m_ + 10)) {
      bland_mode_ = true;
    } else if (degenerate_streak_ == 0) {
      bland_mode_ = false;
    }

    // Apply the step to basic variables.
    if (t_best != 0.0) {
      for (int r = 0; r < m_; ++r) {
        x_[basis_[r]] -= entering_sign * t_best * w[r];
      }
      x_[entering] += entering_sign * t_best;
    }

    if (leaving_row < 0) {
      // Bound flip: entering variable moved to its opposite bound.
      state_[entering] = entering_sign > 0.0 ? VarState::kAtUpper : VarState::kAtLower;
      x_[entering] = entering_sign > 0.0 ? upper_[entering] : lower_[entering];
      pricing_cursor_ = entering + 1 < num_total() ? entering + 1 : 0;
      continue;
    }

    // --- pivot ---
    const double w_r = w[leaving_row];
    const double delta_leaving = -entering_sign * w_r;
    const double d_entering = ReducedCost(entering, y_);
    ApplyPivot(entering, leaving_row, d_entering, w,
               delta_leaving > 0.0 ? VarState::kAtUpper : VarState::kAtLower);
  }
}

bool SimplexEngine::IterateDual(bool& proven_infeasible) {
  proven_infeasible = false;
  // Stall guard: if the worst primal violation has not strictly improved
  // for this many pivots, hand the solve back to the primal phase-1 path.
  const int stall_limit = 2 * (m_ + 10);
  int stall = 0;
  double best_worst = kLpInfinity;
  while (true) {
    if (iterations_ >= max_iterations_) {
      return false;
    }
    if (has_deadline_ && (iterations_ & 63) == 0 && OutOfTime()) {
      return false;
    }

    // --- leaving: most primal-infeasible basic variable ---
    int leaving_row = -1;
    double worst = options_.feasibility_tol;
    int dir = 0;  // +1: leaving must increase (lands at lower); -1: decrease.
    for (int r = 0; r < m_; ++r) {
      const int basic = basis_[r];
      const double v = x_[basic];
      if (std::isfinite(lower_[basic]) && lower_[basic] - v > worst) {
        worst = lower_[basic] - v;
        leaving_row = r;
        dir = 1;
      } else if (std::isfinite(upper_[basic]) && v - upper_[basic] > worst) {
        worst = v - upper_[basic];
        leaving_row = r;
        dir = -1;
      }
    }
    if (leaving_row < 0) {
      return true;  // Primal feasible: the dual phase is done.
    }
    if (worst < best_worst - 1e-12) {
      best_worst = worst;
      stall = 0;
    } else if (++stall > stall_limit) {
      return false;
    }

    // --- dual ratio test over all movable nonbasics ---
    // rho = e_r B^-1 (the dense pivot row); alpha_j = rho . A_j.
    const double* rho = &binv_[static_cast<size_t>(leaving_row) * m_];
    const int total = num_total();
    int entering = -1;
    double best_ratio = kLpInfinity;
    double best_alpha_mag = 0.0;
    for (int j = 0; j < total; ++j) {
      if (state_[j] == VarState::kBasic || lower_[j] == upper_[j]) {
        continue;
      }
      const auto& col = columns_[j];
      double alpha = 0.0;
      for (size_t k = 0; k < col.rows.size(); ++k) {
        alpha += rho[col.rows[k]] * col.values[k];
      }
      const double d = ReducedCost(j, y_);
      // The phase is only sound from a dual-feasible start; a reduced cost
      // on the wrong side of zero beyond tolerance means the caller must
      // fall back to primal phase 1.
      bool eligible = false;
      switch (state_[j]) {
        case VarState::kAtLower:
          if (d > kDualFeasTol) {
            return false;
          }
          eligible = dir > 0 ? alpha < -kPivotTol : alpha > kPivotTol;
          break;
        case VarState::kAtUpper:
          if (d < -kDualFeasTol) {
            return false;
          }
          eligible = dir > 0 ? alpha > kPivotTol : alpha < -kPivotTol;
          break;
        case VarState::kNonbasicFree:
          if (std::abs(d) > kDualFeasTol) {
            return false;
          }
          eligible = std::abs(alpha) > kPivotTol;
          break;
        case VarState::kBasic:
          break;
      }
      if (!eligible) {
        continue;
      }
      // Wait for it: in both leaving directions the eligibility rules above
      // make dir * alpha and d carry opposite signs, so the dual step
      // length is the non-negative d / (dir * alpha); tiny negatives are
      // pivoting-tolerance noise, clamped to zero.
      const double ratio = std::max(0.0, d / (dir * alpha));
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && std::abs(alpha) > best_alpha_mag)) {
        best_ratio = ratio;
        entering = j;
        best_alpha_mag = std::abs(alpha);
      }
    }
    if (entering < 0) {
      // Dual unbounded with verified dual feasibility: primal infeasible.
      proven_infeasible = true;
      return false;
    }

    // --- pivot ---
    ComputeDirection(entering, w_scratch_);
    const std::vector<double>& w = w_scratch_;
    const double alpha_e = w[leaving_row];
    if (std::abs(alpha_e) <= 1e-11) {
      return false;  // Numerically hopeless pivot; fall back.
    }
    const int leaving = basis_[leaving_row];
    const double target = dir > 0 ? lower_[leaving] : upper_[leaving];
    const double t_e = (x_[leaving] - target) / alpha_e;
    for (int r = 0; r < m_; ++r) {
      x_[basis_[r]] -= w[r] * t_e;
    }
    x_[entering] += t_e;

    ++iterations_;
    ++dual_iterations_;
    const double d_entering = ReducedCost(entering, y_);
    ApplyPivot(entering, leaving_row, d_entering, w,
               dir > 0 ? VarState::kAtLower : VarState::kAtUpper);
    // ApplyPivot snaps the leaving variable onto the target bound exactly.
  }
}

void SimplexEngine::FinishSolve(LpSolution& solution, SolveStatus status) {
  solution.status = status;
  solution.iterations = iterations_;
  if (status != SolveStatus::kOptimal && status != SolveStatus::kIterationLimit &&
      status != SolveStatus::kTimeLimit) {
    // Deadline/iteration truncations still export the current (feasible)
    // basic solution below as a best-effort result.
    basis_live_ = false;
    return;
  }

  if (status == SolveStatus::kOptimal) {
    // Iterate() already canonicalized + refactorized the final basis (so
    // the reported solution is a pure function of (program, basis), not of
    // the pivot path) unless the refactorization failed numerically.
    if (refactorized_at_optimal_) {
      CertifyOptimal(&solution.unique_optimal_basis, &solution.unique_optimal_solution);
      basis_live_ = true;
    } else {
      basis_live_ = false;
    }
  } else {
    basis_live_ = false;
  }

  solution.values.assign(n_structural_, 0.0);
  double objective = 0.0;
  for (int j = 0; j < n_structural_; ++j) {
    solution.values[j] = x_[j];
    objective += obj_coeff_[j] * x_[j];
  }
  solution.objective = objective;

  ComputeDuals(y_);
  solution.duals.resize(m_);
  for (int i = 0; i < m_; ++i) {
    solution.duals[i] = sense_sign_ * y_[i];
  }
  if (options_.capture_basis && status == SolveStatus::kOptimal) {
    CaptureBasis(solution);
  }
}

LpSolution SimplexEngine::Solve() {
  return SolveInternal(options_.warm_basis);
}

LpSolution SimplexEngine::SolveFresh() {
  return SolveInternal(nullptr);
}

LpSolution SimplexEngine::SolveInternal(const SimplexBasis* warm_hint) {
  SIA_CHECK(loaded_) << "Solve on an unloaded engine";
  LpSolution solution;
  iterations_ = 0;
  dual_iterations_ = 0;
  degenerate_streak_ = 0;
  bland_mode_ = false;
  pricing_cursor_ = 0;
  pivots_since_refactor_ = 0;
  refactorized_at_optimal_ = false;
  has_deadline_ = options_.time_limit_seconds > 0.0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options_.time_limit_seconds));
  }

  if (m_ == 0) {
    // Pure box-constrained problem: each variable sits at its best bound.
    basis_live_ = false;
    solution.values.resize(n_structural_);
    double objective = 0.0;
    for (int j = 0; j < n_structural_; ++j) {
      const double c = phase2_cost_[j];
      double v;
      if (c > 0.0) {
        if (!std::isfinite(upper_[j])) {
          solution.status = SolveStatus::kUnbounded;
          return solution;
        }
        v = upper_[j];
      } else if (c < 0.0) {
        if (!std::isfinite(lower_[j])) {
          solution.status = SolveStatus::kUnbounded;
          return solution;
        }
        v = lower_[j];
      } else {
        v = std::isfinite(lower_[j]) ? lower_[j] : (std::isfinite(upper_[j]) ? upper_[j] : 0.0);
      }
      solution.values[j] = v;
      objective += obj_coeff_[j] * v;
    }
    solution.status = SolveStatus::kOptimal;
    solution.objective = objective;
    return solution;
  }

  // A validated warm basis is primal-feasible by construction, so the
  // entire phase-1 machinery (artificial variables included) is skipped.
  bool warm = false;
  if (warm_hint != nullptr && !warm_hint->empty()) {
    warm = TryWarmBasis(*warm_hint);
  }
  solution.warm_started = warm;

  if (!warm) {
    InitializeBasis();

    // --- phase 1 ---
    if (num_total() > first_artificial_) {
      cost_.assign(num_total(), 0.0);
      for (int j = first_artificial_; j < num_total(); ++j) {
        cost_[j] = -1.0;  // Maximize -(sum of artificials).
      }
      ComputeDuals(y_);
      const SolveStatus status = Iterate();
      if (status == SolveStatus::kIterationLimit || status == SolveStatus::kTimeLimit) {
        basis_live_ = false;
        solution.status = status;
        solution.iterations = iterations_;
        return solution;
      }
      double infeasibility = 0.0;
      for (int j = first_artificial_; j < num_total(); ++j) {
        infeasibility += x_[j];
      }
      if (infeasibility > 1e-6) {
        basis_live_ = false;
        solution.status = SolveStatus::kInfeasible;
        solution.iterations = iterations_;
        return solution;
      }
      // Freeze artificials at zero for phase 2.
      for (int j = first_artificial_; j < num_total(); ++j) {
        lower_[j] = 0.0;
        upper_[j] = 0.0;
        if (state_[j] != VarState::kBasic) {
          state_[j] = VarState::kAtLower;
          x_[j] = 0.0;
        }
      }
    }
  }

  // --- phase 2 ---
  cost_ = phase2_cost_;
  cost_.resize(num_total(), 0.0);
  ComputeDuals(y_);
  pricing_cursor_ = 0;
  const SolveStatus status = Iterate();
  FinishSolve(solution, status);
  return solution;
}

bool SimplexEngine::ResolveFromBasis(LpSolution& solution) {
  SIA_CHECK(loaded_) << "ResolveFromBasis on an unloaded engine";
  solution = LpSolution{};
  iterations_ = 0;
  dual_iterations_ = 0;
  degenerate_streak_ = 0;
  bland_mode_ = false;
  pricing_cursor_ = 0;
  pivots_since_refactor_ = 0;
  refactorized_at_optimal_ = false;
  has_deadline_ = options_.time_limit_seconds > 0.0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options_.time_limit_seconds));
  }
  if (!basis_live_ || m_ == 0) {
    basis_live_ = false;
    return false;
  }
  // Parameter deltas may have moved bounds under nonbasic variables; put
  // every nonbasic back onto its (current) bound, exactly the way
  // InstallBasis would, then rebuild the implied basic values against the
  // current rhs.
  if (!ReclampNonbasics()) {
    basis_live_ = false;
    return false;
  }
  RecomputeBasicValues();

  cost_ = phase2_cost_;
  cost_.resize(num_total(), 0.0);
  ComputeDuals(y_);

  // --- dual phase: restore primal feasibility if the deltas broke it ---
  bool infeasible_basic = false;
  for (int r = 0; r < m_; ++r) {
    const int basic = basis_[r];
    if (x_[basic] < lower_[basic] - options_.feasibility_tol ||
        x_[basic] > upper_[basic] + options_.feasibility_tol) {
      infeasible_basic = true;
      break;
    }
  }
  if (infeasible_basic) {
    bool proven_infeasible = false;
    if (!IterateDual(proven_infeasible)) {
      if (proven_infeasible) {
        // Dual unboundedness from a verified dual-feasible basis proves the
        // program has no feasible point -- the same answer phase 1 gives.
        solution.status = SolveStatus::kInfeasible;
        solution.iterations = iterations_;
        solution.warm_started = true;
        return true;
      }
      // Stall / drifted duals / pivot cap: report the pivots burned and let
      // the caller take the primal phase-1 fallback.
      solution.iterations = iterations_;
      return false;
    }
  }

  // --- primal phase 2 finishes the re-optimization ---
  const SolveStatus status = Iterate();
  FinishSolve(solution, status);
  solution.warm_started = true;
  return true;
}

LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options) {
  SimplexEngine engine;
  engine.Load(lp, options);
  return engine.Solve();
}

}  // namespace sia
