#include "src/solver/presolve.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

constexpr double kFeasTol = 1e-9;

struct WorkingVar {
  double lower;
  double upper;
  double objective;
  bool is_integer;
  bool eliminated = false;
  double fixed_value = 0.0;
};

struct WorkingRow {
  std::vector<LpTerm> terms;  // Over original variable indices.
  ConstraintOp op;
  double rhs;
  bool removed = false;
};

// Row activity bounds over the variable box, ignoring eliminated variables
// (their contribution has been folded into rhs).
std::pair<double, double> ActivityBounds(const WorkingRow& row,
                                         const std::vector<WorkingVar>& vars) {
  double lo = 0.0;
  double hi = 0.0;
  for (const auto& [var, coeff] : row.terms) {
    const double a = coeff >= 0.0 ? vars[var].lower : vars[var].upper;
    const double b = coeff >= 0.0 ? vars[var].upper : vars[var].lower;
    lo += coeff * a;
    hi += coeff * b;
  }
  return {lo, hi};
}

}  // namespace

PresolveResult PresolveLp(const LinearProgram& lp) {
  PresolveResult result;
  const int n = lp.num_variables();
  const int m = lp.num_constraints();

  std::vector<WorkingVar> vars(n);
  for (int j = 0; j < n; ++j) {
    vars[j] = {lp.lower_bound(j), lp.upper_bound(j), lp.objective_coefficient(j),
               lp.is_integer(j)};
  }
  std::vector<WorkingRow> rows(m);
  for (int i = 0; i < m; ++i) {
    rows[i] = {lp.row_terms(i), lp.constraint_op(i), lp.rhs(i)};
  }

  auto eliminate_fixed = [&](int j, double value) {
    vars[j].eliminated = true;
    vars[j].fixed_value = value;
    result.objective_offset += vars[j].objective * value;
    for (WorkingRow& row : rows) {
      if (row.removed) {
        continue;
      }
      for (auto it = row.terms.begin(); it != row.terms.end(); ++it) {
        if (it->first == j) {
          row.rhs -= it->second * value;
          row.terms.erase(it);
          break;
        }
      }
    }
  };

  bool changed = true;
  for (int pass = 0; pass < 10 && changed; ++pass) {
    changed = false;

    // Fixed variables.
    for (int j = 0; j < n; ++j) {
      if (!vars[j].eliminated && vars[j].upper - vars[j].lower <= kFeasTol &&
          std::isfinite(vars[j].lower)) {
        eliminate_fixed(j, vars[j].lower);
        changed = true;
      }
    }

    for (WorkingRow& row : rows) {
      if (row.removed) {
        continue;
      }
      // Empty rows: trivially feasible or infeasible.
      if (row.terms.empty()) {
        const bool feasible = (row.op == ConstraintOp::kLessEq && 0.0 <= row.rhs + kFeasTol) ||
                              (row.op == ConstraintOp::kGreaterEq && 0.0 >= row.rhs - kFeasTol) ||
                              (row.op == ConstraintOp::kEqual && std::abs(row.rhs) <= kFeasTol);
        if (!feasible) {
          result.proven_infeasible = true;
          return result;
        }
        row.removed = true;
        ++result.rows_removed;
        changed = true;
        continue;
      }
      // Singleton rows: tighten the variable's bounds and drop the row.
      if (row.terms.size() == 1) {
        const auto [var, coeff] = row.terms[0];
        SIA_DCHECK(std::abs(coeff) > 0.0);
        const double bound = row.rhs / coeff;
        WorkingVar& v = vars[var];
        if (row.op == ConstraintOp::kEqual) {
          v.lower = std::max(v.lower, bound);
          v.upper = std::min(v.upper, bound);
        } else {
          const bool upper_bound =
              (row.op == ConstraintOp::kLessEq) == (coeff > 0.0);
          if (upper_bound) {
            v.upper = std::min(v.upper, bound);
          } else {
            v.lower = std::max(v.lower, bound);
          }
        }
        if (v.lower > v.upper + kFeasTol) {
          result.proven_infeasible = true;
          return result;
        }
        row.removed = true;
        ++result.rows_removed;
        changed = true;
        continue;
      }
      // Redundant rows: satisfied over the whole variable box.
      const auto [lo, hi] = ActivityBounds(row, vars);
      if ((row.op == ConstraintOp::kLessEq && hi <= row.rhs + kFeasTol) ||
          (row.op == ConstraintOp::kGreaterEq && lo >= row.rhs - kFeasTol)) {
        row.removed = true;
        ++result.rows_removed;
        changed = true;
      } else if ((row.op == ConstraintOp::kLessEq && lo > row.rhs + kFeasTol) ||
                 (row.op == ConstraintOp::kGreaterEq && hi < row.rhs - kFeasTol) ||
                 (row.op == ConstraintOp::kEqual &&
                  (lo > row.rhs + kFeasTol || hi < row.rhs - kFeasTol))) {
        result.proven_infeasible = true;
        return result;
      }
    }
  }

  // Build the reduced program.
  result.reduced.SetObjectiveSense(lp.objective_sense());
  result.variable_map.assign(n, -1);
  result.fixed_values.assign(n, 0.0);
  for (int j = 0; j < n; ++j) {
    if (vars[j].eliminated) {
      result.fixed_values[j] = vars[j].fixed_value;
      ++result.variables_removed;
      continue;
    }
    result.variable_map[j] =
        result.reduced.AddVariable(vars[j].lower, vars[j].upper, vars[j].objective,
                                   lp.variable_name(j));
    if (vars[j].is_integer) {
      result.reduced.SetInteger(result.variable_map[j]);
    }
  }
  for (const WorkingRow& row : rows) {
    if (row.removed) {
      continue;
    }
    std::vector<LpTerm> mapped;
    mapped.reserve(row.terms.size());
    for (const auto& [var, coeff] : row.terms) {
      SIA_DCHECK(result.variable_map[var] >= 0);
      mapped.emplace_back(result.variable_map[var], coeff);
    }
    result.reduced.AddConstraint(row.op, row.rhs, std::move(mapped));
  }
  return result;
}

LpSolution PostsolveLp(const LinearProgram& original, const PresolveResult& presolve,
                       const LpSolution& reduced_solution) {
  LpSolution out;
  out.status = reduced_solution.status;
  out.iterations = reduced_solution.iterations;
  if (out.status != SolveStatus::kOptimal && out.status != SolveStatus::kIterationLimit) {
    return out;
  }
  out.values.assign(original.num_variables(), 0.0);
  double objective = 0.0;
  for (int j = 0; j < original.num_variables(); ++j) {
    const int mapped = presolve.variable_map[j];
    out.values[j] =
        mapped >= 0 ? reduced_solution.values[mapped] : presolve.fixed_values[j];
    objective += original.objective_coefficient(j) * out.values[j];
  }
  out.objective = objective;
  return out;
}

LpSolution SolveLpWithPresolve(const LinearProgram& lp, const SimplexOptions& options) {
  const PresolveResult presolve = PresolveLp(lp);
  if (presolve.proven_infeasible) {
    LpSolution solution;
    solution.status = SolveStatus::kInfeasible;
    return solution;
  }
  const LpSolution reduced = SolveLp(presolve.reduced, options);
  if (reduced.status == SolveStatus::kInfeasible || reduced.status == SolveStatus::kUnbounded) {
    LpSolution solution;
    solution.status = reduced.status;
    return solution;
  }
  return PostsolveLp(lp, presolve, reduced);
}

}  // namespace sia
