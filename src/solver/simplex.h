// Bounded-variable revised simplex LP solver.
//
// Designed for Sia's scheduling LPs: constraint columns carry very few
// structural nonzeros (an assignment variable appears in one job row and one
// capacity row), so the solver stores columns sparsely and maintains a dense
// basis inverse of size m x m (m = #constraints), which stays small even for
// the 2048-GPU experiments of Fig. 9.
//
// Implementation notes:
//  * two-phase method with artificial variables for infeasible starts,
//  * bounded ratio test with bound flips,
//  * Dantzig pricing with an automatic switch to Bland's rule when a long
//    run of degenerate pivots indicates cycling risk,
//  * periodic refactorization of the basis inverse for numerical hygiene.
#ifndef SIA_SRC_SOLVER_SIMPLEX_H_
#define SIA_SRC_SOLVER_SIMPLEX_H_

#include "src/solver/lp_model.h"

namespace sia {

struct SimplexOptions {
  // Hard cap on simplex pivots (phase 1 + phase 2). <= 0 selects an
  // automatic limit scaling with problem size.
  int max_iterations = 0;
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Feasibility tolerance on variable bounds.
  double feasibility_tol = 1e-7;
  // Refactorize the basis inverse every this many pivots.
  int refactor_interval = 2000;
  // Optional warm-start hint (previous round / parent B&B node basis). The
  // hint is validated before use; on any mismatch the solver silently falls
  // back to its cold crash basis. Not owned; must outlive the solve.
  const SimplexBasis* warm_basis = nullptr;
  // When set, an optimal solve exports its final basis in
  // LpSolution::basis (skipped if an artificial variable is still basic).
  bool capture_basis = false;
  // Wall-clock budget for the whole solve (phase 1 + phase 2); <= 0 means
  // unlimited. Checked every ~64 pivots, so overshoot is bounded by a few
  // pivot times. A deadline hit returns kTimeLimit with best-effort values
  // (the current basic solution), mirroring kIterationLimit. Deterministic
  // runs must leave this at 0: which pivot trips the check depends on the
  // host's clock.
  double time_limit_seconds = 0.0;
};

// Solves the LP relaxation of `lp` (integrality markers ignored).
LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace sia

#endif  // SIA_SRC_SOLVER_SIMPLEX_H_
