// Bounded-variable revised simplex LP solver.
//
// Designed for Sia's scheduling LPs: constraint columns carry very few
// structural nonzeros (an assignment variable appears in one job row and one
// capacity row), so the solver stores columns sparsely and maintains a dense
// basis inverse of size m x m (m = #constraints), which stays small even for
// the 2048-GPU experiments of Fig. 9.
//
// Implementation notes:
//  * two-phase method with artificial variables for infeasible starts,
//  * bounded ratio test with bound flips,
//  * partial (candidate-list) pricing: pivots scan one cyclic block of
//    columns instead of all of them, with an automatic switch to Bland's
//    full first-index scan when a long run of degenerate pivots indicates
//    cycling risk,
//  * incrementally-maintained duals (O(m) per pivot instead of an O(m^2)
//    recompute), re-verified against a full refactorized pricing pass before
//    optimality is declared,
//  * a dual simplex phase (ISSUE 8) that restores primal feasibility from a
//    dual-feasible basis after bound / rhs deltas -- the engine of
//    branch-and-bound child re-solves and of cross-round incremental
//    re-solves,
//  * periodic refactorization of the basis inverse for numerical hygiene,
//    plus a canonicalizing refactorization at every optimum (basic variables
//    assigned to rows in index order) so the reported solution -- values,
//    duals, and the factorization an incremental session keeps alive -- is a
//    pure function of (program, basis set), never of the pivot path.
#ifndef SIA_SRC_SOLVER_SIMPLEX_H_
#define SIA_SRC_SOLVER_SIMPLEX_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/solver/lp_model.h"

namespace sia {

struct SimplexOptions {
  // Hard cap on simplex pivots (phase 1 + phase 2). <= 0 selects an
  // automatic limit scaling with problem size.
  int max_iterations = 0;
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Feasibility tolerance on variable bounds.
  double feasibility_tol = 1e-7;
  // Refactorize the basis inverse every this many pivots.
  int refactor_interval = 2000;
  // Optional warm-start hint (previous round / parent B&B node basis). The
  // hint is validated before use; on any mismatch the solver silently falls
  // back to its cold crash basis. Not owned; must outlive the solve.
  const SimplexBasis* warm_basis = nullptr;
  // When set, an optimal solve exports its final basis in
  // LpSolution::basis (skipped if an artificial variable is still basic).
  bool capture_basis = false;
  // Wall-clock budget for the whole solve (phase 1 + phase 2); <= 0 means
  // unlimited. Checked every ~64 pivots, so overshoot is bounded by a few
  // pivot times. A deadline hit returns kTimeLimit with best-effort values
  // (the current basic solution), mirroring kIterationLimit. Deterministic
  // runs must leave this at 0: which pivot trips the check depends on the
  // host's clock.
  double time_limit_seconds = 0.0;
};

// Persistent simplex engine (ISSUE 8). One engine instance can be loaded
// once and re-solved many times: across branch-and-bound nodes (bound
// overrides + dual-simplex child re-solves) and, via IncrementalLp, across
// scheduling rounds (parameter deltas against a kept factorization). All
// working buffers -- sparse columns, the dense basis inverse, pricing and
// ratio-test scratch -- are members that retain their heap capacity, so a
// steady-state re-solve performs no allocations.
//
// The engine copies everything it needs out of the LinearProgram at Load()
// time and never references it afterwards, which is what makes it safe to
// persist beyond the LP's lifetime.
class SimplexEngine {
 public:
  SimplexEngine() = default;

  // Loads a fresh program, discarding any previous program and basis (heap
  // capacity is retained). `options` governs every subsequent solve until
  // the next Load; set_options() can refresh them (e.g. per-node deadlines).
  void Load(const LinearProgram& lp, const SimplexOptions& options);
  void set_options(const SimplexOptions& options);
  bool loaded() const { return loaded_; }
  int num_structural() const { return n_structural_; }
  int num_rows() const { return m_; }

  // Full solve with SolveLp's historical semantics: an options_.warm_basis
  // hint is validated (size / basic count / non-singularity / primal
  // feasibility under current bounds) and silently dropped on any mismatch;
  // otherwise the crash basis + phase 1 run. Leaves the engine's basis and
  // factorization installed for later ResolveFromBasis calls.
  LpSolution Solve();

  // Cold solve from the crash basis using the engine's *current* parameter
  // state (bounds / costs / rhs, including any Set* deltas applied since
  // Load). Ignores options_.warm_basis. This is the "existing primal
  // phase-1 path" every incremental route falls back to.
  LpSolution SolveFresh();

  // --- persistent-session parameter deltas -------------------------------
  // These edit the loaded program in place without touching the basis or
  // its factorization; a following ResolveFromBasis (or SolveFresh) picks
  // them up. Bound deltas on nonbasic variables are re-clamped inside
  // ResolveFromBasis, so call order does not matter.
  void SetObjectiveCoefficient(int var, double coeff);
  void SetVariableBounds(int var, double lower, double upper);
  void SetRhs(int row, double rhs);
  double structural_lower(int var) const { return lower_[var]; }
  double structural_upper(int var) const { return upper_[var]; }

  // Installs an externally-captured basis (structural + slack states) on
  // the loaded program: assigns basic variables to rows in index order,
  // refactorizes, and recomputes basic values. Unlike the warm path inside
  // Solve(), does NOT reject a primal-infeasible basis -- that is exactly
  // the case the dual simplex phase of ResolveFromBasis handles. Returns
  // false (engine basis invalidated) on size mismatch, wrong basic count,
  // a nonbasic state pointing at an infinite bound, or a singular basis.
  bool InstallBasis(const SimplexBasis& basis);
  // Raw-span variant for callers that keep basis snapshots in arena storage
  // (the B&B node pool): same validation and effect.
  bool InstallBasis(const uint8_t* state, size_t size);

  // True while a solved (or installed) basis and its factorization are
  // live, i.e. ResolveFromBasis may be called.
  bool has_factorized_basis() const { return basis_live_; }

  // Re-solves from the currently-installed basis after parameter deltas:
  // re-clamps nonbasic variables onto the (possibly new) bounds, recomputes
  // basic values, runs the dual simplex phase if the basis went primal-
  // infeasible, then finishes with primal phase-2 pivots. Never runs
  // phase 1. Returns false ("needs cold") when the basis cannot be reused:
  // a nonbasic state became incompatible with its bounds, or the dual phase
  // stalled / hit its pivot cap; the caller must then fall back to
  // SolveFresh(). Pivots spent on a failed attempt are reported in
  // `solution.iterations` so callers can account for them.
  bool ResolveFromBasis(LpSolution& solution);

  // Per-solve counters for the observability layer, reset by every Solve /
  // SolveFresh / ResolveFromBasis call.
  int last_dual_iterations() const { return dual_iterations_; }

 private:
  enum class VarState : uint8_t {
    kBasic,
    kAtLower,
    kAtUpper,
    kNonbasicFree,  // Free variable resting at zero.
  };

  struct SparseColumn {
    std::vector<int> rows;
    std::vector<double> values;
  };

  // --- setup ---
  void BuildColumns(const LinearProgram& lp);
  void InitializeBasis();
  // Attempts to install `hint` as the starting basis. On success the solver
  // is primal-feasible and phase 1 can be skipped entirely. On failure the
  // working state is garbage and the caller must run InitializeBasis().
  bool TryWarmBasis(const SimplexBasis& hint);
  // Drops any artificial columns a previous InitializeBasis appended.
  void TruncateArtificials();
  // Shared InstallBasis/ResolveFromBasis prologue: re-clamps every nonbasic
  // variable onto its current bound. Returns false when a nonbasic state
  // points at an infinite bound (the same condition InstallBasis rejects).
  bool ReclampNonbasics();

  // --- iteration machinery ---
  // Runs primal simplex pivots until optimal w.r.t. `cost_` or a limit is
  // reached. A tentative optimum (no priced candidate) is confirmed by a
  // canonicalizing refactorization + fresh duals + full pricing pass before
  // kOptimal is returned, so incrementally-maintained duals can never
  // terminate the solve early.
  SolveStatus Iterate();
  // One full pricing pass with the current duals; returns the entering
  // variable (or -1) and its direction sign. When `partial` is set, scans
  // cyclic blocks from pricing_cursor_ and returns the best candidate of
  // the first block containing one.
  int PriceEntering(bool partial, double& entering_sign);
  // Dual simplex phase: from a dual-feasible basis, pivots until primal
  // feasibility is restored (true) or the phase must give up (false:
  // dual-infeasible pricing state, stall, or pivot cap). A proven
  // primal-infeasible program sets `proven_infeasible`.
  bool IterateDual(bool& proven_infeasible);
  void ComputeDuals(std::vector<double>& y) const;
  double ReducedCost(int var, const std::vector<double>& y) const;
  void ComputeDirection(int var, std::vector<double>& w) const;
  // Applies one pivot (entering enters at leaving_row) to basis_, state_,
  // binv_, and the maintained duals. `d_entering` is the entering reduced
  // cost before the pivot; `w` its direction B^-1 A_e.
  void ApplyPivot(int entering, int leaving_row, double d_entering,
                  const std::vector<double>& w, VarState leaving_state);
  // Reorders basis_ so basic variables are assigned to rows in index order
  // -- the same canonical order TryWarmBasis / InstallBasis produce.
  void CanonicalizeBasis();
  void Refactorize();
  bool TryRefactorize();
  void RecomputeBasicValues();
  void CaptureBasis(LpSolution& solution) const;
  // Shared phase-2 + extraction tail of Solve / SolveFresh /
  // ResolveFromBasis.
  void FinishSolve(LpSolution& solution, SolveStatus status);
  // Common body of Solve (warm_hint = options_.warm_basis) and SolveFresh
  // (warm_hint = nullptr).
  LpSolution SolveInternal(const SimplexBasis* warm_hint);

  void CertifyOptimal(bool* unique_basis, bool* unique_solution) const;
  bool OutOfTime() const;

  int num_total() const { return static_cast<int>(columns_.size()); }

  SimplexOptions options_;
  bool loaded_ = false;
  bool basis_live_ = false;
  int m_ = 0;               // Number of rows.
  int n_structural_ = 0;    // Number of original variables.
  int first_artificial_ = 0;
  double sense_sign_ = 1.0;  // +1 maximize, -1 minimize (applied to costs).

  std::vector<SparseColumn> columns_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;        // Active phase cost.
  std::vector<double> phase2_cost_; // Sense-normalized objective.
  std::vector<double> obj_coeff_;   // Raw objective (solution extraction).
  std::vector<double> rhs_;

  std::vector<int> basis_;          // Row -> basic variable.
  std::vector<int> row_of_basic_;   // Var -> row (or -1).
  std::vector<VarState> state_;
  std::vector<double> x_;
  std::vector<double> binv_;        // Dense m x m, row-major.

  // Maintained duals for the active phase cost; refreshed from scratch at
  // every refactorization and before any optimality claim.
  std::vector<double> y_;

  // Reusable solve scratch (zero steady-state allocations).
  std::vector<double> w_scratch_;
  std::vector<double> residual_scratch_;
  std::vector<double> alpha_scratch_;
  std::vector<double> factor_scratch_;
  std::vector<int> canon_scratch_;

  int iterations_ = 0;
  int dual_iterations_ = 0;
  int max_iterations_ = 0;
  int degenerate_streak_ = 0;
  bool bland_mode_ = false;
  int pricing_cursor_ = 0;
  int pivots_since_refactor_ = 0;
  // Whether the final optimum was reached through the canonicalizing
  // refactorization (false only when that refactorization failed
  // numerically); gates the uniqueness certificate and basis retention.
  bool refactorized_at_optimal_ = false;

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

// Solves the LP relaxation of `lp` (integrality markers ignored).
LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace sia

#endif  // SIA_SRC_SOLVER_SIMPLEX_H_
