#include "src/solver/lp_model.h"

#include <map>

#include "src/common/check.h"

namespace sia {

int LinearProgram::AddVariable(double lower, double upper, double objective, std::string name) {
  SIA_CHECK(lower <= upper) << "variable bounds [" << lower << ", " << upper << "]";
  objective_.push_back(objective);
  lower_.push_back(lower);
  upper_.push_back(upper);
  integer_.push_back(false);
  var_names_.push_back(std::move(name));
  return num_variables() - 1;
}

int LinearProgram::AddBinaryVariable(double objective, std::string name) {
  const int var = AddVariable(0.0, 1.0, objective, std::move(name));
  integer_[var] = true;
  return var;
}

int LinearProgram::AddConstraint(ConstraintOp op, double rhs, std::vector<LpTerm> terms,
                                 std::string name) {
  // Merge duplicate indices so the simplex sees clean sparse columns.
  std::map<int, double> merged;
  for (const auto& [var, coeff] : terms) {
    SIA_CHECK(var >= 0 && var < num_variables()) << "constraint references variable " << var;
    merged[var] += coeff;
  }
  std::vector<LpTerm> row;
  row.reserve(merged.size());
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) {
      row.emplace_back(var, coeff);
    }
  }
  rows_.push_back(std::move(row));
  ops_.push_back(op);
  rhs_.push_back(rhs);
  row_names_.push_back(std::move(name));
  return num_constraints() - 1;
}

void LinearProgram::SetObjectiveCoefficient(int var, double coeff) {
  SIA_CHECK(var >= 0 && var < num_variables());
  objective_[var] = coeff;
}

void LinearProgram::SetVariableBounds(int var, double lower, double upper) {
  SIA_CHECK(var >= 0 && var < num_variables());
  SIA_CHECK(lower <= upper) << "variable bounds [" << lower << ", " << upper << "]";
  lower_[var] = lower;
  upper_[var] = upper;
}

void LinearProgram::SetInteger(int var, bool is_integer) {
  SIA_CHECK(var >= 0 && var < num_variables());
  integer_[var] = is_integer;
}

const char* ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNodeLimit:
      return "node-limit";
    case SolveStatus::kTimeLimit:
      return "time-limit";
  }
  return "?";
}

}  // namespace sia
