#include "src/solver/lp_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace sia {

int LinearProgram::AddVariable(double lower, double upper, double objective, std::string name) {
  SIA_CHECK(lower <= upper) << "variable bounds [" << lower << ", " << upper << "]";
  objective_.push_back(objective);
  lower_.push_back(lower);
  upper_.push_back(upper);
  integer_.push_back(false);
  var_names_.push_back(std::move(name));
  return num_variables() - 1;
}

int LinearProgram::AddBinaryVariable(double objective, std::string name) {
  const int var = AddVariable(0.0, 1.0, objective, std::move(name));
  integer_[var] = true;
  return var;
}

int LinearProgram::AddConstraint(ConstraintOp op, double rhs, const LpEntry* terms,
                                 size_t num_terms, std::string name) {
  const int row_index = static_cast<int>(rhs_.size());
  if (static_cast<size_t>(row_index) == rows_.size()) {
    rows_.emplace_back();
  }
  // Reuses the heap of whatever row occupied this slot before the last
  // Reset(); a round that rebuilds a same-shaped program row by row touches
  // the allocator zero times here.
  std::vector<LpTerm>& row = rows_[row_index];
  row.clear();
  row.reserve(num_terms);
  for (size_t i = 0; i < num_terms; ++i) {
    row.emplace_back(terms[i].var, terms[i].coeff);
  }
  return SealConstraint(op, rhs, std::move(name));
}

int LinearProgram::AddConstraint(ConstraintOp op, double rhs, std::vector<LpTerm> terms,
                                 std::string name) {
  const int row_index = static_cast<int>(rhs_.size());
  if (static_cast<size_t>(row_index) == rows_.size()) {
    rows_.emplace_back();
  }
  rows_[row_index] = std::move(terms);
  return SealConstraint(op, rhs, std::move(name));
}

// Validates, canonicalizes, and registers rows_[rhs_.size()], which the
// AddConstraint overloads have just filled.
int LinearProgram::SealConstraint(ConstraintOp op, double rhs, std::string name) {
  const int row_index = static_cast<int>(rhs_.size());
  std::vector<LpTerm>& row = rows_[row_index];
  for (const auto& [var, coeff] : row) {
    (void)coeff;
    SIA_CHECK(var >= 0 && var < num_variables()) << "constraint references variable " << var;
  }
  // Merge duplicate indices so the simplex sees clean sparse columns. The
  // stable sort keeps duplicate terms in input order, so each variable's
  // coefficients are summed in the same order the historical std::map-based
  // merge used -- bit-identical rows.
  std::stable_sort(row.begin(), row.end(),
                   [](const LpTerm& a, const LpTerm& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < row.size();) {
    const int var = row[i].first;
    double sum = 0.0;
    for (; i < row.size() && row[i].first == var; ++i) {
      sum += row[i].second;
    }
    if (sum != 0.0) {
      row[out++] = {var, sum};
    }
  }
  row.resize(out);
  ops_.push_back(op);
  rhs_.push_back(rhs);
  row_names_.push_back(std::move(name));
  return row_index;
}

void LinearProgram::Reset(ObjectiveSense sense) {
  sense_ = sense;
  objective_.clear();
  lower_.clear();
  upper_.clear();
  integer_.clear();
  var_names_.clear();
  ops_.clear();
  rhs_.clear();
  row_names_.clear();
  // rows_ is deliberately kept: row slots beyond rhs_.size() are dead until
  // AddConstraint re-populates them, and their retained heap is what makes
  // the rebuild allocation-free.
}

void LinearProgram::SetObjectiveCoefficient(int var, double coeff) {
  SIA_CHECK(var >= 0 && var < num_variables());
  objective_[var] = coeff;
}

void LinearProgram::SetVariableBounds(int var, double lower, double upper) {
  SIA_CHECK(var >= 0 && var < num_variables());
  SIA_CHECK(lower <= upper) << "variable bounds [" << lower << ", " << upper << "]";
  lower_[var] = lower;
  upper_[var] = upper;
}

void LinearProgram::SetInteger(int var, bool is_integer) {
  SIA_CHECK(var >= 0 && var < num_variables());
  integer_[var] = is_integer;
}

const char* ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNodeLimit:
      return "node-limit";
    case SolveStatus::kTimeLimit:
      return "time-limit";
  }
  return "?";
}

}  // namespace sia
