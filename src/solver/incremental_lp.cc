#include "src/solver/incremental_lp.h"

#include <cstring>

namespace sia {

namespace {
inline void Mix(uint64_t& h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;  // FNV-1a prime.
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
}  // namespace

uint64_t LpStructureFingerprint(const LinearProgram& lp) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  Mix(h, static_cast<uint64_t>(lp.num_variables()));
  Mix(h, static_cast<uint64_t>(lp.num_constraints()));
  for (int j = 0; j < lp.num_variables(); ++j) {
    Mix(h, lp.is_integer(j) ? 1u : 0u);
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    Mix(h, static_cast<uint64_t>(lp.constraint_op(i)));
    const auto& terms = lp.row_terms(i);
    Mix(h, static_cast<uint64_t>(terms.size()));
    for (const auto& [var, coeff] : terms) {
      Mix(h, static_cast<uint64_t>(var));
      Mix(h, DoubleBits(coeff));
    }
  }
  return h;
}

void IncrementalLp::ApplyParameters(const LinearProgram& lp) {
  for (int j = 0; j < lp.num_variables(); ++j) {
    engine_.SetObjectiveCoefficient(j, lp.objective_coefficient(j));
    engine_.SetVariableBounds(j, lp.lower_bound(j), lp.upper_bound(j));
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    engine_.SetRhs(i, lp.rhs(i));
  }
}

bool IncrementalLp::TryIncrementalRoot(const LinearProgram& lp, const SimplexOptions& options,
                                       const SimplexBasis* hint, uint64_t hint_fingerprint,
                                       LpSolution* solution) {
  ++stats_.root_solves;
  pending_attempted_ = false;
  pending_discarded_ = 0;
  const uint64_t fp = LpStructureFingerprint(lp);
  pending_fingerprint_ = fp;
  SimplexOptions opts = options;
  opts.warm_basis = nullptr;  // The session manages its own basis reuse.
  opts.capture_basis = true;

  bool resolved = false;
  if (retained_ && engine_.has_factorized_basis() && fp == fingerprint_) {
    // Live path: parameter deltas against the retained factorization.
    ApplyParameters(lp);
    engine_.set_options(opts);
    pending_attempted_ = true;
    resolved = engine_.ResolveFromBasis(*solution);
    stats_.dual_pivots += engine_.last_dual_iterations();
    if (!resolved) {
      pending_discarded_ += solution->iterations;
    }
  } else if (hint != nullptr && !hint->empty() && hint_fingerprint == fp) {
    // Rebuild path (first use after a checkpoint restore): load the program
    // and install the serialized basis. The canonicalizing refactorization
    // makes the resulting engine state bit-identical to the live path's, so
    // the pivot sequence -- and every iteration-count metric derived from
    // it -- replays exactly.
    engine_.Load(lp, opts);
    fingerprint_ = fp;
    retained_ = false;
    if (engine_.InstallBasis(*hint)) {
      pending_attempted_ = true;
      resolved = engine_.ResolveFromBasis(*solution);
      stats_.dual_pivots += engine_.last_dual_iterations();
      if (!resolved) {
        pending_discarded_ += solution->iterations;
      }
    }
  } else if (retained_ && fp != fingerprint_) {
    ++stats_.structure_mismatches;
  }
  return resolved;
}

void IncrementalLp::AcceptRoot() {
  ++stats_.incremental_roots;
  engine_dirty_ = false;
  pending_attempted_ = false;
  pending_discarded_ = 0;
}

LpSolution IncrementalLp::ColdRoot(const LinearProgram& lp, const SimplexOptions& options,
                                   int rejected_iterations) {
  SimplexOptions opts = options;
  opts.warm_basis = nullptr;
  opts.capture_basis = true;
  pending_discarded_ += rejected_iterations;
  if (pending_attempted_) {
    ++stats_.cold_fallbacks;
    stats_.discarded_pivots += pending_discarded_;
  }

  // From-scratch path: fresh load + cold primal two-phase solve, exactly
  // what a session-less caller runs. Pivots burned on the rejected attempt
  // are surfaced in the iteration total so solver-effort metrics stay
  // honest.
  engine_.Load(lp, opts);
  fingerprint_ = pending_fingerprint_;
  LpSolution solution = engine_.SolveFresh();
  solution.iterations += pending_discarded_;
  engine_dirty_ = false;
  pending_attempted_ = false;
  pending_discarded_ = 0;
  return solution;
}

void IncrementalLp::FinalizeRound(const SimplexBasis& root_basis, bool root_retainable) {
  if (!root_retainable || root_basis.empty()) {
    Invalidate();
    return;
  }
  if (engine_dirty_) {
    if (!engine_.InstallBasis(root_basis)) {
      Invalidate();
      return;
    }
    engine_dirty_ = false;
  }
  retained_ = engine_.has_factorized_basis();
}

void IncrementalLp::Invalidate() {
  retained_ = false;
  engine_dirty_ = false;
}

}  // namespace sia
