#include "src/solver/milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/check.h"

namespace sia {
namespace {

struct BranchNode {
  // Bound overrides accumulated along the branch, (var, lower, upper).
  std::vector<std::tuple<int, double, double>> overrides;
  double bound;  // LP objective of the parent (max-normalized).
  int depth;
};

// True when the program is "packing-shaped": every constraint is <= and all
// integer variables have non-negative coefficients everywhere, so flooring
// integer values can never break feasibility.
bool IsPackingShaped(const LinearProgram& lp) {
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) {
      continue;
    }
    // Integer bounds must themselves be integral for flooring to be safe.
    const double lo = lp.lower_bound(j);
    if (std::isfinite(lo) && std::abs(lo - std::round(lo)) > 1e-9) {
      return false;
    }
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    if (lp.constraint_op(i) != ConstraintOp::kLessEq) {
      return false;
    }
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      if (lp.is_integer(var) && coeff < 0.0) {
        return false;
      }
    }
  }
  return true;
}

// Rounds an LP-relaxation point to an integral feasible point: floor all
// integer variables, then greedily bump the most promising fractional ones
// back up while every row stays within its rhs. Returns the objective in
// max-normalized form via `sign`.
std::pair<double, std::vector<double>> PackingRound(const LinearProgram& lp,
                                                    const std::vector<double>& relaxed,
                                                    double sign) {
  std::vector<double> values = relaxed;
  std::vector<double> activity(lp.num_constraints(), 0.0);
  std::vector<std::tuple<double, int, double>> bump_candidates;  // (score, var, frac)
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) {
      continue;
    }
    const double floored = std::floor(values[j] + 1e-9);
    const double frac = values[j] - floored;
    values[j] = floored;
    if (frac > 1e-6 && floored + 1.0 <= lp.upper_bound(j) + 1e-9 &&
        sign * lp.objective_coefficient(j) > 0.0) {
      bump_candidates.emplace_back(frac * sign * lp.objective_coefficient(j), j, frac);
    }
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      activity[i] += coeff * values[var];
    }
  }
  // Most valuable fractional variables first.
  std::sort(bump_candidates.begin(), bump_candidates.end(),
            [](const auto& a, const auto& b) { return std::get<0>(a) > std::get<0>(b); });
  // Row membership for quick feasibility checks.
  std::vector<std::vector<std::pair<int, double>>> rows_of_var(lp.num_variables());
  for (int i = 0; i < lp.num_constraints(); ++i) {
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      rows_of_var[var].emplace_back(i, coeff);
    }
  }
  for (const auto& [score, var, frac] : bump_candidates) {
    bool fits = true;
    for (const auto& [row, coeff] : rows_of_var[var]) {
      if (activity[row] + coeff > lp.rhs(row) + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      continue;
    }
    values[var] += 1.0;
    for (const auto& [row, coeff] : rows_of_var[var]) {
      activity[row] += coeff;
    }
  }
  double objective = 0.0;
  for (int j = 0; j < lp.num_variables(); ++j) {
    objective += lp.objective_coefficient(j) * values[j];
  }
  return {sign * objective, std::move(values)};
}

// Finds the integral variable whose LP value is most fractional.
int MostFractional(const LinearProgram& lp, const std::vector<double>& values, double tol) {
  int best = -1;
  double best_dist = tol;
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) {
      continue;
    }
    const double frac = values[j] - std::floor(values[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

MilpSolution SolveMilp(const LinearProgram& lp, const MilpOptions& options) {
  MilpSolution result;
  const bool maximizing = lp.objective_sense() == ObjectiveSense::kMaximize;
  // Normalize: internally we compare objectives as "bigger is better".
  const double sign = maximizing ? 1.0 : -1.0;

  // Mutable copy whose bounds we override per node.
  LinearProgram working = lp;
  const bool use_rounding = options.packing_rounding && IsPackingShaped(lp);

  double incumbent_obj = -kLpInfinity;
  std::vector<double> incumbent_values;
  bool have_incumbent = false;

  // Depth-first stack; diving finds incumbents quickly and the near-integral
  // relaxation keeps the stack shallow.
  std::vector<BranchNode> stack;
  stack.push_back({{}, kLpInfinity, 0});

  const auto start_time = std::chrono::steady_clock::now();
  auto out_of_time = [&]() {
    if (options.time_limit_seconds <= 0.0) {
      return false;
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_time;
    return elapsed.count() >= options.time_limit_seconds;
  };

  int nodes = 0;
  int lp_iterations = 0;
  bool hit_node_limit = false;
  bool hit_time_limit = false;
  while (!stack.empty()) {
    if (nodes >= options.max_nodes) {
      hit_node_limit = true;
      break;
    }
    if (out_of_time()) {
      hit_time_limit = true;
      break;
    }
    BranchNode node = std::move(stack.back());
    stack.pop_back();
    if (have_incumbent && node.bound <= incumbent_obj + std::abs(incumbent_obj) *
                                                            options.relative_gap) {
      continue;  // Pruned by bound.
    }

    // Apply overrides.
    std::vector<std::tuple<int, double, double>> saved;
    saved.reserve(node.overrides.size());
    bool bounds_ok = true;
    for (const auto& [var, lo, hi] : node.overrides) {
      saved.emplace_back(var, working.lower_bound(var), working.upper_bound(var));
      if (lo > hi) {
        bounds_ok = false;
        break;
      }
      working.SetVariableBounds(var, lo, hi);
    }

    LpSolution relaxation;
    if (bounds_ok) {
      relaxation = SolveLp(working, options.simplex);
      ++nodes;
      lp_iterations += relaxation.iterations;
    }

    // Restore bounds before any continue/branch bookkeeping.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      working.SetVariableBounds(std::get<0>(*it), std::get<1>(*it), std::get<2>(*it));
    }

    if (!bounds_ok || relaxation.status == SolveStatus::kInfeasible) {
      continue;
    }
    if (relaxation.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      result.nodes_explored = nodes;
      result.lp_iterations = lp_iterations;
      return result;
    }
    if (relaxation.status == SolveStatus::kIterationLimit) {
      continue;  // Treat as unexplorable; conservative but safe.
    }

    const double node_obj = sign * relaxation.objective;
    if (have_incumbent &&
        node_obj <= incumbent_obj + std::abs(incumbent_obj) * options.relative_gap) {
      continue;
    }

    if (use_rounding) {
      // Build a feasible integral incumbent from this relaxation; with the
      // near-integral relaxations of Sia's scheduling ILP this usually
      // closes the gap at the root node.
      auto [rounded_obj, rounded_values] = PackingRound(lp, relaxation.values, sign);
      if (!have_incumbent || rounded_obj > incumbent_obj) {
        incumbent_obj = rounded_obj;
        incumbent_values = std::move(rounded_values);
        have_incumbent = true;
      }
      if (node_obj <= incumbent_obj + std::abs(incumbent_obj) * options.relative_gap) {
        continue;  // Relaxation bound already met by the rounded incumbent.
      }
    }

    const int branch_var = MostFractional(lp, relaxation.values, options.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      if (!have_incumbent || node_obj > incumbent_obj) {
        incumbent_obj = node_obj;
        incumbent_values = relaxation.values;
        // Snap integral variables exactly.
        for (int j = 0; j < lp.num_variables(); ++j) {
          if (lp.is_integer(j)) {
            incumbent_values[j] = std::round(incumbent_values[j]);
          }
        }
        have_incumbent = true;
      }
      continue;
    }

    // Branch: child with the rounded-toward side first popped (pushed last)
    // to dive toward integrality.
    const double value = relaxation.values[branch_var];
    const double floor_value = std::floor(value);

    BranchNode up_child{node.overrides, node_obj, node.depth + 1};
    up_child.overrides.emplace_back(branch_var,
                                    std::max(working.lower_bound(branch_var), floor_value + 1.0),
                                    working.upper_bound(branch_var));
    BranchNode down_child{std::move(node.overrides), node_obj, node.depth + 1};
    down_child.overrides.emplace_back(branch_var, working.lower_bound(branch_var),
                                      std::min(working.upper_bound(branch_var), floor_value));

    if (value - floor_value > 0.5) {
      stack.push_back(std::move(down_child));
      stack.push_back(std::move(up_child));
    } else {
      stack.push_back(std::move(up_child));
      stack.push_back(std::move(down_child));
    }
  }

  result.nodes_explored = nodes;
  result.lp_iterations = lp_iterations;
  if (!have_incumbent) {
    result.status = hit_time_limit ? SolveStatus::kTimeLimit
                    : hit_node_limit ? SolveStatus::kNodeLimit
                                     : SolveStatus::kInfeasible;
    return result;
  }
  result.status = hit_time_limit   ? SolveStatus::kTimeLimit
                  : hit_node_limit ? SolveStatus::kNodeLimit
                                   : SolveStatus::kOptimal;
  result.objective = sign * incumbent_obj;
  result.values = std::move(incumbent_values);
  return result;
}

}  // namespace sia
