#include "src/solver/milp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/arena.h"
#include "src/common/check.h"

namespace sia {
namespace {

// One bound override accumulated along a branch.
struct BoundOverride {
  int var;
  double lower;
  double upper;
};

// B&B node state lives in per-solve arena pools (ISSUE 8): a node's override
// chain and its parent-basis snapshot are (begin, count) ranges into
// append-only ArenaVectors, so expanding a node performs no individual
// allocations and both children share one basis snapshot. Trivially
// copyable, which is what lets the heap itself be an ArenaVector.
struct BranchNode {
  uint32_t overrides_begin;  // Range into the override pool.
  uint32_t overrides_count;
  double bound;  // LP objective of the parent (max-normalized).
  int depth;
  // Creation order; the deterministic tie-break of the best-first heap.
  long long seq;
  uint32_t basis_begin;  // Parent basis snapshot in the basis pool.
  uint32_t basis_count;  // 0 = none; the simplex falls back to cold.
};

// Best-first ordering: highest bound wins; among equal bounds the deeper
// node (diving toward integrality) wins; among those, the earlier-created
// node wins so the exploration order is deterministic.
struct NodeWorse {
  bool operator()(const BranchNode& a, const BranchNode& b) const {
    if (a.bound != b.bound) {
      return a.bound < b.bound;
    }
    if (a.depth != b.depth) {
      return a.depth < b.depth;
    }
    return a.seq > b.seq;
  }
};

// True when `values` is an integral feasible point of `lp` -- the gate for
// accepting a previous round's incumbent as this round's starting bound.
bool IsFeasibleIntegral(const LinearProgram& lp, const std::vector<double>& values,
                        double integrality_tol) {
  constexpr double kFeasTol = 1e-6;
  if (static_cast<int>(values.size()) != lp.num_variables()) {
    return false;
  }
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (values[j] < lp.lower_bound(j) - kFeasTol || values[j] > lp.upper_bound(j) + kFeasTol) {
      return false;
    }
    if (lp.is_integer(j) && std::abs(values[j] - std::round(values[j])) > integrality_tol) {
      return false;
    }
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    double activity = 0.0;
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      activity += coeff * values[var];
    }
    switch (lp.constraint_op(i)) {
      case ConstraintOp::kLessEq:
        if (activity > lp.rhs(i) + kFeasTol) {
          return false;
        }
        break;
      case ConstraintOp::kGreaterEq:
        if (activity < lp.rhs(i) - kFeasTol) {
          return false;
        }
        break;
      case ConstraintOp::kEqual:
        if (std::abs(activity - lp.rhs(i)) > kFeasTol) {
          return false;
        }
        break;
    }
  }
  return true;
}

// True when the program is "packing-shaped": every constraint is <= and all
// integer variables have non-negative coefficients everywhere, so flooring
// integer values can never break feasibility.
bool IsPackingShaped(const LinearProgram& lp) {
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) {
      continue;
    }
    // Integer bounds must themselves be integral for flooring to be safe.
    const double lo = lp.lower_bound(j);
    if (std::isfinite(lo) && std::abs(lo - std::round(lo)) > 1e-9) {
      return false;
    }
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    if (lp.constraint_op(i) != ConstraintOp::kLessEq) {
      return false;
    }
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      if (lp.is_integer(var) && coeff < 0.0) {
        return false;
      }
    }
  }
  return true;
}

// Rounds an LP-relaxation point to an integral feasible point: floor all
// integer variables, then greedily bump the most promising fractional ones
// back up while every row stays within its rhs. Returns the objective in
// max-normalized form via `sign`.
std::pair<double, std::vector<double>> PackingRound(const LinearProgram& lp,
                                                    const std::vector<double>& relaxed,
                                                    double sign) {
  std::vector<double> values = relaxed;
  std::vector<double> activity(lp.num_constraints(), 0.0);
  std::vector<std::tuple<double, int, double>> bump_candidates;  // (score, var, frac)
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) {
      continue;
    }
    const double floored = std::floor(values[j] + 1e-9);
    const double frac = values[j] - floored;
    values[j] = floored;
    if (frac > 1e-6 && floored + 1.0 <= lp.upper_bound(j) + 1e-9 &&
        sign * lp.objective_coefficient(j) > 0.0) {
      bump_candidates.emplace_back(frac * sign * lp.objective_coefficient(j), j, frac);
    }
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      activity[i] += coeff * values[var];
    }
  }
  // Most valuable fractional variables first.
  std::sort(bump_candidates.begin(), bump_candidates.end(),
            [](const auto& a, const auto& b) { return std::get<0>(a) > std::get<0>(b); });
  // Row membership for quick feasibility checks.
  std::vector<std::vector<std::pair<int, double>>> rows_of_var(lp.num_variables());
  for (int i = 0; i < lp.num_constraints(); ++i) {
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      rows_of_var[var].emplace_back(i, coeff);
    }
  }
  for (const auto& [score, var, frac] : bump_candidates) {
    bool fits = true;
    for (const auto& [row, coeff] : rows_of_var[var]) {
      if (activity[row] + coeff > lp.rhs(row) + 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      continue;
    }
    values[var] += 1.0;
    for (const auto& [row, coeff] : rows_of_var[var]) {
      activity[row] += coeff;
    }
  }
  double objective = 0.0;
  for (int j = 0; j < lp.num_variables(); ++j) {
    objective += lp.objective_coefficient(j) * values[j];
  }
  return {sign * objective, std::move(values)};
}

// Canonical, basis-independent rounding for integral root vertices. When
// every variable of an optimal relaxation sits within tolerance of one of
// its bounds, the vertex is determined by its bound pattern alone: snap each
// value exactly to the nearer bound and recompute the objective in index
// order. Two solves that reach the same unique optimal *solution* through
// different bases (primal degeneracy -- the norm for Sia's near-integral
// scheduling LPs, where most basic binaries rest exactly on 0/1) then report
// byte-identical values and objective, which is what lets the incremental
// session's byte-identity gate accept a degenerate-but-unique-solution
// answer. Returns false, leaving the solution untouched, when any variable
// is interior. Idempotent: re-snapping snapped values is a no-op.
bool SnapIntegralRoot(const LinearProgram& lp, LpSolution* solution) {
  constexpr double kSnapTol = 1e-6;
  const int n = lp.num_variables();
  if (static_cast<int>(solution->values.size()) != n) {
    return false;
  }
  for (int j = 0; j < n; ++j) {
    const double lo = lp.lower_bound(j);
    const double hi = lp.upper_bound(j);
    const double v = solution->values[j];
    if (!(std::isfinite(lo) && std::abs(v - lo) <= kSnapTol) &&
        !(std::isfinite(hi) && std::abs(v - hi) <= kSnapTol)) {
      return false;
    }
  }
  double objective = 0.0;
  for (int j = 0; j < n; ++j) {
    const double lo = lp.lower_bound(j);
    double& v = solution->values[j];
    // Lower bound wins a (pathological) tie, deterministically.
    v = std::isfinite(lo) && std::abs(v - lo) <= kSnapTol ? lo : lp.upper_bound(j);
    objective += lp.objective_coefficient(j) * v;
  }
  solution->objective = objective;
  return true;
}

// The byte-identity accept predicate shared by the incremental session's
// root gate and the session-less warm-root redo gate: the answer provably
// equals the from-scratch one when it is an infeasibility proof, carries a
// certified-unique optimal basis, or carries a certified-unique optimal
// solution whose integral vertex was snapped to its canonical bound pattern.
bool RootAnswerCanonical(const LpSolution& solution, bool snapped) {
  if (solution.status == SolveStatus::kInfeasible) {
    return true;
  }
  return solution.status == SolveStatus::kOptimal &&
         (solution.unique_optimal_basis ||
          (solution.unique_optimal_solution && snapped));
}

// Finds the integral variable whose LP value is most fractional.
int MostFractional(const LinearProgram& lp, const std::vector<double>& values, double tol) {
  int best = -1;
  double best_dist = tol;
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) {
      continue;
    }
    const double frac = values[j] - std::floor(values[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

MilpSolution SolveMilp(const LinearProgram& lp, const MilpOptions& options) {
  MilpSolution result;
  const bool maximizing = lp.objective_sense() == ObjectiveSense::kMaximize;
  // Normalize: internally we compare objectives as "bigger is better".
  const double sign = maximizing ? 1.0 : -1.0;

  const bool use_rounding = options.packing_rounding && IsPackingShaped(lp);

  // One simplex engine -- columns, factorized basis inverse, pricing and
  // ratio-test scratch -- serves every branch-and-bound node: bound
  // overrides are applied in place and children re-solve from their
  // parent's basis through the dual simplex phase (ISSUE 8). With an
  // IncrementalLp session the engine additionally persists across calls.
  SimplexEngine local_engine;
  IncrementalLp* const session = options.session;
  SimplexEngine& engine = session != nullptr ? session->engine() : local_engine;

  double incumbent_obj = -kLpInfinity;
  std::vector<double> incumbent_values;
  bool have_incumbent = false;

  // --- warm start (ISSUE 3) ---
  // The previous round's incumbent is validated but deliberately kept OUT
  // of the branch-and-bound: with a nonzero relative_gap, pruning against a
  // hint-supplied incumbent can cut the very subtree a cold solve would
  // have answered from, steering the search to a *different* near-optimal
  // solution (found by sia_fuzz seed 2). To keep warm starts cost-only, the
  // hint serves purely as a fallback answer when the search itself ends
  // with no incumbent. The basis hint still seeds the root relaxation.
  const MilpWarmStart* warm = options.warm_start;
  const SimplexBasis* root_hint = nullptr;
  double warm_obj = -kLpInfinity;
  std::vector<double> warm_values;
  bool have_warm_fallback = false;
  if (warm != nullptr) {
    if (!warm->incumbent_values.empty() &&
        IsFeasibleIntegral(lp, warm->incumbent_values, options.integrality_tol)) {
      warm_values = warm->incumbent_values;
      for (int j = 0; j < lp.num_variables(); ++j) {
        if (lp.is_integer(j)) {
          warm_values[j] = std::round(warm_values[j]);
        }
      }
      double obj = 0.0;
      for (int j = 0; j < lp.num_variables(); ++j) {
        obj += lp.objective_coefficient(j) * warm_values[j];
      }
      warm_obj = sign * obj;
      have_warm_fallback = true;
    }
    if (!warm->basis.empty()) {
      root_hint = &warm->basis;
    }
  }

  // Node-state arena (ISSUE 8): callers on a hot loop (the scheduler) pass a
  // persistent per-round arena so steady-state solves allocate nothing here;
  // one-shot callers get a local arena with identical behavior.
  ScratchArena local_arena;
  ScratchArena* arena = options.arena != nullptr ? options.arena : &local_arena;
  ArenaVector<BoundOverride> override_pool(arena);
  ArenaVector<uint8_t> basis_pool(arena);

  // Best-first heap: the node with the highest LP bound is explored next,
  // so the tree never expands a node that the final bound proof would have
  // pruned (modulo ties). Kept as a manual heap so nodes can be moved out.
  ArenaVector<BranchNode> heap(arena);
  long long next_seq = 0;
  heap.push_back({0, 0, kLpInfinity, 0, next_seq++, 0, 0});

  const auto start_time = std::chrono::steady_clock::now();
  auto out_of_time = [&]() {
    if (options.time_limit_seconds <= 0.0) {
      return false;
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_time;
    return elapsed.count() >= options.time_limit_seconds;
  };

  int nodes = 0;
  int lp_iterations = 0;
  int warm_started_lps = 0;
  long long pivots_saved = 0;
  // Baseline for the pivots-saved estimate: the most recent cold root's
  // pivot count, carried forward through warm rounds.
  int cold_root_baseline = warm != nullptr ? warm->cold_root_iterations : 0;
  bool root_solved = false;
  bool root_was_warm = false;
  // Whether the root answer passed the byte-identity gate (canonical basis
  // or snapped-unique solution) -- the shared rule for exporting the warm
  // basis and for retaining the incremental session.
  bool root_retainable = false;
  int root_iterations = 0;
  SimplexBasis root_basis;
  bool hit_node_limit = false;
  bool hit_time_limit = false;

  // The session outlives this solve; on every exit path it must either
  // retain the round's root state (certified unique + basis exported, with
  // the root basis reinstalled if children pivoted the engine away) or be
  // invalidated. Scope guard, because the search below returns early.
  struct SessionFinalizer {
    IncrementalLp* session;
    const SimplexBasis* root_basis;
    const bool* root_retainable;
    ~SessionFinalizer() {
      if (session != nullptr) {
        session->FinalizeRound(*root_basis, *root_retainable);
      }
    }
  };
  const SessionFinalizer finalizer{session, &root_basis, &root_retainable};
  while (!heap.empty()) {
    if (nodes >= options.max_nodes) {
      hit_node_limit = true;
      break;
    }
    if (out_of_time()) {
      hit_time_limit = true;
      break;
    }
    std::pop_heap(heap.begin(), heap.end(), NodeWorse{});
    const BranchNode node = heap.back();
    heap.pop_back();
    if (have_incumbent && node.bound <= incumbent_obj + std::abs(incumbent_obj) *
                                                            options.relative_gap) {
      continue;  // Pruned by bound.
    }

    bool bounds_ok = true;
    for (uint32_t k = 0; k < node.overrides_count; ++k) {
      const BoundOverride& ov = override_pool[node.overrides_begin + k];
      if (ov.lower > ov.upper) {
        bounds_ok = false;
        break;
      }
    }

    LpSolution relaxation;
    if (bounds_ok) {
      SimplexOptions node_simplex = options.simplex;
      node_simplex.warm_basis = nullptr;
      node_simplex.capture_basis = true;
      if (options.time_limit_seconds > 0.0) {
        // Confine each node LP to the MILP budget's remainder so a single
        // degenerate relaxation cannot blow the round deadline. out_of_time()
        // was false above, so the remainder is positive.
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start_time;
        const double remaining = options.time_limit_seconds - elapsed.count();
        if (remaining > 0.0 && (node_simplex.time_limit_seconds <= 0.0 ||
                                remaining < node_simplex.time_limit_seconds)) {
          node_simplex.time_limit_seconds = remaining;
        }
      }

      if (node.depth == 0) {
        if (session != nullptr) {
          // Incremental root (ISSUE 8): dual-simplex re-solve from the
          // retained factorization (or a restored serialized basis). The
          // answer stands only when RootAnswerCanonical proves it equals the
          // from-scratch one; anything else is discarded and the session's
          // cold path -- a fresh load + SolveFresh, which IS the
          // from-scratch solve -- runs instead.
          const long long dual_before = session->stats().dual_pivots;
          LpSolution candidate;
          bool accepted = false;
          const bool tried = session->TryIncrementalRoot(
              lp, node_simplex, root_hint, warm != nullptr ? warm->lp_fingerprint : 0,
              &candidate);
          if (tried) {
            const bool snapped = candidate.status == SolveStatus::kOptimal &&
                                 SnapIntegralRoot(lp, &candidate);
            if (RootAnswerCanonical(candidate, snapped)) {
              session->AcceptRoot();
              relaxation = std::move(candidate);
              accepted = true;
            }
          }
          if (!accepted) {
            relaxation = session->ColdRoot(lp, node_simplex,
                                           tried ? candidate.iterations : 0);
          }
          result.dual_pivots += session->stats().dual_pivots - dual_before;
          if (!relaxation.warm_started) {
            ++result.cold_node_solves;
          }
        } else {
          node_simplex.warm_basis = root_hint;
          engine.Load(lp, node_simplex);
          relaxation = engine.Solve();
          if (relaxation.warm_started) {
            // The cross-round basis hint is only allowed to influence the
            // solve when the root answer is canonical (unique basis, or
            // unique solution snapped to its integral vertex) -- otherwise
            // a warm solve can settle on a different (equally optimal)
            // vertex than a cold solve, branch differently, and return a
            // different near-optimal answer (found by sia_fuzz). Redo the
            // root exactly as a cold solve would.
            const bool snapped = relaxation.status == SolveStatus::kOptimal &&
                                 SnapIntegralRoot(lp, &relaxation);
            if (!RootAnswerCanonical(relaxation, snapped)) {
              lp_iterations += relaxation.iterations;
              relaxation = engine.SolveFresh();
            }
          }
          if (!relaxation.warm_started) {
            ++result.cold_node_solves;
          }
        }
      } else {
        // Child node: tighten bounds in place on the shared engine, restart
        // from the parent's optimal basis, and let the dual simplex phase
        // repair the (usually one-variable) primal infeasibility the new
        // bounds introduced. Any rejection falls back to a cold two-phase
        // solve of the same program.
        for (uint32_t k = 0; k < node.overrides_count; ++k) {
          const BoundOverride& ov = override_pool[node.overrides_begin + k];
          engine.SetVariableBounds(ov.var, ov.lower, ov.upper);
        }
        engine.set_options(node_simplex);
        if (session != nullptr) {
          session->MarkEngineDirty();
        }
        bool resolved = false;
        if (node.basis_count > 0 &&
            engine.InstallBasis(basis_pool.data() + node.basis_begin, node.basis_count)) {
          if (engine.ResolveFromBasis(relaxation)) {
            resolved = true;
          } else {
            lp_iterations += relaxation.iterations;  // Burned attempt.
          }
          result.dual_pivots += engine.last_dual_iterations();
        }
        if (!resolved) {
          relaxation = engine.SolveFresh();
          ++result.cold_node_solves;
        }
        // Restore the root bound state (branch values were derived from the
        // original program's bounds, so plain lp bounds are the inverse).
        for (uint32_t k = node.overrides_count; k-- > 0;) {
          const int var = override_pool[node.overrides_begin + k].var;
          engine.SetVariableBounds(var, lp.lower_bound(var), lp.upper_bound(var));
        }
      }

      ++nodes;
      lp_iterations += relaxation.iterations;
      if (relaxation.warm_started) {
        ++warm_started_lps;
        if (cold_root_baseline > 0) {
          pivots_saved +=
              std::max(0, cold_root_baseline - relaxation.iterations);
        }
      }
      if (!root_solved && node.depth == 0) {
        root_solved = true;
        root_was_warm = relaxation.warm_started;
        // Canonical snap on EVERY root path -- incremental, cold fallback,
        // session-less warm or cold -- so all of them report byte-identical
        // values and objective for the dominant all-integral round. A no-op
        // when an earlier gate already snapped this solution.
        bool root_snapped = false;
        if (relaxation.status == SolveStatus::kOptimal) {
          root_snapped = SnapIntegralRoot(lp, &relaxation);
        }
        root_retainable = relaxation.status == SolveStatus::kOptimal &&
                          (relaxation.unique_optimal_basis ||
                           (relaxation.unique_optimal_solution && root_snapped));
        root_iterations = relaxation.iterations;
        root_basis = relaxation.basis;  // Copy; children still need theirs.
      }
    }

    if (!bounds_ok || relaxation.status == SolveStatus::kInfeasible) {
      continue;
    }
    if (relaxation.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      result.nodes_explored = nodes;
      result.lp_iterations = lp_iterations;
      return result;
    }
    if (relaxation.status == SolveStatus::kTimeLimit) {
      hit_time_limit = true;
      break;  // Deadline expired inside the node LP; fall back to the incumbent.
    }
    if (relaxation.status == SolveStatus::kIterationLimit) {
      continue;  // Treat as unexplorable; conservative but safe.
    }

    const double node_obj = sign * relaxation.objective;
    if (have_incumbent &&
        node_obj <= incumbent_obj + std::abs(incumbent_obj) * options.relative_gap) {
      continue;
    }

    if (use_rounding) {
      // Build a feasible integral incumbent from this relaxation; with the
      // near-integral relaxations of Sia's scheduling ILP this usually
      // closes the gap at the root node.
      auto [rounded_obj, rounded_values] = PackingRound(lp, relaxation.values, sign);
      if (!have_incumbent || rounded_obj > incumbent_obj) {
        incumbent_obj = rounded_obj;
        incumbent_values = std::move(rounded_values);
        have_incumbent = true;
      }
      if (node_obj <= incumbent_obj + std::abs(incumbent_obj) * options.relative_gap) {
        continue;  // Relaxation bound already met by the rounded incumbent.
      }
    }

    const int branch_var = MostFractional(lp, relaxation.values, options.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      if (!have_incumbent || node_obj > incumbent_obj) {
        incumbent_obj = node_obj;
        incumbent_values = relaxation.values;
        // Snap integral variables exactly.
        for (int j = 0; j < lp.num_variables(); ++j) {
          if (lp.is_integer(j)) {
            incumbent_values[j] = std::round(incumbent_values[j]);
          }
        }
        have_incumbent = true;
      }
      continue;
    }

    // Branch. Both children share bound node_obj in the best-first heap;
    // the rounded-toward side gets the earlier seq so it pops first among
    // equal bounds (the old diving behavior, now a tie-break).
    const double value = relaxation.values[branch_var];
    const double floor_value = std::floor(value);

    // One basis snapshot in the pool, shared by both children.
    uint32_t basis_begin = 0;
    uint32_t basis_count = 0;
    if (!relaxation.basis.empty()) {
      basis_begin = static_cast<uint32_t>(basis_pool.size());
      basis_count = static_cast<uint32_t>(relaxation.basis.state.size());
      for (const uint8_t s : relaxation.basis.state) {
        basis_pool.push_back(s);
      }
    }
    // Each child's override chain = the parent's chain + one entry, appended
    // contiguously to the pool. Indexing (not pointers) keeps the copy loop
    // safe across pool growth.
    const auto copy_parent_overrides = [&]() {
      const uint32_t begin = static_cast<uint32_t>(override_pool.size());
      for (uint32_t k = 0; k < node.overrides_count; ++k) {
        override_pool.push_back(override_pool[node.overrides_begin + k]);
      }
      return begin;
    };
    const uint32_t up_begin = copy_parent_overrides();
    override_pool.push_back({branch_var,
                             std::max(lp.lower_bound(branch_var), floor_value + 1.0),
                             lp.upper_bound(branch_var)});
    BranchNode up_child{up_begin,   node.overrides_count + 1, node_obj, node.depth + 1,
                        0,          basis_begin,              basis_count};
    const uint32_t down_begin = copy_parent_overrides();
    override_pool.push_back({branch_var, lp.lower_bound(branch_var),
                             std::min(lp.upper_bound(branch_var), floor_value)});
    BranchNode down_child{down_begin, node.overrides_count + 1, node_obj, node.depth + 1,
                          0,          basis_begin,              basis_count};

    BranchNode* first = &down_child;
    BranchNode* second = &up_child;
    if (value - floor_value > 0.5) {
      std::swap(first, second);
    }
    first->seq = next_seq++;
    second->seq = next_seq++;
    heap.push_back(*first);
    std::push_heap(heap.begin(), heap.end(), NodeWorse{});
    heap.push_back(*second);
    std::push_heap(heap.begin(), heap.end(), NodeWorse{});
  }

  result.nodes_explored = nodes;
  result.lp_iterations = lp_iterations;
  result.warm_started_lps = warm_started_lps;
  result.warm_start_pivots_saved = pivots_saved;
  // Export warm-start state for the next solve of a near-identical program.
  if (root_solved) {
    // The basis hint is exported only when this root's answer was canonical
    // (unique basis, or snapped-unique solution): otherwise the hint would
    // be rejected (and its attempt wasted) by the next solve's byte-identity
    // gate anyway, so withholding it keeps warm rounds exactly as cheap as
    // cold ones. Same rule as IncrementalLp::FinalizeRound, which is what
    // keeps a live session and one rebuilt from this serialized state in
    // lockstep.
    if (root_retainable) {
      // Copy, not move: the session finalizer still reads root_basis to
      // reinstall the engine's root state at scope exit.
      result.next_warm_start.basis = root_basis;
      result.next_warm_start.lp_fingerprint = LpStructureFingerprint(lp);
    }
    // A warm root's pivot count is not a cold baseline; keep the inherited
    // one in that case.
    result.next_warm_start.cold_root_iterations =
        root_was_warm ? cold_root_baseline : root_iterations;
  } else {
    result.next_warm_start.cold_root_iterations = cold_root_baseline;
  }
  if (!have_incumbent) {
    if (have_warm_fallback) {
      // The search found nothing on its own (limit hit, or every subtree
      // lost to LP iteration limits), but the validated warm incumbent is a
      // feasible integral point -- return it rather than nothing. This is
      // the one place a warm start may change the outcome, and only where
      // the cold solve would have failed to produce an answer at all.
      result.status = hit_time_limit   ? SolveStatus::kTimeLimit
                      : hit_node_limit ? SolveStatus::kNodeLimit
                                       : SolveStatus::kOptimal;
      result.objective = sign * warm_obj;
      result.values = std::move(warm_values);
      result.next_warm_start.incumbent_values = result.values;
      return result;
    }
    result.status = hit_time_limit ? SolveStatus::kTimeLimit
                    : hit_node_limit ? SolveStatus::kNodeLimit
                                     : SolveStatus::kInfeasible;
    return result;
  }
  result.status = hit_time_limit   ? SolveStatus::kTimeLimit
                  : hit_node_limit ? SolveStatus::kNodeLimit
                                   : SolveStatus::kOptimal;
  result.objective = sign * incumbent_obj;
  result.values = std::move(incumbent_values);
  result.next_warm_start.incumbent_values = result.values;
  return result;
}

void SaveWarmStart(BinaryWriter& w, const MilpWarmStart& warm) {
  w.VecF64(warm.incumbent_values);
  w.VecU8(warm.basis.state);
  w.I32(warm.cold_root_iterations);
  w.U64(warm.lp_fingerprint);
}

bool RestoreWarmStart(BinaryReader& r, MilpWarmStart* warm) {
  warm->incumbent_values = r.VecF64();
  warm->basis.state = r.VecU8();
  warm->cold_root_iterations = r.I32();
  warm->lp_fingerprint = r.U64();
  return r.ok();
}

}  // namespace sia
