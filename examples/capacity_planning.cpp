// Capacity-planning example: a cluster operator compares candidate
// expansions of an existing cluster -- more cheap t4 nodes vs fewer a100
// nodes at similar cost -- by replaying the same workload under Sia and
// comparing JCT, makespan, and utilization.
//
// This exercises the library as an operator would: build candidate
// ClusterSpecs, replay one trace, read the metrics.
#include <iostream>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/common/table.h"
#include "src/metrics/report.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace {

sia::ClusterSpec BaseCluster() {
  sia::ClusterSpec cluster;
  const int t4 = cluster.AddGpuType({"t4", 16.0, 50.0});
  const int rtx = cluster.AddGpuType({"rtx", 11.0, 50.0});
  cluster.AddNodes(t4, 6, 4);
  cluster.AddNodes(rtx, 3, 8);
  return cluster;
}

}  // namespace

int main() {
  // Candidate expansions at roughly equal hardware cost:
  //   A) +6 t4 nodes (24 cheap GPUs)
  //   B) +1 a100 node (8 premium GPUs)
  sia::ClusterSpec option_a = BaseCluster();
  option_a.AddNodes(option_a.FindGpuType("t4"), 6, 4);

  sia::ClusterSpec option_b = BaseCluster();
  const int a100 = option_b.AddGpuType({"a100", 40.0, 1600.0});
  option_b.AddNodes(a100, 1, 8);

  sia::TraceOptions trace;
  trace.kind = sia::TraceKind::kHelios;
  trace.seed = 3;
  trace.duration_hours = 4.0;
  const auto jobs = sia::GenerateTrace(trace);
  std::cout << "replaying " << jobs.size() << " Helios-like jobs on each candidate cluster\n\n";

  std::vector<sia::PolicySummary> summaries;
  std::vector<double> utilizations;
  auto evaluate = [&](const sia::ClusterSpec& cluster, const std::string& label) {
    sia::SiaScheduler scheduler;
    sia::SimOptions options;
    options.seed = 3;
    sia::ClusterSimulator simulator(cluster, jobs, &scheduler, options);
    const sia::SimResult result = simulator.Run();
    sia::PolicySummary summary = sia::Summarize(label, {result});
    summaries.push_back(summary);
    utilizations.push_back(result.gpu_utilization);
  };
  evaluate(BaseCluster(), "base (48 GPUs)");
  evaluate(option_a, "A: +24 t4 (72 GPUs)");
  evaluate(option_b, "B: +8 a100 (56 GPUs)");

  std::cout << sia::RenderSummaryTable(summaries, "Expansion candidates under Sia");
  std::cout << "\nGPU utilization: ";
  for (size_t i = 0; i < summaries.size(); ++i) {
    std::cout << summaries[i].policy << " " << sia::Table::Num(100.0 * utilizations[i], 0)
              << "%  ";
  }
  std::cout << "\n\nWith a heterogeneity-aware scheduler, the premium-GPU option often wins\n"
               "despite adding fewer GPUs: Sia routes the models that exploit the a100s\n"
               "(BERT-class) onto them and leaves commodity GPUs for the rest.\n";
  return 0;
}
