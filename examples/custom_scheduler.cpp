// Extensibility example: writing a custom scheduling policy against the
// public Scheduler interface and running it head-to-head with Sia.
//
// The demo policy is "greedy best-fit": each round, jobs are ranked by their
// best estimated goodput-per-GPU and greedily given their favourite
// configuration while capacity lasts -- simple, adaptive, but fairness- and
// restart-blind. Comparing it against Sia shows what the ILP + restart
// factor + fairness power buy.
#include <iostream>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/metrics/report.h"
#include "src/schedulers/scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace {

class GreedyBestFitScheduler : public sia::Scheduler {
 public:
  std::string name() const override { return "greedy-best-fit"; }
  double round_duration_seconds() const override { return 60.0; }

  sia::ScheduleOutput Schedule(const sia::ScheduleInput& input) override {
    struct Choice {
      int job_index;
      sia::Config config;
      double goodput_per_gpu;
    };
    std::vector<Choice> choices;
    for (size_t i = 0; i < input.jobs.size(); ++i) {
      const sia::JobView& job = input.jobs[i];
      sia::Config best_config;
      double best_rate = 0.0;
      for (const sia::Config& config : *input.config_set) {
        const int min_gpus = job.estimator->MinGpus(config.gpu_type);
        if (min_gpus <= 0 || config.num_gpus % min_gpus != 0 ||
            config.num_gpus > job.spec->max_num_gpus) {
          continue;
        }
        const auto decision =
            job.estimator->Estimate(config, job.spec->adaptivity, job.spec->fixed_bsz);
        if (!decision.feasible) {
          continue;
        }
        const double rate = decision.goodput / config.num_gpus;
        if (rate > best_rate) {
          best_rate = rate;
          best_config = config;
        }
      }
      if (best_rate > 0.0) {
        choices.push_back({static_cast<int>(i), best_config, best_rate});
      }
    }
    std::stable_sort(choices.begin(), choices.end(), [](const Choice& a, const Choice& b) {
      return a.goodput_per_gpu > b.goodput_per_gpu;
    });
    std::vector<int> free_gpus(input.cluster->num_gpu_types());
    for (int t = 0; t < input.cluster->num_gpu_types(); ++t) {
      free_gpus[t] = input.cluster->TotalGpus(t);
    }
    sia::ScheduleOutput output;
    for (const Choice& choice : choices) {
      if (free_gpus[choice.config.gpu_type] < choice.config.num_gpus) {
        continue;
      }
      free_gpus[choice.config.gpu_type] -= choice.config.num_gpus;
      output[input.jobs[choice.job_index].spec->id] = choice.config;
    }
    return output;
  }
};

}  // namespace

int main() {
  const sia::ClusterSpec cluster = sia::MakeHeterogeneousCluster();
  sia::TraceOptions trace;
  trace.kind = sia::TraceKind::kPhilly;
  trace.seed = 5;
  trace.duration_hours = 3.0;
  const auto jobs = sia::GenerateTrace(trace);
  std::cout << "workload: " << jobs.size() << " jobs over 3 h\n\n";

  std::vector<sia::PolicySummary> summaries;
  {
    GreedyBestFitScheduler greedy;
    sia::ClusterSimulator simulator(cluster, jobs, &greedy, {});
    summaries.push_back(sia::Summarize(greedy.name(), {simulator.Run()}));
  }
  {
    sia::SiaScheduler scheduler;
    sia::ClusterSimulator simulator(cluster, jobs, &scheduler, {});
    summaries.push_back(sia::Summarize(scheduler.name(), {simulator.Run()}));
  }
  std::cout << sia::RenderSummaryTable(summaries, "Custom policy vs Sia (Heterogeneous)");
  std::cout << "\nNote how maximizing goodput-per-GPU pins every job at its most\n"
               "\"efficient\" (tiny) configuration, leaving GPUs idle and JCTs high --\n"
               "Sia's normalized-goodput ILP scales jobs out whenever that helps.\n";
  return 0;
}
