// Quickstart: schedule a small adaptive workload on a heterogeneous cluster
// with Sia and print the headline metrics.
//
//   ./build/examples/quickstart [num_jobs] [seed]
#include <cstdlib>
#include <iostream>

#include "src/cluster/cluster_spec.h"
#include "src/metrics/report.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 20;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. Describe the cluster: 6 t4 + 3 rtx + 2 a100 nodes (64 GPUs), the
  //    paper's Heterogeneous setting.
  const sia::ClusterSpec cluster = sia::MakeHeterogeneousCluster();
  std::cout << "cluster: " << cluster.num_nodes() << " nodes, " << cluster.TotalGpus()
            << " GPUs, " << cluster.num_gpu_types() << " GPU types\n";

  // 2. Sample a workload (Philly-like arrival mix).
  sia::TraceOptions trace;
  trace.kind = sia::TraceKind::kPhilly;
  trace.seed = seed;
  trace.duration_hours = num_jobs / trace.arrival_rate_per_hour;
  auto jobs = sia::GenerateTrace(trace);
  if (static_cast<int>(jobs.size()) > num_jobs) {
    jobs.resize(num_jobs);
  }
  std::cout << "workload: " << jobs.size() << " adaptive jobs over "
            << trace.duration_hours << " h\n";

  // 3. Run the Sia scheduler in the simulator.
  sia::SiaScheduler scheduler;  // p = -0.5, lambda = 1.1, 60 s rounds.
  sia::SimOptions options;
  options.seed = seed;
  sia::ClusterSimulator simulator(cluster, jobs, &scheduler, options);
  const sia::SimResult result = simulator.Run();

  // 4. Report.
  const sia::PolicySummary summary = sia::Summarize(scheduler.name(), {result});
  std::cout << sia::RenderSummaryTable({summary}, "\nSia on the Heterogeneous setting");
  std::cout << "\npolicy runtime: median " << result.MedianPolicyRuntime() * 1000.0
            << " ms, p95 " << result.P95PolicyRuntime() * 1000.0 << " ms over "
            << result.policy_cost.runtimes_seconds.size() << " rounds\n";
  return result.all_finished ? 0 : 1;
}
