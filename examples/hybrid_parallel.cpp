// Hybrid-parallel scheduling example (§5.3): a 2.8B-parameter GPT model
// using pipeline parallelism (2 stages on a100, 8 on rtx) scaled out with
// data parallelism, sharing the cluster with ordinary data-parallel jobs.
// Sia is the first scheduler to elastically scale such jobs: watch the GPT
// job's replica count respond to cluster congestion.
//
//   ./build/examples/hybrid_parallel [seed]
#include <cstdlib>
#include <iostream>

#include "src/cluster/cluster_spec.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/models/profile_db.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const sia::ClusterSpec cluster = sia::MakeHeterogeneousCluster();

  std::vector<sia::JobSpec> jobs;
  sia::JobSpec gpt;
  gpt.id = 0;
  gpt.name = "gpt2.8b-finetune";
  gpt.model = sia::ModelKind::kGpt2_8B;
  gpt.max_num_gpus = 16;
  jobs.push_back(gpt);

  // Competing data-parallel jobs arrive between hour 1 and hour 2.
  sia::Rng rng(seed);
  for (int k = 1; k <= 16; ++k) {
    sia::JobSpec job;
    job.id = k;
    job.model = rng.Bernoulli(0.5) ? sia::ModelKind::kBert : sia::ModelKind::kDeepSpeech2;
    job.name = std::string(ToString(job.model)) + "-" + std::to_string(k);
    job.submit_time = 3600.0 + rng.Uniform(0.0, 3600.0);
    job.max_num_gpus = 8;
    jobs.push_back(job);
  }

  sia::SiaScheduler scheduler;
  sia::SimOptions options;
  options.seed = seed;
  options.record_timeline = true;
  sia::ClusterSimulator simulator(cluster, jobs, &scheduler, options);
  const sia::SimResult result = simulator.Run();

  std::cout << "GPT allocation timeline (replica-granular: P=2 on a100, P=8 on rtx):\n";
  for (const sia::TimelineEvent& event : result.timeline) {
    if (event.job_id != 0) {
      continue;
    }
    std::cout << "  t=" << sia::Table::Num(event.time_seconds / 3600.0, 2) << "h -> ";
    if (event.config.num_gpus == 0) {
      std::cout << "released\n";
    } else {
      std::cout << event.config.num_gpus << " x "
                << cluster.gpu_type(event.config.gpu_type).name << "\n";
    }
  }
  for (const sia::JobResult& job : result.jobs) {
    if (job.spec.id == 0) {
      std::cout << "\nGPT finished=" << job.finished << ", JCT "
                << sia::Table::Num(job.jct / 3600.0, 1) << " h, " << job.num_restarts
                << " restarts, " << sia::Table::Num(job.gpu_seconds / 3600.0, 0)
                << " GPU-hours\n";
    }
  }
  return result.all_finished ? 0 : 1;
}
