// Head-to-head comparison of Sia, Pollux, and Gavel+TunedJobs on the
// Heterogeneous setting (the scenario of Table 3), on one sampled trace.
//
//   ./build/examples/heterogeneous_cluster [trace: philly|helios] [seed]
#include <cstring>
#include <iostream>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/metrics/report.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

int main(int argc, char** argv) {
  const bool helios = argc > 1 && std::strcmp(argv[1], "helios") == 0;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const sia::ClusterSpec cluster = sia::MakeHeterogeneousCluster();
  sia::TraceOptions trace;
  trace.kind = helios ? sia::TraceKind::kHelios : sia::TraceKind::kPhilly;
  trace.seed = seed;
  const auto jobs = sia::GenerateTrace(trace);
  std::cout << "trace: " << ToString(trace.kind) << ", " << jobs.size() << " jobs over 8 h\n";

  // Gavel cannot adapt jobs, so it receives hand-tuned rigid configs (§4.3).
  sia::TunedJobsOptions tuned_options;
  tuned_options.max_gpus = 16;
  tuned_options.seed = seed;
  const auto tuned_jobs = sia::MakeTunedJobs(jobs, tuned_options);

  std::vector<sia::PolicySummary> summaries;
  auto run = [&](sia::Scheduler& scheduler, const std::vector<sia::JobSpec>& workload,
                 const std::string& label) {
    sia::SimOptions options;
    options.seed = seed;
    sia::ClusterSimulator simulator(cluster, workload, &scheduler, options);
    const sia::SimResult result = simulator.Run();
    summaries.push_back(sia::Summarize(label, {result}));
    std::cout << "  " << label << ": done (median policy runtime "
              << result.MedianPolicyRuntime() * 1000.0 << " ms)\n";
  };

  sia::SiaScheduler sia_scheduler;
  run(sia_scheduler, jobs, "sia");
  sia::PolluxScheduler pollux;
  run(pollux, jobs, "pollux");
  sia::GavelScheduler gavel;
  run(gavel, tuned_jobs, "gavel+TJ");

  std::cout << "\n"
            << sia::RenderSummaryTable(summaries,
                                       "Heterogeneous 64-GPU cluster (one trace sample)");
  return 0;
}
