#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on regressions.

The bench binaries (bench_util.cc WriteBenchJson / WriteBenchJsonRows) emit
    {"schema_version": 1, "bench": "<name>", "rows": [ {...}, ... ]}
with one object per row. Rows are matched between the two files by their
"name" key (falling back to "policy" for the PolicySummary tables), and a
chosen numeric metric is compared:

    bench_compare.py baseline.json candidate.json \
        --metric median_policy_ms --max-regress-pct 25

exits 1 if the candidate regresses the metric by more than the threshold on
any matched row (by default lower is better; pass --higher-is-better for
throughput-style metrics), 2 on usage/schema errors, and 0 otherwise.
Rows missing from either file or missing the metric are reported and
skipped -- bench sets evolve; only comparable rows gate.

Stdlib only (argparse + json): runs anywhere the repo builds, no pip.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(doc, dict) or "rows" not in doc:
        raise SystemExit(f"error: {path}: not a BENCH json (missing 'rows')")
    rows = {}
    for row in doc["rows"]:
        key = row.get("name", row.get("policy"))
        if key is None:
            print(f"warning: {path}: row without 'name'/'policy' skipped", file=sys.stderr)
            continue
        rows[str(key)] = row
    return rows


def compare(baseline, candidate, metric, max_regress_pct, higher_is_better):
    """Returns the number of regressing rows; prints one line per matched row."""
    regressions = 0
    compared = 0
    for key in sorted(baseline):
        if key not in candidate:
            print(f"  {key}: missing from candidate, skipped")
            continue
        base_val = baseline[key].get(metric)
        cand_val = candidate[key].get(metric)
        if not isinstance(base_val, (int, float)) or not isinstance(cand_val, (int, float)):
            print(f"  {key}: metric '{metric}' absent or non-numeric, skipped")
            continue
        compared += 1
        if base_val == 0:
            delta_pct = 0.0 if cand_val == 0 else float("inf")
        else:
            delta_pct = (cand_val - base_val) / abs(base_val) * 100.0
        worse = -delta_pct if higher_is_better else delta_pct
        verdict = "REGRESSION" if worse > max_regress_pct else "ok"
        if verdict == "REGRESSION":
            regressions += 1
        print(f"  {key}: {metric} {base_val:g} -> {cand_val:g} ({delta_pct:+.1f}%) {verdict}")
    for key in sorted(set(candidate) - set(baseline)):
        print(f"  {key}: new in candidate, skipped")
    if compared == 0:
        print("warning: no comparable rows", file=sys.stderr)
    return regressions


def self_test():
    """In-memory check of the comparison logic (wired as a ctest smoke)."""
    base = {"a": {"name": "a", "ms": 100.0}, "b": {"name": "b", "ms": 50.0}}
    ok = {"a": {"name": "a", "ms": 105.0}, "b": {"name": "b", "ms": 49.0}}
    bad = {"a": {"name": "a", "ms": 200.0}, "b": {"name": "b", "ms": 50.0}}
    assert compare(base, base, "ms", 10.0, False) == 0
    assert compare(base, ok, "ms", 10.0, False) == 0
    assert compare(base, bad, "ms", 10.0, False) == 1
    # higher-is-better flips the direction: dropping throughput regresses.
    assert compare(base, bad, "ms", 10.0, True) == 0
    assert compare(bad, base, "ms", 10.0, True) == 1
    # Zero baseline: any nonzero candidate is an infinite regression.
    zero = {"a": {"name": "a", "ms": 0.0}}
    assert compare(zero, {"a": {"name": "a", "ms": 1.0}}, "ms", 10.0, False) == 1
    assert compare(zero, {"a": {"name": "a", "ms": 0.0}}, "ms", 10.0, False) == 0
    # Missing rows / metrics skip, not fail.
    assert compare(base, {"a": {"name": "a"}}, "ms", 10.0, False) == 0
    print("self-test passed")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--metric", default="median_policy_ms", help="row key to compare")
    parser.add_argument("--max-regress-pct", type=float, default=10.0,
                        help="allowed regression in percent (default 10)")
    parser.add_argument("--higher-is-better", action="store_true",
                        help="metric is a throughput: smaller values regress")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in logic check and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return 0
    if args.baseline is None or args.candidate is None:
        parser.print_usage(sys.stderr)
        return 2

    baseline = load_rows(args.baseline)
    candidate = load_rows(args.candidate)
    print(f"comparing '{args.metric}' (max regression {args.max_regress_pct}%"
          f"{', higher is better' if args.higher_is_better else ''})")
    regressions = compare(baseline, candidate, args.metric,
                          args.max_regress_pct, args.higher_is_better)
    if regressions:
        print(f"{regressions} regression(s) beyond {args.max_regress_pct}%")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
