// Command-line simulation driver: run any scheduler on any cluster/trace
// combination, stream the observability trace, and export results as CSV.
//
//   sia_simulate --scheduler=sia --cluster=heterogeneous --trace=philly ...
//                --seed=1 [--rate=20] [--hours=8] [--scale=1]
//                [--profiling=bootstrap|oracle|noprof] [--tuned]
//                [--mtbf-hours=0] [--mttr-hours=0.5] [--degraded-frac=0]
//                [--fault-schedule=faults.csv] [--trace-in=jobs.csv]
//                [--trace-out=run.jsonl] [--metrics-out=metrics.json]
//                [--jobs-out=jobs.csv] [--results-out=results.csv]
//                [--checkpoint-every=N --checkpoint-dir=D] [--resume=SNAP]
#include <csignal>
#include <iostream>
#include <algorithm>
#include <memory>

#include "src/cluster/cluster_spec.h"
#include "src/common/flags.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/metrics/ftf.h"
#include "src/metrics/report.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/ladder.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/sim_observer.h"
#include "src/sim/simulator.h"
#include "src/snapshot/snapshot.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

namespace {

constexpr char kUsage[] = R"(usage: sia_simulate [flags]
  --scheduler  sia|pollux|gavel|allox|shockwave|themis|fifo|srtf|sia-energy
                                                             (default sia)
  --cluster    heterogeneous|homogeneous|physical            (default heterogeneous)
  --scale      N: multiply heterogeneous node counts         (default 1)
  --trace      philly|helios|newtrace                        (default philly)
  --trace-in   CSV file to replay instead of generating
  --rate       arrival rate, jobs/hour                       (default 20)
  --hours      submission window                             (default per trace)
  --seed       RNG seed                                      (default 1)
  --profiling  bootstrap|oracle|noprof                       (default bootstrap)
  --core       event|dense: simulation core (default event). Both produce
               byte-identical traces; dense is the reference scan kept for
               differential testing.
  --sched-threads N: threads for sia/pollux candidate generation (default 1);
               results are byte-identical for any value
  --tuned      tune jobs rigid (TunedJobs); implied for rigid policies
  --track-energy  account per-GPU-type energy (active/idle/low-power states;
               DESIGN.md section 14) and report joules at run end
  --power-cap W  cluster-wide active-power cap in watts (0 = uncapped);
               cap-native policies (sia/sia-energy) plan under it, others
               have requests trimmed by the simulator. Implies --track-energy
  --sla0/--sla1/--sla2 F  fraction of jobs assigned to each SLA class with
               drawn deadlines (default 0; remaining jobs are best-effort)
  --mtbf-hours per-node mean time between crashes, 0=off     (default 0)
  --mttr-hours mean crash-repair window, hours                (default 0.5)
  --degraded-frac fraction of nodes born degraded (stragglers) (default 0)
  --degrade-mult  iteration-time multiplier on degraded nodes  (default 1.5)
  --dropout-prob  per-report telemetry dropout probability     (default 0)
  --outlier-prob  per-report telemetry outlier probability     (default 0)
  --fault-schedule CSV of scripted fault events
                   (time_hours,kind,node[,duration_hours[,severity]])
  --trace-out  stream the run trace (manifest/round/event records);
               .jsonl -> JSON lines, .csv -> round records as CSV
  --trace-timings include wall-clock solve timings in the trace
               (nondeterministic; off keeps the trace byte-identical per seed)
  --profile-rounds print a per-round phase breakdown (view build / candidate
               gen / LP build / solve / placement) at run end; implies
               --trace-timings
  --metrics-out write the metrics registry (counters/gauges/histograms) as JSON
  --jobs-out   write the (possibly tuned) input job trace as CSV
  --results-out write per-job results as CSV
  --ftf        also compute finish-time-fairness stats
  --checkpoint-every N  write a state snapshot every N scheduling rounds
  --checkpoint-dir D    snapshot directory (required with --checkpoint-every)
  --checkpoint-retain K snapshots kept, oldest pruned            (default 3)
  --resume PATH  resume from a snapshot file, or from the newest valid
                 snapshot in a directory; all other flags must rebuild the
                 same run (enforced by the snapshot fingerprint). With
                 --trace-out, the trace file is truncated back to the
                 snapshot offset and continued byte-identically.
  --die-at-round R  raise SIGKILL at the start of scheduling round R
                 (crash-equivalence testing; see tools/sia_supervise)
  --round-deadline-ms M  per-round scheduling deadline in milliseconds;
                 the degradation ladder (full MILP -> capped MILP -> LP
                 rounding -> greedy -> carry-over) downgrades the solve to
                 fit. M=0 forces carry-over every round; unset = unlimited.
                 Nondeterministic for M>0 (wall-clock dependent).
)";

// Crash injection for the supervisor harness: SIGKILL at the start of the
// chosen round, after that round boundary's checkpoint opportunity -- the
// same uncatchable death a machine failure produces.
class KillAtRoundObserver : public sia::SimObserver {
 public:
  explicit KillAtRoundObserver(int64_t round) : round_(round) {}
  void OnRoundScheduled(const sia::RoundObservation& observation) override {
    if (observation.round_index >= round_) {
      std::raise(SIGKILL);
    }
  }

 private:
  int64_t round_;
};

std::unique_ptr<sia::Scheduler> MakeScheduler(const std::string& name, int sched_threads,
                                              double power_cap_watts) {
  if (name == "sia") {
    sia::SiaOptions options;
    options.num_threads = sched_threads;
    options.power_cap_watts = power_cap_watts;
    return std::make_unique<sia::SiaScheduler>(options);
  }
  if (name == "sia-energy") {
    sia::SiaOptions options = sia::MakeSiaEnergyOptions();
    options.num_threads = sched_threads;
    options.power_cap_watts = power_cap_watts;
    return std::make_unique<sia::SiaScheduler>(options);
  }
  if (name == "pollux") {
    sia::PolluxOptions options;
    options.num_threads = sched_threads;
    return std::make_unique<sia::PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<sia::GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<sia::AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<sia::PriorityScheduler>(sia::ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<sia::PriorityScheduler>(sia::ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<sia::PriorityScheduler>(sia::FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<sia::PriorityScheduler>(sia::SrtfOptions());
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return 2;
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  const std::string scheduler_name = flags.GetString("scheduler", "sia");
  const std::string cluster_name = flags.GetString("cluster", "heterogeneous");
  const std::string trace_name = flags.GetString("trace", "philly");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int scale = static_cast<int>(flags.GetInt("scale", 1));

  sia::ClusterSpec cluster;
  if (cluster_name == "heterogeneous") {
    cluster = sia::MakeHeterogeneousCluster(scale);
  } else if (cluster_name == "homogeneous") {
    cluster = sia::MakeHomogeneousCluster();
  } else if (cluster_name == "physical") {
    cluster = sia::MakePhysicalCluster();
  } else {
    std::cerr << "unknown cluster '" << cluster_name << "'\n" << kUsage;
    return 2;
  }

  std::vector<sia::JobSpec> jobs;
  if (flags.Has("trace-in")) {
    std::string error;
    if (!sia::ReadTraceCsv(flags.GetString("trace-in", ""), &jobs, &error)) {
      std::cerr << "failed to read trace: " << error << "\n";
      return 1;
    }
  } else {
    sia::TraceOptions trace;
    if (trace_name == "philly") {
      trace.kind = sia::TraceKind::kPhilly;
    } else if (trace_name == "helios") {
      trace.kind = sia::TraceKind::kHelios;
    } else if (trace_name == "newtrace") {
      trace.kind = sia::TraceKind::kNewTrace;
    } else {
      std::cerr << "unknown trace '" << trace_name << "'\n" << kUsage;
      return 2;
    }
    trace.arrival_rate_per_hour = flags.GetDouble("rate", 20.0);
    trace.duration_hours = flags.GetDouble("hours", 0.0);
    trace.seed = seed;
    jobs = sia::GenerateTrace(trace);
  }

  const bool rigid_policy = scheduler_name != "sia" && scheduler_name != "sia-energy" &&
                            scheduler_name != "pollux";
  if (flags.GetBool("tuned", false) || rigid_policy) {
    sia::TunedJobsOptions tuned;
    tuned.max_gpus = cluster_name == "homogeneous" ? 64 : 16;
    tuned.seed = seed;
    jobs = sia::MakeTunedJobs(jobs, tuned);
  }
  sia::SlaMixOptions sla_mix;
  sla_mix.sla0_fraction = flags.GetDouble("sla0", 0.0);
  sla_mix.sla1_fraction = flags.GetDouble("sla1", 0.0);
  sla_mix.sla2_fraction = flags.GetDouble("sla2", 0.0);
  if (sla_mix.sla0_fraction > 0.0 || sla_mix.sla1_fraction > 0.0 ||
      sla_mix.sla2_fraction > 0.0) {
    sla_mix.seed = seed;
    jobs = sia::AssignSlaClasses(jobs, sla_mix);
  }
  if (flags.Has("jobs-out")) {
    if (!sia::WriteTraceCsv(flags.GetString("jobs-out", ""), jobs)) {
      std::cerr << "failed to write jobs CSV\n";
      return 1;
    }
  }

  const int sched_threads = static_cast<int>(flags.GetInt("sched-threads", 1));
  if (sched_threads < 1) {
    std::cerr << "--sched-threads must be >= 1\n" << kUsage;
    return 2;
  }
  const double power_cap_watts = flags.GetDouble("power-cap", 0.0);
  if (power_cap_watts < 0.0) {
    std::cerr << "--power-cap must be >= 0\n" << kUsage;
    return 2;
  }
  auto scheduler = MakeScheduler(scheduler_name, sched_threads, power_cap_watts);
  if (scheduler == nullptr) {
    std::cerr << "unknown scheduler '" << scheduler_name << "'\n" << kUsage;
    return 2;
  }

  sia::SimOptions options;
  options.seed = seed;
  options.energy.track = flags.GetBool("track-energy", false) || power_cap_watts > 0.0;
  options.energy.power_cap_watts = power_cap_watts;
  if (flags.Has("round-deadline-ms")) {
    const double deadline_ms = flags.GetDouble("round-deadline-ms", -1.0);
    if (deadline_ms < 0.0) {
      std::cerr << "--round-deadline-ms must be >= 0\n" << kUsage;
      return 2;
    }
    options.round_deadline_seconds = deadline_ms / 1000.0;
    if (scheduler_name != "sia" && scheduler_name != "sia-energy") {
      // Sia implements the ladder natively (it can cap its own MILP); the
      // baselines get the generic wrapper, which degrades to greedy /
      // carry-over when the budget is too small to run the policy at all.
      scheduler = std::make_unique<sia::DeadlineLadderScheduler>(std::move(scheduler),
                                                                 sia::DeadlineOptions{});
    }
  }
  options.faults.node_mtbf_hours = flags.GetDouble("mtbf-hours", 0.0);
  options.faults.node_mttr_hours = flags.GetDouble("mttr-hours", 0.5);
  options.faults.degraded_frac = flags.GetDouble("degraded-frac", 0.0);
  options.faults.degrade_multiplier = flags.GetDouble("degrade-mult", 1.5);
  options.faults.telemetry_dropout_prob = flags.GetDouble("dropout-prob", 0.0);
  options.faults.telemetry_outlier_prob = flags.GetDouble("outlier-prob", 0.0);
  if (flags.Has("fault-schedule")) {
    std::string error;
    if (!sia::ReadFaultScheduleCsv(flags.GetString("fault-schedule", ""),
                                   &options.faults.schedule, &error)) {
      std::cerr << "failed to read fault schedule: " << error << "\n";
      return 1;
    }
  }
  const std::string core = flags.GetString("core", "event");
  if (core == "event") {
    options.core = sia::SimCore::kEvent;
  } else if (core == "dense") {
    options.core = sia::SimCore::kDense;
  } else {
    std::cerr << "unknown core '" << core << "'\n" << kUsage;
    return 2;
  }
  const std::string profiling = flags.GetString("profiling", "bootstrap");
  if (profiling == "oracle") {
    options.profiling_mode = sia::ProfilingMode::kOracle;
  } else if (profiling == "noprof") {
    options.profiling_mode = sia::ProfilingMode::kNoProfile;
  } else if (profiling == "bootstrap") {
    options.profiling_mode = sia::ProfilingMode::kBootstrap;
  } else {
    std::cerr << "unknown profiling mode '" << profiling << "'\n" << kUsage;
    return 2;
  }

  const bool want_ftf = flags.GetBool("ftf", false);
  const std::string results_out = flags.GetString("results-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");

  options.checkpoint.every_rounds = static_cast<int>(flags.GetInt("checkpoint-every", 0));
  options.checkpoint.dir = flags.GetString("checkpoint-dir", "");
  options.checkpoint.retain = static_cast<int>(flags.GetInt("checkpoint-retain", 3));
  const int64_t die_at_round = flags.GetInt("die-at-round", -1);
  const std::string resume = flags.GetString("resume", "");

  // Resolve the snapshot before opening any sink: the trace file must be
  // truncated back to the snapshot's byte offset, not re-created.
  std::string resume_payload;
  sia::SnapshotMeta resume_meta;
  if (!resume.empty()) {
    std::string resolved;
    std::string error;
    std::vector<std::string> skipped;
    if (!sia::ResolveSnapshot(resume, &resolved, &resume_payload, &skipped, &error)) {
      std::cerr << "failed to resolve --resume snapshot: " << error << "\n";
      return 1;
    }
    for (const std::string& reason : skipped) {
      std::cerr << "skipping corrupt snapshot: " << reason << "\n";
    }
    if (!sia::ReadSnapshotMeta(resume_payload, &resume_meta, &error)) {
      std::cerr << "unreadable snapshot meta: " << error << "\n";
      return 1;
    }
    std::cout << "resuming from " << resolved << " (round " << resume_meta.round_index
              << ", t=" << resume_meta.now_seconds << "s)\n";
  }

  sia::MetricsRegistry metrics;
  options.metrics = &metrics;
  std::unique_ptr<sia::TraceSink> trace_sink;
  if (flags.Has("trace-out")) {
    const std::string trace_path = flags.GetString("trace-out", "");
    if (!resume.empty() && resume_meta.has_trace) {
      if (resume_meta.trace_offset >= 0) {
        std::string error;
        if (!sia::PrepareSinkForResume(trace_path, resume_meta.trace_offset, &error)) {
          std::cerr << "failed to prepare trace for resume: " << error << "\n";
          return 1;
        }
      }
      trace_sink = sia::OpenTraceSinkForAppend(trace_path);
    } else {
      trace_sink = sia::OpenTraceSink(trace_path);
    }
    if (trace_sink == nullptr) {
      std::cerr << "failed to open --trace-out for writing\n";
      return 1;
    }
    options.trace = trace_sink.get();
  }
  const bool profile_rounds = flags.GetBool("profile-rounds", false);
  options.trace_timings = flags.GetBool("trace-timings", false) || profile_rounds;
  std::unique_ptr<KillAtRoundObserver> killer;
  if (die_at_round >= 0) {
    killer = std::make_unique<KillAtRoundObserver>(die_at_round);
    options.observer = killer.get();
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n" << kUsage;
    return 2;
  }
  // Enabling MTTR tuning without a crash source is a silent no-op; a struct
  // default makes it indistinguishable in Validate(), so flag presence is
  // checked here.
  if (flags.Has("mttr-hours") && options.faults.node_mtbf_hours <= 0.0 &&
      options.faults.schedule.empty()) {
    std::cerr << "--mttr-hours has no effect without --mtbf-hours or --fault-schedule\n";
    return 2;
  }
  if (const std::string error = options.Validate(); !error.empty()) {
    std::cerr << "invalid options: " << error << "\n" << kUsage;
    return 2;
  }

  std::cout << "cluster=" << cluster_name << " (" << cluster.TotalGpus() << " GPUs)  jobs="
            << jobs.size() << "  scheduler=" << scheduler->name() << "  seed=" << seed << "\n";
  sia::ClusterSimulator simulator(cluster, jobs, scheduler.get(), options);
  if (!resume.empty()) {
    std::string error;
    if (!simulator.RestoreState(resume_payload, &error)) {
      std::cerr << "failed to restore snapshot: " << error << "\n";
      return 1;
    }
  }
  const sia::SimResult result = simulator.Run();

  const sia::PolicySummary summary = sia::Summarize(scheduler->name(), {result});
  std::cout << sia::RenderSummaryTable({summary}, "results");
  std::cout << "GPU utilization: " << sia::Table::Num(100.0 * result.gpu_utilization, 1)
            << "%   policy runtime: median " << result.MedianPolicyRuntime() * 1000.0
            << " ms, p95 " << result.P95PolicyRuntime() * 1000.0 << " ms\n";
  if (options.faults.any_faults()) {
    std::cout << "resilience: crashes " << result.resilience.total_failures << ", evictions "
              << result.resilience.failure_evictions << ", downtime "
              << sia::Table::Num(result.NodeDowntimeGpuHours(), 1) << " GPU-h, mean recovery "
              << sia::Table::Num(result.AvgRecoveryMinutes(), 1) << " min, zero-goodput rounds "
              << result.resilience.zero_goodput_rounds << ", telemetry dropouts "
              << result.resilience.telemetry_dropouts << ", outliers " << result.resilience.telemetry_outliers << "\n";
  }
  if (result.energy.tracked) {
    std::cout << "energy: " << sia::Table::Num(result.energy.total_joules() / 3.6e6, 3)
              << " kWh (active " << sia::Table::Num(result.energy.active_joules / 3.6e6, 3)
              << ", idle " << sia::Table::Num(result.energy.idle_joules / 3.6e6, 3)
              << ", low-power " << sia::Table::Num(result.energy.low_power_joules / 3.6e6, 3)
              << ", transitions " << sia::Table::Num(result.energy.transition_joules / 3.6e6, 3)
              << "), peak draw " << sia::Table::Num(result.energy.peak_busy_watts / 1000.0, 2)
              << " kW\n";
  }
  if (result.sla.sla_jobs > 0) {
    std::cout << "SLA: " << result.sla.sla_jobs << " jobs, " << result.sla.violations
              << " violations (" << sia::Table::Num(100.0 * result.sla.ViolationRate(), 1)
              << "%), total tardiness "
              << sia::Table::Num(result.sla.total_tardiness_seconds / 3600.0, 2) << " h\n";
  }
  if (want_ftf) {
    const auto ratios = sia::FtfRatios(result, cluster);
    if (!ratios.empty()) {
      std::cout << "FTF: worst rho " << sia::Table::Num(*std::max_element(ratios.begin(),
                                                                          ratios.end()), 2)
                << ", unfair fraction " << sia::Table::Num(sia::FractionAbove(ratios, 1.0), 3)
                << ", Jain index of JCT-normalized service "
                << sia::Table::Num(sia::JainFairnessIndex(ratios), 3) << "\n";
    }
  }
  if (profile_rounds) {
    // Phase breakdown from the wall-clock counters the scheduler and
    // simulator record under record_timings (ISSUE 8). Phases outside the
    // instrumented set (result extraction, trace writes) appear as the gap
    // between the phase sum and the total policy runtime.
    const uint64_t rounds = std::max<uint64_t>(metrics.counter_value("sim.rounds"), 1);
    const struct {
      const char* phase;
      const char* counter;
    } kPhases[] = {
        {"view build", "sim.view_build_wall_ns"},
        {"candidate gen", "sia.candidate_gen_wall_ns"},
        {"LP build", "sia.lp_build_wall_ns"},
        {"solve", "sia.solve_wall_ns"},
        {"placement", "sia.placement_wall_ns"},
    };
    sia::Table table({"phase", "total ms", "us/round"});
    for (const auto& phase : kPhases) {
      const uint64_t ns = metrics.counter_value(phase.counter);
      table.AddRow({phase.phase, sia::Table::Num(ns / 1e6, 2),
                    sia::Table::Num(static_cast<double>(ns) / 1e3 / rounds, 1)});
    }
    std::cout << "round profile (" << metrics.counter_value("sim.rounds") << " rounds):\n"
              << table.Render();
  }
  if (!results_out.empty()) {
    if (!sia::WriteJobResultsCsv(results_out, result)) {
      std::cerr << "failed to write results CSV\n";
      return 1;
    }
    std::cout << "wrote per-job results to " << results_out << "\n";
  }
  if (!metrics_out.empty()) {
    if (!metrics.WriteJsonFile(metrics_out)) {
      std::cerr << "failed to write metrics JSON\n";
      return 1;
    }
    std::cout << "wrote metrics to " << metrics_out << "\n";
  }
  return result.all_finished ? 0 : 1;
}
