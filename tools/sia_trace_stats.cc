// Trace inspection tool: prints the composition of a generated or imported
// trace -- model/category mix, arrival-rate histogram, adaptivity modes --
// so users can sanity-check workloads before simulating them.
//
//   sia_trace_stats --trace=philly --seed=1         (generate + inspect)
//   sia_trace_stats --trace-in=jobs.csv             (inspect a CSV trace)
#include <algorithm>
#include <iostream>
#include <map>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/models/profile_db.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  std::vector<sia::JobSpec> jobs;
  if (flags.Has("trace-in")) {
    std::string error;
    if (!sia::ReadTraceCsv(flags.GetString("trace-in", ""), &jobs, &error)) {
      std::cerr << "failed to read trace: " << error << "\n";
      return 1;
    }
  } else {
    sia::TraceOptions options;
    const std::string name = flags.GetString("trace", "philly");
    if (name == "helios") {
      options.kind = sia::TraceKind::kHelios;
    } else if (name == "newtrace") {
      options.kind = sia::TraceKind::kNewTrace;
    } else if (name == "philly") {
      options.kind = sia::TraceKind::kPhilly;
    } else {
      std::cerr << "unknown trace '" << name << "'\n";
      return 2;
    }
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    options.arrival_rate_per_hour = flags.GetDouble("rate", 20.0);
    options.duration_hours = flags.GetDouble("hours", 0.0);
    jobs = sia::GenerateTrace(options);
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }
  if (jobs.empty()) {
    std::cout << "(empty trace)\n";
    return 0;
  }

  std::map<sia::ModelKind, int> by_model;
  std::map<sia::AdaptivityMode, int> by_mode;
  double total_work_hours = 0.0;
  for (const sia::JobSpec& job : jobs) {
    ++by_model[job.model];
    ++by_mode[job.adaptivity];
    // Work expressed as single-t4 hours at the optimal batch (rough size).
    const auto& info = sia::GetModelInfo(job.model);
    const auto& device = sia::GetDeviceProfile(
        job.model, info.hybrid_parallel ? "a100" : "t4");
    if (device.available) {
      const auto decision = sia::OptimizeBatch(
          device.truth, info.efficiency, info.efficiency.init_pgns, info.min_bsz, info.max_bsz,
          device.max_local_bsz, 1, 1);
      if (decision.feasible) {
        total_work_hours += info.total_work / decision.goodput / 3600.0;
      }
    }
  }

  const double window_hours = jobs.back().submit_time / 3600.0;
  std::cout << jobs.size() << " jobs over " << sia::Table::Num(window_hours, 1)
            << " h (avg rate " << sia::Table::Num(jobs.size() / std::max(window_hours, 1e-9), 1)
            << " jobs/hr); total work ~" << sia::Table::Num(total_work_hours, 0)
            << " single-t4 GPU-hours\n\n";

  sia::Table model_table({"model", "category", "count", "share"});
  for (const auto& [model, count] : by_model) {
    model_table.AddRow({ToString(model), ToString(CategoryOf(model)), std::to_string(count),
                        sia::Table::Num(100.0 * count / jobs.size(), 1) + "%"});
  }
  std::cout << model_table.Render() << "\n";

  sia::Table mode_table({"adaptivity", "count"});
  for (const auto& [mode, count] : by_mode) {
    mode_table.AddRow({ToString(mode), std::to_string(count)});
  }
  std::cout << mode_table.Render() << "\n";

  // Arrival histogram, one bucket per hour.
  std::cout << "arrivals per hour:\n";
  std::map<int, int> per_hour;
  for (const sia::JobSpec& job : jobs) {
    ++per_hour[static_cast<int>(job.submit_time / 3600.0)];
  }
  int max_count = 0;
  for (const auto& [hour, count] : per_hour) {
    max_count = std::max(max_count, count);
  }
  for (const auto& [hour, count] : per_hour) {
    std::cout << "  h" << hour << (hour < 10 ? " " : "") << " |"
              << std::string(count * 50 / std::max(max_count, 1), '=') << " " << count << "\n";
  }
  return 0;
}
