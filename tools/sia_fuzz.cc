// Scenario fuzzer: randomized differential testing of every scheduling
// policy against the cluster-invariant oracle (src/testing/).
//
// Each seed generates a small randomized scenario (cluster shape, job
// trace, fault cocktail, scheduler knobs), runs it under the invariant
// oracle (plus differential twin runs for sia/pollux), and -- on failure --
// shrinks it to a minimal reproducer file that replays byte-identically:
//
//   sia_fuzz --seeds=200                      # fuzz all policies
//   sia_fuzz --seeds=50 --scheduler=sia       # one policy
//   sia_fuzz --replay=repro.txt               # re-run a reproducer
//   sia_fuzz --lp-checks=200                  # solver differential checks
//   sia_fuzz --seeds=5 --inject-bug=oversub   # demo: oracle must catch it
//   sia_fuzz --seeds=0 --crash-seeds=20       # checkpoint/resume equivalence
//                                             # at a random round per seed
//   sia_fuzz --seeds=0 --core-seeds=20        # dense vs event-core equivalence
//   sia_fuzz --seeds=0 --energy-seeds=20      # energy/SLA scenario axis:
//                                             # oracle + crash-equivalence
//   sia_fuzz --seeds=0 --disk-seeds=20        # storage-fault equivalence: a
//                                             # hosted cluster under injected
//                                             # disk faults + crashes must end
//                                             # byte-identical to a clean run
//
// Exit status: 0 when every scenario passed, 1 on any violation.
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/fault_file_ops.h"
#include "src/common/file_util.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/service/engine.h"
#include "src/service/client.h"
#include "src/service/json.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/testing/fuzz_harness.h"
#include "src/testing/lp_differential.h"
#include "src/testing/scenario.h"

namespace {

constexpr char kUsage[] = R"(usage: sia_fuzz [flags]
  --seeds       N: scenarios per scheduler                     (default 20)
  --start-seed  first seed (scenario i uses start-seed + i)    (default 1)
  --scheduler   restrict to one policy (default: all of
                sia|pollux|gavel|allox|shockwave|themis|fifo|srtf|sia-energy)
  --out-dir     directory for shrunk reproducer files          (default .)
  --no-shrink   keep failing scenarios unshrunk
  --no-differential  skip warm-vs-cold / thread-count twin runs
  --inject-bug  oversub: wrap the scheduler with a deliberate
                capacity bug (the oracle must flag every scenario)
  --replay      reproducer file: run it instead of fuzzing (a reproducer
                with crash_round set replays the crash-equivalence check)
  --lp-checks   N: also run N random programs through each LP/MILP
                differential check (enumeration oracles)        (default 0)
  --crash-seeds N: per scheduler, also run N scenarios through the
                checkpoint/resume crash-equivalence check -- stop at a
                randomized round, snapshot, restore, and require the final
                trace/metrics/results to match the uninterrupted run
                byte-for-byte (default 0)
  --core-seeds N: per scheduler, also run N scenarios through the
                dense-vs-event core-equivalence check -- the same scenario
                simulated under both SimCore values must produce identical
                trace/metrics/results bytes (default 0)
  --energy-seeds N: per scheduler, N scenarios with the energy/SLA axis
                randomized (power caps, state-transition costs, low-power
                thresholds, SLA class mixes): each runs under the oracle
                with the energy-conservation and cap invariants armed, AND
                through the checkpoint/resume crash-equivalence check, so
                power-state bookkeeping must survive snapshots bit-exactly
                (default 0)
  --incremental-seeds N: per scheduler, also run N scenarios through the
                incremental-vs-from-scratch solver twin check -- the same
                scenario with the persistent IncrementalLp session on and
                off must produce identical per-round schedules and per-job
                results (solver-effort metrics legitimately differ); for
                policies without an incremental path the twin is a
                determinism check (default 0)
  --frame-seeds N: mutate valid service request frames (byte flips,
                truncation, splices, oversizing) and require the service
                JSON parser to stay deterministic, non-crashing, and
                dump/parse-stable; failures write raw reproducer frames
                to --out-dir (default 0)
  --frame-replay  reproducer frame file: re-run the parser invariants on it
  --service-episodes N: run N seeded fault-injection episodes (disconnects,
                slow-loris writes, malformed/truncated/oversized frames,
                duplicate and out-of-order requests) against an in-process
                sia service; the server must answer a health probe after
                every episode (default 0)
  --disk-seeds  N: storage-fault equivalence (ISSUE 10) -- run N seeded op
                scripts against an in-process HostedCluster twice: a clean
                reference pass, then a chaos pass with injected disk faults
                (ENOSPC/EIO/torn writes/fsync failure via the FileOps seam)
                plus 0-2 crash+recover points; every response must stay
                well-formed (sheds only as retryable storage_unavailable),
                no crash may drop the cluster, and the final trace/results/
                metrics must match the clean pass byte-for-byte. Failures
                shrink ddmin-style and write a --disk-replay reproducer
                (default 0)
  --disk-replay reproducer file from a --disk-seeds failure: re-run it
  --verbose     per-scenario progress lines
)";

// ---------------------------------------------------------------------------
// Frame-corpus fuzzing: the service JSON parser under mutated inputs.
// ---------------------------------------------------------------------------

// Invariants checked on an arbitrary byte string fed to the request parser:
//  * parsing is deterministic (same outcome, value, and error twice);
//  * a successful parse round-trips: Dump() re-parses to the same Dump()
//    (canonical fixpoint, so journal replays agree with live parses);
//  * a failed parse reports a non-empty error.
// Returns true when all hold; fills *detail otherwise.
bool CheckFrameInvariants(const std::string& frame, std::string* detail) {
  sia::JsonValue first;
  sia::JsonValue second;
  std::string error_first;
  std::string error_second;
  const bool ok_first = sia::JsonValue::Parse(frame, &first, &error_first);
  const bool ok_second = sia::JsonValue::Parse(frame, &second, &error_second);
  if (ok_first != ok_second) {
    *detail = "nondeterministic parse outcome";
    return false;
  }
  if (!ok_first) {
    if (error_first.empty()) {
      *detail = "failed parse with empty error";
      return false;
    }
    if (error_first != error_second) {
      *detail = "nondeterministic parse error: '" + error_first + "' vs '" + error_second + "'";
      return false;
    }
    return true;
  }
  const std::string dump = first.Dump();
  if (dump != second.Dump()) {
    *detail = "nondeterministic dump of identical input";
    return false;
  }
  sia::JsonValue reparsed;
  std::string reparse_error;
  if (!sia::JsonValue::Parse(dump, &reparsed, &reparse_error)) {
    *detail = "dump failed to re-parse: " + reparse_error;
    return false;
  }
  if (reparsed.Dump() != dump) {
    *detail = "dump/parse is not a fixpoint";
    return false;
  }
  return true;
}

std::vector<std::string> FrameCorpus() {
  return {
      R"({"op":"create_cluster","cluster":"c1","client":"fz","seq":1,"scheduler":"sia","trace":"philly","rate":20,"hours":1,"seed":7})",
      R"({"op":"submit_job","cluster":"c1","client":"fz","seq":2,"job":{"id":42,"model":"resnet18","max_num_gpus":8,"adaptivity":"adaptive"}})",
      R"({"op":"step_round","cluster":"c1","client":"fz","seq":3,"rounds":16,"deadline_ms":0})",
      R"({"op":"query","cluster":"c1"})",
      R"({"op":"telemetry","cluster":"c1","nested":[1,2,[3,[4,{"k":"v"}]],true,null,-1.5e3]})",
  };
}

std::string MutateFrame(const std::string& base, sia::Rng* rng) {
  std::string frame = base;
  const int edits = static_cast<int>(rng->UniformInt(1, 8));
  for (int e = 0; e < edits && !frame.empty(); ++e) {
    switch (rng->UniformInt(0, 5)) {
      case 0: {  // flip one byte
        const size_t at = static_cast<size_t>(rng->UniformInt(0, frame.size() - 1));
        frame[at] = static_cast<char>(rng->UniformInt(0, 255));
        break;
      }
      case 1:  // truncate
        frame.resize(static_cast<size_t>(rng->UniformInt(0, frame.size() - 1)));
        break;
      case 2: {  // insert a random byte
        const size_t at = static_cast<size_t>(rng->UniformInt(0, frame.size()));
        frame.insert(frame.begin() + at, static_cast<char>(rng->UniformInt(0, 255)));
        break;
      }
      case 3: {  // splice a slice of the frame over another position
        const size_t from = static_cast<size_t>(rng->UniformInt(0, frame.size() - 1));
        const size_t len =
            static_cast<size_t>(rng->UniformInt(1, std::min<int64_t>(16, frame.size() - from)));
        const size_t to = static_cast<size_t>(rng->UniformInt(0, frame.size()));
        frame.insert(to, frame.substr(from, len));
        break;
      }
      case 4: {  // deep-nest to probe the depth cap
        const int depth = static_cast<int>(rng->UniformInt(1, 64));
        frame = std::string(depth, '[') + frame + std::string(depth, ']');
        break;
      }
      default: {  // pad toward (or past) the frame size cap
        const size_t pad = static_cast<size_t>(rng->UniformInt(1, 4096));
        frame.append(pad, static_cast<char>(rng->UniformInt(32, 126)));
        break;
      }
    }
  }
  return frame;
}

int ReplayFrameFile(const std::string& path) {
  std::string frame;
  std::string error;
  if (!sia::ReadFileToString(path, &frame, &error)) {
    std::cerr << "sia_fuzz: cannot read " << path << ": " << error << "\n";
    return 2;
  }
  std::string detail;
  if (!CheckFrameInvariants(frame, &detail)) {
    std::cout << "FAIL " << path << " (" << frame.size() << " bytes): " << detail << "\n";
    return 1;
  }
  std::cout << "ok   " << path << " (" << frame.size() << " bytes)\n";
  return 0;
}

int RunFrameFuzz(int64_t seeds, int64_t start_seed, const std::string& out_dir, bool verbose) {
  const std::vector<std::string> corpus = FrameCorpus();
  int failures = 0;
  for (int64_t i = 0; i < seeds; ++i) {
    const uint64_t seed = static_cast<uint64_t>(start_seed + i);
    sia::Rng rng = sia::Rng(seed).Fork("frame-fuzz", 0);
    const std::string& base = corpus[static_cast<size_t>(rng.UniformInt(0, corpus.size() - 1))];
    const std::string frame = MutateFrame(base, &rng);
    std::string detail;
    const bool ok = CheckFrameInvariants(frame, &detail);
    if (verbose || !ok) {
      std::cout << (ok ? "ok   " : "FAIL ") << "frame seed " << seed << " (" << frame.size()
                << " bytes)" << (ok ? "" : ": " + detail) << "\n";
    }
    if (ok) {
      continue;
    }
    ++failures;
    const std::string path = out_dir + "/sia_fuzz_frame_repro_seed" + std::to_string(seed) + ".bin";
    std::string write_error;
    if (sia::AtomicWriteFile(path, frame, &write_error)) {
      std::cout << "reproducer written to " << path << " (replay with --frame-replay=" << path
                << ")\n";
    } else {
      std::cerr << "sia_fuzz: failed to write " << path << ": " << write_error << "\n";
    }
  }
  std::cout << "frame fuzz: " << seeds << " frame(s), " << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Service fault-injection episodes against an in-process server.
// ---------------------------------------------------------------------------

// One raw-socket exchange; returns false only on a transport-level failure
// (which several injections intentionally cause).
bool RawExchange(const std::string& address, const std::string& frame, std::string* response) {
  std::string error;
  const int fd = sia::ConnectTo(address, &error);
  if (fd < 0) {
    return false;
  }
  bool ok = sia::WriteFrame(fd, frame);
  if (ok) {
    sia::FrameReader reader(fd, /*timeout_ms=*/10000);
    ok = reader.ReadFrame(response) == sia::FrameStatus::kFrame;
  }
  ::close(fd);
  return ok;
}

// A received response must always be well-formed: parseable, with an "ok"
// bool, and -- when ok is false -- a known error code string.
bool ResponseWellFormed(const std::string& response, std::string* detail) {
  sia::JsonValue parsed;
  std::string error;
  if (!sia::JsonValue::Parse(response, &parsed, &error)) {
    *detail = "unparseable response: " + error;
    return false;
  }
  const sia::JsonValue* ok_field = parsed.Find("ok");
  if (ok_field == nullptr || !ok_field->is_bool()) {
    *detail = "response missing bool 'ok': " + response;
    return false;
  }
  if (!ok_field->as_bool()) {
    const std::string code = parsed.GetString("error", "");
    bool known = false;
    for (int e = 0; e <= static_cast<int>(sia::ServiceError::kInternal); ++e) {
      if (code == sia::ToString(static_cast<sia::ServiceError>(e))) {
        known = true;
        break;
      }
    }
    if (!known) {
      *detail = "unknown error code in response: " + response;
      return false;
    }
  }
  return true;
}

// Runs one seeded episode of fault injection. Returns false with *detail on
// an invariant violation (transport loss alone is expected, not a failure).
bool RunServiceEpisode(const std::string& address, const std::string& cluster, uint64_t seed,
                       std::string* detail) {
  sia::Rng rng = sia::Rng(seed).Fork("service-episode", 0);
  const std::string tag = "e" + std::to_string(seed);
  const int actions = static_cast<int>(rng.UniformInt(4, 10));
  for (int a = 0; a < actions; ++a) {
    std::string response;
    switch (rng.UniformInt(0, 7)) {
      case 0: {  // valid query
        if (RawExchange(address, "{\"op\":\"query\",\"cluster\":\"" + cluster + "\"}",
                        &response) &&
            !ResponseWellFormed(response, detail)) {
          return false;
        }
        break;
      }
      case 1: {  // valid mutating request from a fresh client identity
        const std::string frame = "{\"op\":\"step_round\",\"cluster\":\"" + cluster +
                                  "\",\"client\":\"fz-" + tag + "a" + std::to_string(a) +
                                  "\",\"seq\":1,\"rounds\":1}";
        if (RawExchange(address, frame, &response) && !ResponseWellFormed(response, detail)) {
          return false;
        }
        break;
      }
      case 2: {  // malformed frame (mutated JSON)
        sia::Rng mutate_rng = rng.Fork("malformed", a);
        const std::string frame = MutateFrame(FrameCorpus()[0], &mutate_rng);
        if (RawExchange(address, frame, &response) && !ResponseWellFormed(response, detail)) {
          return false;
        }
        break;
      }
      case 3: {  // truncated frame, then disconnect mid-request
        std::string error;
        const int fd = sia::ConnectTo(address, &error);
        if (fd >= 0) {
          const std::string partial = "{\"op\":\"query\",\"clu";
          (void)::write(fd, partial.data(), partial.size());  // no newline
          ::close(fd);
        }
        break;
      }
      case 4: {  // slow-loris: dribble a valid frame in small chunks
        std::string error;
        const int fd = sia::ConnectTo(address, &error);
        if (fd >= 0) {
          const std::string frame =
              "{\"op\":\"query\",\"cluster\":\"" + cluster + "\"}\n";
          bool sent = true;
          for (size_t off = 0; off < frame.size() && sent; off += 4) {
            const size_t len = std::min<size_t>(4, frame.size() - off);
            sent = ::write(fd, frame.data() + off, len) == static_cast<ssize_t>(len);
            usleep(2000);
          }
          if (sent) {
            sia::FrameReader reader(fd, /*timeout_ms=*/10000);
            if (reader.ReadFrame(&response) == sia::FrameStatus::kFrame &&
                !ResponseWellFormed(response, detail)) {
              ::close(fd);
              return false;
            }
          }
          ::close(fd);
        }
        break;
      }
      case 5: {  // oversized frame: must be refused, never buffered forever
        std::string oversized(sia::kMaxFrameBytes + 1024, 'x');
        if (RawExchange(address, oversized, &response)) {
          if (!ResponseWellFormed(response, detail)) {
            return false;
          }
          sia::JsonValue parsed;
          std::string error;
          sia::JsonValue::Parse(response, &parsed, &error);
          if (parsed.GetBool("ok", true)) {
            *detail = "oversized frame was accepted";
            return false;
          }
        }
        break;
      }
      case 6: {  // duplicate request: same (client, seq) twice
        const std::string frame = "{\"op\":\"step_round\",\"cluster\":\"" + cluster +
                                  "\",\"client\":\"fz-dup-" + tag + "a" + std::to_string(a) +
                                  "\",\"seq\":1,\"rounds\":1}";
        std::string second;
        const bool first_ok = RawExchange(address, frame, &response);
        if (first_ok && !ResponseWellFormed(response, detail)) {
          return false;
        }
        if (RawExchange(address, frame, &second)) {
          if (!ResponseWellFormed(second, detail)) {
            return false;
          }
          sia::JsonValue first_parsed;
          sia::JsonValue second_parsed;
          std::string error;
          if (first_ok && sia::JsonValue::Parse(response, &first_parsed, &error) &&
              sia::JsonValue::Parse(second, &second_parsed, &error) &&
              first_parsed.GetBool("ok", false) && !second_parsed.GetBool("ok", false)) {
            *detail = "retry of an applied request was rejected: " + second;
            return false;
          }
        }
        break;
      }
      default: {  // out-of-order: seq jump after an applied request
        const std::string client = "fz-ooo-" + tag + "a" + std::to_string(a);
        const std::string first_frame = "{\"op\":\"step_round\",\"cluster\":\"" + cluster +
                                        "\",\"client\":\"" + client +
                                        "\",\"seq\":1,\"rounds\":1}";
        const std::string jump_frame = "{\"op\":\"step_round\",\"cluster\":\"" + cluster +
                                       "\",\"client\":\"" + client +
                                       "\",\"seq\":7,\"rounds\":1}";
        std::string jump_response;
        const bool first_ok = RawExchange(address, first_frame, &response);
        if (first_ok && !ResponseWellFormed(response, detail)) {
          return false;
        }
        if (RawExchange(address, jump_frame, &jump_response)) {
          if (!ResponseWellFormed(jump_response, detail)) {
            return false;
          }
          sia::JsonValue first_parsed;
          sia::JsonValue jump_parsed;
          std::string error;
          if (first_ok && sia::JsonValue::Parse(response, &first_parsed, &error) &&
              sia::JsonValue::Parse(jump_response, &jump_parsed, &error) &&
              first_parsed.GetBool("ok", false) && jump_parsed.GetBool("ok", false)) {
            *detail = "sequence jump was accepted after an applied request";
            return false;
          }
        }
        break;
      }
    }
  }
  return true;
}

int RunServiceEpisodes(int64_t episodes, int64_t start_seed, const std::string& out_dir,
                       bool verbose) {
  std::error_code ec;
  const std::string root = out_dir + "/sia_fuzz_service";
  std::filesystem::remove_all(root, ec);
  std::filesystem::create_directories(root, ec);
  // Short socket path: AF_UNIX caps out near 108 bytes.
  const std::string socket_path = root + "/fz.sock";

  sia::ServerOptions options;
  options.listen = "unix:" + socket_path;
  options.state_dir = root + "/state";
  options.frame_timeout_ms = 2000;  // reap slow-loris / truncated victims fast
  sia::SiaServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "sia_fuzz: cannot start in-process service: " << error << "\n";
    return 2;
  }

  // Host one cluster with a couple of jobs for the episodes to poke at.
  const std::string cluster = "fz";
  {
    sia::ClientOptions client_options;
    client_options.address = options.listen;
    client_options.client_id = "fz-setup";
    sia::ServiceClient setup(client_options);
    sia::JsonValue create = sia::JsonValue::MakeObject();
    create.Set("op", sia::JsonValue::MakeString("create_cluster"));
    create.Set("cluster", sia::JsonValue::MakeString(cluster));
    create.Set("scheduler", sia::JsonValue::MakeString("fifo"));
    create.Set("trace", sia::JsonValue::MakeString("philly"));
    create.Set("rate", sia::JsonValue::MakeNumber(10));
    create.Set("hours", sia::JsonValue::MakeNumber(1));
    const sia::ClientResult created = setup.Call(std::move(create));
    if (!created.ok) {
      std::cerr << "sia_fuzz: cannot create service cluster: " << created.message << "\n";
      server.Stop();
      return 2;
    }
  }

  int failures = 0;
  for (int64_t i = 0; i < episodes; ++i) {
    const uint64_t seed = static_cast<uint64_t>(start_seed + i);
    std::string detail;
    const bool ok = RunServiceEpisode(options.listen, cluster, seed, &detail);
    bool alive = false;
    if (ok) {
      // Health probe: the server must keep answering after every episode.
      sia::ClientOptions probe_options;
      probe_options.address = options.listen;
      probe_options.client_id = "fz-probe";
      sia::ServiceClient probe(probe_options);
      sia::JsonValue stats = sia::JsonValue::MakeObject();
      stats.Set("op", sia::JsonValue::MakeString("server_stats"));
      alive = probe.Call(std::move(stats)).ok;
      if (!alive) {
        detail = "server stopped answering the health probe";
      }
    }
    if (verbose || !ok || !alive) {
      std::cout << (ok && alive ? "ok   " : "FAIL ") << "service episode seed " << seed
                << (ok && alive ? "" : ": " + detail) << "\n";
    }
    if (!ok || !alive) {
      ++failures;
      std::cout << "replay with --service-episodes=1 --start-seed=" << seed << "\n";
    }
  }
  server.Stop();
  std::cout << "service episodes: " << episodes << " episode(s), " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Storage-fault equivalence mode (ISSUE 10): an in-process HostedCluster
// driven through a seeded op script must end byte-identical whether or not
// the script ran under injected disk faults and crash/recover cycles. The
// comparison artifacts (trace.jsonl / results.csv / metrics.json) are
// written through plain ofstreams, outside the FileOps seam, so the faults
// can only corrupt durability state -- exactly what the check targets.
// ---------------------------------------------------------------------------

struct DiskOp {
  std::string kind;  // submit | step | finalize
  int64_t id = 0;           // submit: job id
  std::string model;        // submit
  int64_t gpus = 0;         // submit
  int64_t rounds = 0;       // step
  bool snapshot_after = false;  // fire the watchdog hook after this op
};

struct DiskScenario {
  uint64_t seed = 0;
  std::string scheduler = "fifo";
  double rate = 16.0;
  double hours = 1.0;
  int snapshot_every = 4;
  int segment_entries = 3;
  // Cycle fault schedule (see FaultFileOpsOptions): the heal window
  // period-burst must stay comfortably wider than one probe+rotate+append
  // footprint or degraded mode can never escape.
  int fault_period = 40;
  int fault_burst = 2;
  std::vector<int> crash_before;  // Op indices preceded by destroy+Recover.
  std::vector<DiskOp> ops;

  std::string Describe() const {
    std::ostringstream out;
    out << "disk seed " << seed << ": " << scheduler << ", " << ops.size() << " ops, segs="
        << segment_entries << " snap=" << snapshot_every << ", faults " << fault_period << "/"
        << fault_burst << ", crashes={";
    for (size_t i = 0; i < crash_before.size(); ++i) {
      out << (i > 0 ? "," : "") << crash_before[i];
    }
    out << "}";
    return out.str();
  }
};

DiskScenario GenerateDiskScenario(uint64_t seed) {
  sia::Rng rng = sia::Rng(seed).Fork("disk-fuzz", 0);
  DiskScenario s;
  s.seed = seed;
  const char* schedulers[] = {"fifo", "srtf", "sia"};
  s.scheduler = schedulers[rng.UniformInt(0, 2)];
  s.rate = static_cast<double>(rng.UniformInt(8, 24));
  s.snapshot_every = static_cast<int>(rng.UniformInt(2, 8));
  s.segment_entries = static_cast<int>(rng.UniformInt(2, 6));
  s.fault_period = static_cast<int>(rng.UniformInt(30, 120));
  s.fault_burst = static_cast<int>(rng.UniformInt(1, 6));
  const int submits = static_cast<int>(rng.UniformInt(1, 3));
  const int steps = static_cast<int>(rng.UniformInt(6, 18));
  for (int i = 0; i < submits; ++i) {
    DiskOp op;
    op.kind = "submit";
    op.id = 900000 + i;  // Clear of trace-generated job ids.
    op.model = (i % 2 == 0) ? "resnet18" : "bert";
    op.gpus = rng.UniformInt(0, 1) == 0 ? 4 : 8;
    s.ops.push_back(op);
  }
  for (int i = 0; i < steps; ++i) {
    DiskOp op;
    op.kind = "step";
    op.rounds = rng.UniformInt(1, 3);
    op.snapshot_after = rng.UniformInt(0, 3) == 0;
    s.ops.push_back(op);
  }
  DiskOp fin;
  fin.kind = "finalize";
  s.ops.push_back(fin);
  const int crashes = static_cast<int>(rng.UniformInt(0, 2));
  std::set<int> crash_set;
  for (int c = 0; c < crashes; ++c) {
    crash_set.insert(static_cast<int>(rng.UniformInt(1, static_cast<int64_t>(s.ops.size()) - 1)));
  }
  s.crash_before.assign(crash_set.begin(), crash_set.end());
  return s;
}

sia::JsonValue DiskOpFrame(const DiskScenario& s, const DiskOp& op, int64_t seq) {
  sia::JsonValue req = sia::JsonValue::MakeObject();
  req.Set("cluster", sia::JsonValue::MakeString("dz"));
  req.Set("client", sia::JsonValue::MakeString("dz-fz"));
  req.Set("seq", sia::JsonValue::MakeNumber(static_cast<double>(seq)));
  if (op.kind == "submit") {
    req.Set("op", sia::JsonValue::MakeString("submit_job"));
    sia::JsonValue job = sia::JsonValue::MakeObject();
    job.Set("id", sia::JsonValue::MakeNumber(static_cast<double>(op.id)));
    job.Set("model", sia::JsonValue::MakeString(op.model));
    job.Set("max_num_gpus", sia::JsonValue::MakeNumber(static_cast<double>(op.gpus)));
    req.Set("job", std::move(job));
  } else if (op.kind == "step") {
    req.Set("op", sia::JsonValue::MakeString("step_round"));
    req.Set("rounds", sia::JsonValue::MakeNumber(static_cast<double>(op.rounds)));
    if (s.scheduler == "sia") {
      // A 0 ms budget forces the deterministic carry_over rung; a positive
      // wall-clock deadline would replay nondeterministically (see engine.h).
      req.Set("deadline_ms", sia::JsonValue::MakeNumber(0));
    }
  } else {
    req.Set("op", sia::JsonValue::MakeString("finalize"));
  }
  return req;
}

// Runs the op script once under `root`. In the faulted pass, crashes
// (destroy + Recover, no graceful close) fire before the scripted op
// indices, and sheds are retried like a real client would: every shed must
// be the typed retryable storage_unavailable, and the cycle fault schedule
// guarantees a heal window so retries terminate.
bool RunDiskPass(const DiskScenario& s, const std::string& root, bool faulted,
                 std::string* detail) {
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  std::filesystem::create_directories(root, ec);

  sia::ClusterCreateSpec spec;
  spec.name = "dz";
  spec.scheduler = s.scheduler;
  spec.trace = "philly";
  spec.rate_per_hour = s.rate;
  spec.hours = s.hours;
  spec.seed = s.seed;
  spec.snapshot_every = s.snapshot_every;
  spec.segment_entries = s.segment_entries;
  if (s.scheduler == "sia") {
    spec.round_deadline_ms = 0.0;
  }

  std::string error;
  std::unique_ptr<sia::HostedCluster> host;
  for (int attempt = 0; attempt < 100 && host == nullptr; ++attempt) {
    host = sia::HostedCluster::Create(root, spec, &error);  // Retry is idempotent.
  }
  if (host == nullptr) {
    *detail = "create never succeeded: " + error;
    return false;
  }

  const std::set<int> crash_before(s.crash_before.begin(), s.crash_before.end());
  int64_t next_seq = 1;  // Advances only when the engine applies the op.
  for (size_t i = 0; i < s.ops.size(); ++i) {
    if (faulted && crash_before.count(static_cast<int>(i)) > 0) {
      host.reset();  // SIGKILL analog: no final snapshot, no graceful close.
      host = sia::HostedCluster::Recover(root, "dz", &error);
      if (host == nullptr) {
        *detail = "cluster dropped by recovery before op " + std::to_string(i) + ": " + error;
        return false;
      }
    }
    const sia::JsonValue req = DiskOpFrame(s, s.ops[i], next_seq);
    bool acked = false;
    for (int attempt = 0; attempt < 500 && !acked; ++attempt) {
      const std::string response = host->HandleRequest(req);
      if (!ResponseWellFormed(response, detail)) {
        *detail = "op " + std::to_string(i) + ": " + *detail;
        return false;
      }
      sia::JsonValue parsed;
      std::string parse_error;
      sia::JsonValue::Parse(response, &parsed, &parse_error);
      if (parsed.GetBool("ok", false)) {
        acked = true;
        ++next_seq;
        break;
      }
      const std::string code = parsed.GetString("error", "");
      if (code == sia::ToString(sia::ServiceError::kClusterDone)) {
        // Stepping past completion auto-finalizes the sim; later mutations
        // deterministically bounce off it in both passes. The bounce never
        // consumed a seq, so the next op reuses it.
        acked = true;
        break;
      }
      if (code != sia::ToString(sia::ServiceError::kStorageUnavailable)) {
        *detail = "op " + std::to_string(i) + " failed non-retryably: " + response;
        return false;
      }
      if (!faulted) {
        *detail = "op " + std::to_string(i) + " shed storage_unavailable in the clean pass";
        return false;
      }
    }
    if (!acked) {
      *detail = "op " + std::to_string(i) + " never acked (cluster stuck degraded)";
      return false;
    }
    if (s.ops[i].snapshot_after) {
      std::string snap_error;
      (void)host->Snapshot(&snap_error);  // Failure self-degrades; probes heal it.
    }
  }
  return true;
}

// Reference pass (clean) + chaos pass (faults and crashes) + byte compare.
bool RunDiskSeed(const DiskScenario& s, const std::string& work_root, std::string* detail,
                 uint64_t* injected) {
  const std::string ref_root = work_root + "/ref";
  const std::string chaos_root = work_root + "/chaos";
  if (!RunDiskPass(s, ref_root, /*faulted=*/false, detail)) {
    *detail = "reference pass: " + *detail;
    return false;
  }
  {
    sia::FaultFileOpsOptions fault_options;
    fault_options.period = s.fault_period;
    fault_options.burst = s.fault_burst;
    fault_options.seed = s.seed;
    sia::FaultInjectingFileOps fault_ops(fault_options);
    sia::SetFileOps(&fault_ops);
    const bool ok = RunDiskPass(s, chaos_root, /*faulted=*/true, detail);
    sia::SetFileOps(nullptr);  // Before fault_ops goes out of scope.
    if (injected != nullptr) {
      *injected = fault_ops.stats().injected;
    }
    if (!ok) {
      *detail = "chaos pass: " + *detail;
      return false;
    }
  }
  for (const char* file : {"trace.jsonl", "results.csv", "metrics.json"}) {
    const std::string ref_path = ref_root + "/dz/" + file;
    const std::string chaos_path = chaos_root + "/dz/" + file;
    std::string ref_bytes;
    std::string chaos_bytes;
    std::string read_error;
    if (!sia::ReadFileToString(ref_path, &ref_bytes, &read_error)) {
      *detail = "cannot read " + ref_path + ": " + read_error;
      return false;
    }
    if (!sia::ReadFileToString(chaos_path, &chaos_bytes, &read_error)) {
      *detail = "cannot read " + chaos_path + ": " + read_error;
      return false;
    }
    if (ref_bytes != chaos_bytes) {
      *detail = std::string(file) + " diverged under faults (" +
                std::to_string(ref_bytes.size()) + " vs " + std::to_string(chaos_bytes.size()) +
                " bytes)";
      return false;
    }
  }
  return true;
}

std::string DiskScenarioToText(const DiskScenario& s) {
  std::ostringstream out;
  out << "disk_scenario v1\n";
  out << "seed " << s.seed << "\n";
  out << "scheduler " << s.scheduler << "\n";
  out << "rate " << s.rate << "\n";
  out << "hours " << s.hours << "\n";
  out << "snapshot_every " << s.snapshot_every << "\n";
  out << "segment_entries " << s.segment_entries << "\n";
  out << "fault_period " << s.fault_period << "\n";
  out << "fault_burst " << s.fault_burst << "\n";
  out << "crash_before";
  for (int c : s.crash_before) {
    out << " " << c;
  }
  out << "\n";
  for (const DiskOp& op : s.ops) {
    if (op.kind == "submit") {
      out << "op submit " << op.id << " " << op.model << " " << op.gpus;
    } else if (op.kind == "step") {
      out << "op step " << op.rounds;
    } else {
      out << "op finalize";
    }
    out << (op.snapshot_after ? " snapshot" : "") << "\n";
  }
  return out.str();
}

bool DiskScenarioFromText(const std::string& text, DiskScenario* s, std::string* error) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != "disk_scenario v1") {
    *error = "not a disk_scenario v1 file";
    return false;
  }
  s->ops.clear();
  s->crash_before.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "seed") {
      fields >> s->seed;
    } else if (key == "scheduler") {
      fields >> s->scheduler;
    } else if (key == "rate") {
      fields >> s->rate;
    } else if (key == "hours") {
      fields >> s->hours;
    } else if (key == "snapshot_every") {
      fields >> s->snapshot_every;
    } else if (key == "segment_entries") {
      fields >> s->segment_entries;
    } else if (key == "fault_period") {
      fields >> s->fault_period;
    } else if (key == "fault_burst") {
      fields >> s->fault_burst;
    } else if (key == "crash_before") {
      int c = 0;
      while (fields >> c) {
        s->crash_before.push_back(c);
      }
    } else if (key == "op") {
      DiskOp op;
      fields >> op.kind;
      if (op.kind == "submit") {
        fields >> op.id >> op.model >> op.gpus;
      } else if (op.kind == "step") {
        fields >> op.rounds;
      } else if (op.kind != "finalize") {
        *error = "unknown op kind: " + op.kind;
        return false;
      }
      std::string tail;
      if (fields >> tail && tail == "snapshot") {
        op.snapshot_after = true;
      }
      s->ops.push_back(op);
    } else {
      *error = "unknown key: " + key;
      return false;
    }
  }
  if (s->ops.empty()) {
    *error = "scenario has no ops";
    return false;
  }
  return true;
}

// ddmin-style shrink: chunked op removal (halving chunk sizes), then crash
// points, then softening the fault schedule -- keeping every candidate that
// still fails the equivalence check.
DiskScenario ShrinkDiskScenario(const DiskScenario& failing, const std::string& work_root,
                                int max_evals, int* evals) {
  DiskScenario best = failing;
  auto still_fails = [&](const DiskScenario& candidate) {
    if (*evals >= max_evals) {
      return false;
    }
    ++*evals;
    std::string detail;
    return !RunDiskSeed(candidate, work_root, &detail, nullptr);
  };

  // Chunked op removal; the final op (finalize) is pinned so outputs exist.
  size_t chunk = best.ops.size() / 2;
  while (chunk >= 1 && *evals < max_evals) {
    bool removed_any = false;
    size_t at = 0;
    while (at + 1 < best.ops.size() && *evals < max_evals) {
      const size_t take = std::min(chunk, best.ops.size() - 1 - at);
      if (take == 0) {
        break;
      }
      DiskScenario candidate = best;
      candidate.ops.erase(candidate.ops.begin() + static_cast<int64_t>(at),
                          candidate.ops.begin() + static_cast<int64_t>(at + take));
      std::vector<int> crashes;
      for (int c : candidate.crash_before) {
        const int shifted = c < static_cast<int>(at)          ? c
                            : c >= static_cast<int>(at + take) ? c - static_cast<int>(take)
                                                               : -1;  // Inside: drop.
        if (shifted >= 1 && shifted < static_cast<int>(candidate.ops.size())) {
          crashes.push_back(shifted);
        }
      }
      candidate.crash_before = crashes;
      if (still_fails(candidate)) {
        best = candidate;
        removed_any = true;
      } else {
        at += take;
      }
    }
    if (!removed_any) {
      chunk /= 2;
    }
  }
  // Drop crash points one at a time.
  size_t c = 0;
  while (c < best.crash_before.size() && *evals < max_evals) {
    DiskScenario candidate = best;
    candidate.crash_before.erase(candidate.crash_before.begin() + static_cast<int64_t>(c));
    if (still_fails(candidate)) {
      best = candidate;
    } else {
      ++c;
    }
  }
  // Soften the fault schedule while the failure persists.
  while (*evals < max_evals) {
    DiskScenario candidate = best;
    if (candidate.fault_burst > 1) {
      candidate.fault_burst /= 2;
    } else if (candidate.fault_period < 1 << 12) {
      candidate.fault_period *= 2;
    } else {
      break;
    }
    if (!still_fails(candidate)) {
      break;
    }
    best = candidate;
  }
  return best;
}

int ReplayDiskFile(const std::string& path, const std::string& out_dir) {
  std::string text;
  std::string error;
  if (!sia::ReadFileToString(path, &text, &error)) {
    std::cerr << "sia_fuzz: cannot read " << path << ": " << error << "\n";
    return 2;
  }
  DiskScenario s;
  if (!DiskScenarioFromText(text, &s, &error)) {
    std::cerr << "sia_fuzz: cannot parse " << path << ": " << error << "\n";
    return 2;
  }
  std::cout << "replaying " << path << ": " << s.Describe() << "\n";
  std::string detail;
  uint64_t injected = 0;
  const bool ok = RunDiskSeed(s, out_dir + "/sia_fuzz_disk_replay", &detail, &injected);
  std::cout << (ok ? "ok   " : "FAIL ") << s.Describe() << " (" << injected
            << " injected faults)" << (ok ? "" : ": " + detail) << "\n";
  return ok ? 0 : 1;
}

int RunDiskFuzz(int64_t seeds, int64_t start_seed, const std::string& out_dir, bool shrink,
                bool verbose) {
  const std::string work_root = out_dir + "/sia_fuzz_disk";
  int failures = 0;
  for (int64_t i = 0; i < seeds; ++i) {
    const uint64_t seed = static_cast<uint64_t>(start_seed + i);
    const DiskScenario scenario = GenerateDiskScenario(seed);
    std::string detail;
    uint64_t injected = 0;
    const bool ok = RunDiskSeed(scenario, work_root, &detail, &injected);
    if (verbose || !ok) {
      std::cout << (ok ? "ok   " : "FAIL ") << scenario.Describe() << " (" << injected
                << " injected faults)" << (ok ? "" : ": " + detail) << "\n";
    }
    if (ok) {
      continue;
    }
    ++failures;
    DiskScenario minimal = scenario;
    if (shrink) {
      int evals = 0;
      minimal = ShrinkDiskScenario(scenario, work_root, /*max_evals=*/40, &evals);
      std::cout << "shrunk after " << evals << " evaluations: " << minimal.Describe() << "\n";
    }
    const std::string path =
        out_dir + "/sia_fuzz_disk_repro_seed" + std::to_string(seed) + ".txt";
    std::string write_error;
    if (sia::AtomicWriteFile(path, DiskScenarioToText(minimal), &write_error)) {
      std::cout << "reproducer written to " << path << " (replay with --disk-replay=" << path
                << ")\n";
    } else {
      std::cerr << "sia_fuzz: failed to write " << path << ": " << write_error << "\n";
    }
  }
  std::error_code ec;
  if (failures == 0) {
    std::filesystem::remove_all(work_root, ec);  // Keep state dirs on failure.
  }
  std::cout << "disk fuzz: " << seeds << " scenario(s), " << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

struct FuzzStats {
  int scenarios = 0;
  int failures = 0;
};

int ReplayReproducer(const std::string& path, const sia::testing::FuzzRunOptions& options) {
  sia::testing::Scenario scenario;
  std::string error;
  if (!sia::testing::ReadScenario(path, &scenario, &error)) {
    std::cerr << "sia_fuzz: cannot read " << path << ": " << error << "\n";
    return 2;
  }
  std::cout << "replaying " << path << ": " << scenario.Describe() << "\n";
  if (scenario.crash_round >= 0) {
    // Crash-mode reproducer: replay the crash-equivalence check at the
    // pinned round instead of the oracle run.
    const sia::testing::CrashCheckResult result = sia::testing::CheckCrashEquivalence(scenario);
    std::cout << (result.ok ? "crash-equivalent at round " : "NOT crash-equivalent at round ")
              << result.crash_round << "\n";
    if (!result.report.empty()) {
      std::cout << result.report << "\n";
    }
    return result.ok ? 0 : 1;
  }
  const sia::testing::FuzzRunResult result = sia::testing::RunScenarioWithOracle(scenario, options);
  std::cout << result.report << "\n";
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return 2;
  }
  const int64_t num_seeds = flags.GetInt("seeds", 20);
  const int64_t start_seed = flags.GetInt("start-seed", 1);
  const std::string scheduler = flags.GetString("scheduler", "");
  const std::string out_dir = flags.GetString("out-dir", ".");
  const bool shrink = !flags.GetBool("no-shrink", false);
  const bool differential = !flags.GetBool("no-differential", false);
  const std::string inject = flags.GetString("inject-bug", "");
  const std::string replay = flags.GetString("replay", "");
  const int64_t lp_checks = flags.GetInt("lp-checks", 0);
  const int64_t crash_seeds = flags.GetInt("crash-seeds", 0);
  const int64_t core_seeds = flags.GetInt("core-seeds", 0);
  const int64_t incremental_seeds = flags.GetInt("incremental-seeds", 0);
  const int64_t energy_seeds = flags.GetInt("energy-seeds", 0);
  const int64_t frame_seeds = flags.GetInt("frame-seeds", 0);
  const std::string frame_replay = flags.GetString("frame-replay", "");
  const int64_t service_episodes = flags.GetInt("service-episodes", 0);
  const int64_t disk_seeds = flags.GetInt("disk-seeds", 0);
  const std::string disk_replay = flags.GetString("disk-replay", "");
  const bool verbose = flags.GetBool("verbose", false);
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "sia_fuzz: unknown flag --" << unknown << "\n" << kUsage;
    return 2;
  }

  sia::testing::FuzzRunOptions run_options;
  run_options.differential = differential;
  if (inject == "oversub") {
    run_options.inject = sia::testing::BugInjection::kOversubscribe;
  } else if (!inject.empty()) {
    std::cerr << "sia_fuzz: unknown --inject-bug value " << inject << "\n";
    return 2;
  }

  if (!replay.empty()) {
    return ReplayReproducer(replay, run_options);
  }
  if (!frame_replay.empty()) {
    return ReplayFrameFile(frame_replay);
  }
  if (!disk_replay.empty()) {
    return ReplayDiskFile(disk_replay, out_dir);
  }
  if (!scheduler.empty() && !sia::testing::KnownScheduler(scheduler)) {
    std::cerr << "sia_fuzz: unknown scheduler " << scheduler << "\n";
    return 2;
  }

  int exit_code = 0;

  if (frame_seeds > 0) {
    if (RunFrameFuzz(frame_seeds, start_seed, out_dir, verbose) != 0) {
      exit_code = 1;
    }
  }
  if (service_episodes > 0) {
    const int rc = RunServiceEpisodes(service_episodes, start_seed, out_dir, verbose);
    if (rc != 0) {
      exit_code = std::max(exit_code, rc == 2 ? 2 : 1);
    }
  }
  if (disk_seeds > 0) {
    if (RunDiskFuzz(disk_seeds, start_seed, out_dir, shrink, verbose) != 0) {
      exit_code = 1;
    }
  }

  if (lp_checks > 0) {
    sia::testing::LpCheckStats stats;
    sia::testing::CheckMilpAgainstEnumeration(static_cast<uint64_t>(start_seed),
                                              static_cast<int>(lp_checks), &stats);
    sia::testing::CheckSimplexAgainstEnumeration(static_cast<uint64_t>(start_seed),
                                                 static_cast<int>(lp_checks), &stats);
    sia::testing::CheckSiaShapedIlp(static_cast<uint64_t>(start_seed),
                                    static_cast<int>(lp_checks), &stats);
    std::cout << "lp differential: " << stats.Report() << "\n";
    if (!stats.ok()) {
      exit_code = 1;
    }
  }

  std::vector<std::string> schedulers;
  if (!scheduler.empty()) {
    schedulers.push_back(scheduler);
  } else {
    schedulers = sia::testing::AllSchedulers();
  }

  FuzzStats stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < num_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateScenario(seed, name);
      ++stats.scenarios;
      const sia::testing::FuzzRunResult result =
          sia::testing::RunScenarioWithOracle(scenario, run_options);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " ("
                  << result.rounds << " rounds)\n";
      }
      if (result.ok) {
        continue;
      }
      ++stats.failures;
      exit_code = 1;
      std::cout << result.report << "\n";
      sia::testing::Scenario minimal = scenario;
      if (shrink) {
        int evals = 0;
        minimal = sia::testing::ShrinkScenario(scenario, run_options, /*max_evals=*/200, &evals);
        std::cout << "shrunk after " << evals << " evaluations: " << minimal.Describe() << "\n";
      }
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), minimal)) {
        std::cout << "reproducer written to " << path.str() << " (replay with --replay=" << path.str()
                  << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  // Crash-point mode: checkpoint/resume crash-equivalence at a randomized
  // round per seed. Failures write a reproducer with the crash round pinned
  // so --replay re-runs the exact same three-way comparison.
  FuzzStats crash_stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < crash_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateScenario(seed, name);
      ++crash_stats.scenarios;
      const sia::testing::CrashCheckResult result = sia::testing::CheckCrashEquivalence(scenario);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " (crash at round "
                  << result.crash_round << " of " << result.rounds << ")\n";
      }
      if (result.ok) {
        continue;
      }
      ++crash_stats.failures;
      exit_code = 1;
      std::cout << result.report << "\n";
      sia::testing::Scenario repro = scenario;
      repro.crash_round = result.crash_round;
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_crash_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), repro)) {
        std::cout << "reproducer written to " << path.str() << " (replay with --replay=" << path.str()
                  << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  // Core-equivalence mode (ISSUE 7): dense vs event simulation cores must be
  // byte-identical on every scenario. A failing seed regenerates
  // deterministically, so the replay instruction pins (scheduler, seed).
  FuzzStats core_stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < core_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateScenario(seed, name);
      ++core_stats.scenarios;
      const sia::testing::CoreCheckResult result = sia::testing::CheckCoreEquivalence(scenario);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " ("
                  << result.rounds << " rounds)\n";
      }
      if (result.ok) {
        continue;
      }
      ++core_stats.failures;
      exit_code = 1;
      std::cout << result.report << "\n";
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_core_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), scenario)) {
        std::cout << "reproducer written to " << path.str() << " (replay with --core-seeds=1"
                  << " --scheduler=" << name << " --start-seed=" << seed << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  // Incremental-solve twin mode (ISSUE 8): the persistent IncrementalLp
  // session must be result-invisible -- only solve cost may change. A
  // failing seed regenerates deterministically, so the replay instruction
  // pins (scheduler, seed).
  FuzzStats incremental_stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < incremental_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateScenario(seed, name);
      ++incremental_stats.scenarios;
      const sia::testing::IncrementalCheckResult result =
          sia::testing::CheckIncrementalEquivalence(scenario);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " ("
                  << result.rounds << " rounds)\n";
      }
      if (result.ok) {
        continue;
      }
      ++incremental_stats.failures;
      exit_code = 1;
      std::cout << result.report << "\n";
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_incremental_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), scenario)) {
        std::cout << "reproducer written to " << path.str()
                  << " (replay with --incremental-seeds=1 --scheduler=" << name
                  << " --start-seed=" << seed << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  // Energy/SLA mode (ISSUE 9): scenarios with randomized power caps,
  // state-transition costs, low-power thresholds, and SLA class mixes run
  // under the oracle with the energy-conservation + cap invariants armed,
  // and additionally through the checkpoint/resume crash-equivalence check
  // so power-state bookkeeping must survive snapshots bit-exactly.
  FuzzStats energy_stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < energy_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateEnergyScenario(seed, name);
      ++energy_stats.scenarios;
      const sia::testing::FuzzRunResult result =
          sia::testing::RunScenarioWithOracle(scenario, run_options);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " ("
                  << result.rounds << " rounds)\n";
      }
      if (!result.ok) {
        ++energy_stats.failures;
        exit_code = 1;
        std::cout << result.report << "\n";
        sia::testing::Scenario minimal = scenario;
        if (shrink) {
          int evals = 0;
          minimal = sia::testing::ShrinkScenario(scenario, run_options, /*max_evals=*/200, &evals);
          std::cout << "shrunk after " << evals << " evaluations: " << minimal.Describe() << "\n";
        }
        std::ostringstream path;
        path << out_dir << "/sia_fuzz_energy_repro_" << name << "_seed" << seed << ".txt";
        if (sia::testing::WriteScenario(path.str(), minimal)) {
          std::cout << "reproducer written to " << path.str()
                    << " (replay with --replay=" << path.str() << ")\n";
        } else {
          std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
        }
        continue;
      }
      const sia::testing::CrashCheckResult crash = sia::testing::CheckCrashEquivalence(scenario);
      if (verbose || !crash.ok) {
        std::cout << (crash.ok ? "ok   " : "FAIL ") << scenario.Describe()
                  << " (crash at round " << crash.crash_round << " of " << crash.rounds << ")\n";
      }
      if (crash.ok) {
        continue;
      }
      ++energy_stats.failures;
      exit_code = 1;
      std::cout << crash.report << "\n";
      sia::testing::Scenario repro = scenario;
      repro.crash_round = crash.crash_round;
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_energy_crash_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), repro)) {
        std::cout << "reproducer written to " << path.str()
                  << " (replay with --replay=" << path.str() << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  std::cout << "sia_fuzz: " << stats.scenarios << " scenarios across " << schedulers.size()
            << " scheduler(s), " << stats.failures << " failure(s)";
  if (crash_stats.scenarios > 0) {
    std::cout << "; crash mode: " << crash_stats.scenarios << " scenario(s), "
              << crash_stats.failures << " failure(s)";
  }
  if (core_stats.scenarios > 0) {
    std::cout << "; core mode: " << core_stats.scenarios << " scenario(s), "
              << core_stats.failures << " failure(s)";
  }
  if (incremental_stats.scenarios > 0) {
    std::cout << "; incremental mode: " << incremental_stats.scenarios << " scenario(s), "
              << incremental_stats.failures << " failure(s)";
  }
  if (energy_stats.scenarios > 0) {
    std::cout << "; energy mode: " << energy_stats.scenarios << " scenario(s), "
              << energy_stats.failures << " failure(s)";
  }
  std::cout << "\n";
  return exit_code;
}
