// Scenario fuzzer: randomized differential testing of every scheduling
// policy against the cluster-invariant oracle (src/testing/).
//
// Each seed generates a small randomized scenario (cluster shape, job
// trace, fault cocktail, scheduler knobs), runs it under the invariant
// oracle (plus differential twin runs for sia/pollux), and -- on failure --
// shrinks it to a minimal reproducer file that replays byte-identically:
//
//   sia_fuzz --seeds=200                      # fuzz all policies
//   sia_fuzz --seeds=50 --scheduler=sia       # one policy
//   sia_fuzz --replay=repro.txt               # re-run a reproducer
//   sia_fuzz --lp-checks=200                  # solver differential checks
//   sia_fuzz --seeds=5 --inject-bug=oversub   # demo: oracle must catch it
//   sia_fuzz --seeds=0 --crash-seeds=20       # checkpoint/resume equivalence
//                                             # at a random round per seed
//
// Exit status: 0 when every scenario passed, 1 on any violation.
#include <iostream>
#include <sstream>
#include <string>

#include "src/common/flags.h"
#include "src/testing/fuzz_harness.h"
#include "src/testing/lp_differential.h"
#include "src/testing/scenario.h"

namespace {

constexpr char kUsage[] = R"(usage: sia_fuzz [flags]
  --seeds       N: scenarios per scheduler                     (default 20)
  --start-seed  first seed (scenario i uses start-seed + i)    (default 1)
  --scheduler   restrict to one policy (default: all of
                sia|pollux|gavel|allox|shockwave|themis|fifo|srtf)
  --out-dir     directory for shrunk reproducer files          (default .)
  --no-shrink   keep failing scenarios unshrunk
  --no-differential  skip warm-vs-cold / thread-count twin runs
  --inject-bug  oversub: wrap the scheduler with a deliberate
                capacity bug (the oracle must flag every scenario)
  --replay      reproducer file: run it instead of fuzzing (a reproducer
                with crash_round set replays the crash-equivalence check)
  --lp-checks   N: also run N random programs through each LP/MILP
                differential check (enumeration oracles)        (default 0)
  --crash-seeds N: per scheduler, also run N scenarios through the
                checkpoint/resume crash-equivalence check -- stop at a
                randomized round, snapshot, restore, and require the final
                trace/metrics/results to match the uninterrupted run
                byte-for-byte (default 0)
  --verbose     per-scenario progress lines
)";

struct FuzzStats {
  int scenarios = 0;
  int failures = 0;
};

int ReplayReproducer(const std::string& path, const sia::testing::FuzzRunOptions& options) {
  sia::testing::Scenario scenario;
  std::string error;
  if (!sia::testing::ReadScenario(path, &scenario, &error)) {
    std::cerr << "sia_fuzz: cannot read " << path << ": " << error << "\n";
    return 2;
  }
  std::cout << "replaying " << path << ": " << scenario.Describe() << "\n";
  if (scenario.crash_round >= 0) {
    // Crash-mode reproducer: replay the crash-equivalence check at the
    // pinned round instead of the oracle run.
    const sia::testing::CrashCheckResult result = sia::testing::CheckCrashEquivalence(scenario);
    std::cout << (result.ok ? "crash-equivalent at round " : "NOT crash-equivalent at round ")
              << result.crash_round << "\n";
    if (!result.report.empty()) {
      std::cout << result.report << "\n";
    }
    return result.ok ? 0 : 1;
  }
  const sia::testing::FuzzRunResult result = sia::testing::RunScenarioWithOracle(scenario, options);
  std::cout << result.report << "\n";
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return 2;
  }
  const int64_t num_seeds = flags.GetInt("seeds", 20);
  const int64_t start_seed = flags.GetInt("start-seed", 1);
  const std::string scheduler = flags.GetString("scheduler", "");
  const std::string out_dir = flags.GetString("out-dir", ".");
  const bool shrink = !flags.GetBool("no-shrink", false);
  const bool differential = !flags.GetBool("no-differential", false);
  const std::string inject = flags.GetString("inject-bug", "");
  const std::string replay = flags.GetString("replay", "");
  const int64_t lp_checks = flags.GetInt("lp-checks", 0);
  const int64_t crash_seeds = flags.GetInt("crash-seeds", 0);
  const bool verbose = flags.GetBool("verbose", false);
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "sia_fuzz: unknown flag --" << unknown << "\n" << kUsage;
    return 2;
  }

  sia::testing::FuzzRunOptions run_options;
  run_options.differential = differential;
  if (inject == "oversub") {
    run_options.inject = sia::testing::BugInjection::kOversubscribe;
  } else if (!inject.empty()) {
    std::cerr << "sia_fuzz: unknown --inject-bug value " << inject << "\n";
    return 2;
  }

  if (!replay.empty()) {
    return ReplayReproducer(replay, run_options);
  }
  if (!scheduler.empty() && !sia::testing::KnownScheduler(scheduler)) {
    std::cerr << "sia_fuzz: unknown scheduler " << scheduler << "\n";
    return 2;
  }

  int exit_code = 0;

  if (lp_checks > 0) {
    sia::testing::LpCheckStats stats;
    sia::testing::CheckMilpAgainstEnumeration(static_cast<uint64_t>(start_seed),
                                              static_cast<int>(lp_checks), &stats);
    sia::testing::CheckSimplexAgainstEnumeration(static_cast<uint64_t>(start_seed),
                                                 static_cast<int>(lp_checks), &stats);
    sia::testing::CheckSiaShapedIlp(static_cast<uint64_t>(start_seed),
                                    static_cast<int>(lp_checks), &stats);
    std::cout << "lp differential: " << stats.Report() << "\n";
    if (!stats.ok()) {
      exit_code = 1;
    }
  }

  std::vector<std::string> schedulers;
  if (!scheduler.empty()) {
    schedulers.push_back(scheduler);
  } else {
    schedulers = sia::testing::AllSchedulers();
  }

  FuzzStats stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < num_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateScenario(seed, name);
      ++stats.scenarios;
      const sia::testing::FuzzRunResult result =
          sia::testing::RunScenarioWithOracle(scenario, run_options);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " ("
                  << result.rounds << " rounds)\n";
      }
      if (result.ok) {
        continue;
      }
      ++stats.failures;
      exit_code = 1;
      std::cout << result.report << "\n";
      sia::testing::Scenario minimal = scenario;
      if (shrink) {
        int evals = 0;
        minimal = sia::testing::ShrinkScenario(scenario, run_options, /*max_evals=*/200, &evals);
        std::cout << "shrunk after " << evals << " evaluations: " << minimal.Describe() << "\n";
      }
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), minimal)) {
        std::cout << "reproducer written to " << path.str() << " (replay with --replay=" << path.str()
                  << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  // Crash-point mode: checkpoint/resume crash-equivalence at a randomized
  // round per seed. Failures write a reproducer with the crash round pinned
  // so --replay re-runs the exact same three-way comparison.
  FuzzStats crash_stats;
  for (const std::string& name : schedulers) {
    for (int64_t i = 0; i < crash_seeds; ++i) {
      const uint64_t seed = static_cast<uint64_t>(start_seed + i);
      sia::testing::Scenario scenario = sia::testing::GenerateScenario(seed, name);
      ++crash_stats.scenarios;
      const sia::testing::CrashCheckResult result = sia::testing::CheckCrashEquivalence(scenario);
      if (verbose || !result.ok) {
        std::cout << (result.ok ? "ok   " : "FAIL ") << scenario.Describe() << " (crash at round "
                  << result.crash_round << " of " << result.rounds << ")\n";
      }
      if (result.ok) {
        continue;
      }
      ++crash_stats.failures;
      exit_code = 1;
      std::cout << result.report << "\n";
      sia::testing::Scenario repro = scenario;
      repro.crash_round = result.crash_round;
      std::ostringstream path;
      path << out_dir << "/sia_fuzz_crash_repro_" << name << "_seed" << seed << ".txt";
      if (sia::testing::WriteScenario(path.str(), repro)) {
        std::cout << "reproducer written to " << path.str() << " (replay with --replay=" << path.str()
                  << ")\n";
      } else {
        std::cerr << "sia_fuzz: failed to write " << path.str() << "\n";
      }
    }
  }

  std::cout << "sia_fuzz: " << stats.scenarios << " scenarios across " << schedulers.size()
            << " scheduler(s), " << stats.failures << " failure(s)";
  if (crash_stats.scenarios > 0) {
    std::cout << "; crash mode: " << crash_stats.scenarios << " scenario(s), "
              << crash_stats.failures << " failure(s)";
  }
  std::cout << "\n";
  return exit_code;
}
