#!/usr/bin/env python3
"""Validate a sia_simulate JSONL run trace against the documented schema.

Usage:
  check_trace_schema.py trace.jsonl            # validate an existing trace
  check_trace_schema.py --simulate BIN [ARGS]  # run BIN twice with a fixed
                                               # seed, require byte-identical
                                               # traces, then validate

Stdlib only (json/subprocess/tempfile); exits 0 on success, 1 with a
diagnostic on the first violation. The schema is documented in DESIGN.md
("Observability" section); keep the two in sync.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

# v1: the original schema. v2: same records plus optional energy/SLA fields
# (emitted only when the run tracks energy, so v1 traces stay byte-identical).
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

# type -> {field: allowed json types}; "?" prefix marks optional fields.
REQUIRED_FIELDS = {
    "manifest": {
        "schema_version": int,
        "scheduler": str,
        "cluster_nodes": int,
        "cluster_gpus": int,
        "num_jobs": int,
        "seed": int,
        "profiling_mode": str,
        "round_seconds": (int, float),
        "faults_enabled": bool,
        "?energy_tracked": bool,
        "?power_cap_watts": (int, float),
    },
    "round": {
        "round": int,
        "t": (int, float),
        "active_jobs": int,
        "running_jobs": int,
        "queued_jobs": int,
        "busy_gpus": int,
        "available_gpus": int,
        "down_nodes": int,
        "solver_bb_nodes": int,
        "solver_lp_iterations": int,
        "estimator_refits": int,
        "ladder_rung": int,
        "?schedule_ms": (int, float),
        "?busy_watts": (int, float),
        "?parked_gpus": int,
        "?energy_joules": (int, float),
    },
    "job_arrival": {
        "t": (int, float),
        "job": int,
        "submit": (int, float),
        "model": str,
    },
    "job_finish": {
        "t": (int, float),
        "job": int,
        "jct": (int, float),
        "gpu_seconds": (int, float),
        "restarts": int,
        "failures": int,
        "?sla_class": int,
        "?deadline": (int, float),
        "?sla_violated": bool,
    },
    "fault": {
        "t": (int, float),
        "kind": str,
        "node": int,
        "?severity": (int, float),
    },
    "run_end": {
        "makespan": (int, float),
        "rounds": int,
        "jobs_finished": int,
        "jobs_total": int,
        "all_finished": bool,
        "gpu_utilization": (int, float),
        "?total_joules": (int, float),
        "?sla_jobs": int,
        "?sla_violations": int,
    },
}


def fail(message):
    print(f"check_trace_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_record(line_no, record):
    if not isinstance(record, dict):
        fail(f"line {line_no}: not a JSON object")
    rtype = record.get("type")
    if not isinstance(rtype, str):
        fail(f"line {line_no}: missing string 'type' field")
    spec = REQUIRED_FIELDS.get(rtype)
    if spec is None:
        fail(f"line {line_no}: unknown record type '{rtype}'")
    for field, kinds in spec.items():
        optional = field.startswith("?")
        name = field[1:] if optional else field
        if name not in record:
            if optional:
                continue
            fail(f"line {line_no} ({rtype}): missing field '{name}'")
        value = record[name]
        # bool is an int subclass in Python; keep the kinds strict.
        if isinstance(value, bool) and kinds is not bool:
            fail(f"line {line_no} ({rtype}): field '{name}' is bool, want {kinds}")
        if not isinstance(value, kinds):
            fail(
                f"line {line_no} ({rtype}): field '{name}' = {value!r} "
                f"has wrong type (want {kinds})"
            )
    return rtype


def validate(path):
    lines = Path(path).read_text().splitlines()
    if not lines:
        fail(f"{path}: empty trace")
    types = []
    for line_no, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            fail(f"line {line_no}: invalid JSON ({err})")
        types.append(check_record(line_no, record))
        if line_no == 1:
            if types[0] != "manifest":
                fail(f"line 1: first record must be 'manifest', got '{types[0]}'")
            if record["schema_version"] not in SUPPORTED_SCHEMA_VERSIONS:
                fail(
                    f"line 1: schema_version {record['schema_version']} not in "
                    f"{SUPPORTED_SCHEMA_VERSIONS}"
                )
    if types[-1] != "run_end":
        fail(f"last record must be 'run_end', got '{types[-1]}'")
    if types.count("manifest") != 1 or types.count("run_end") != 1:
        fail("manifest and run_end must appear exactly once")
    if "round" not in types:
        fail("no 'round' records in trace")
    print(
        f"check_trace_schema: OK: {len(lines)} records "
        f"({types.count('round')} rounds, {types.count('job_finish')} finishes)"
    )


def simulate_and_validate(binary, extra_args):
    with tempfile.TemporaryDirectory() as tmp:
        traces = []
        for run in (1, 2):
            out = Path(tmp) / f"trace{run}.jsonl"
            cmd = [
                binary,
                "--trace=philly",
                "--seed=1",
                "--hours=0.5",
                f"--trace-out={out}",
            ] + extra_args
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                fail(
                    f"run {run}: {' '.join(cmd)} exited {proc.returncode}\n"
                    f"{proc.stdout}{proc.stderr}"
                )
            traces.append(out.read_bytes())
        if traces[0] != traces[1]:
            fail("fixed-seed traces differ between two runs (determinism broken)")
        print("check_trace_schema: two fixed-seed runs are byte-identical")
        with open(Path(tmp) / "trace1.jsonl", "wb") as merged:
            merged.write(traces[0])
        validate(Path(tmp) / "trace1.jsonl")


def main(argv):
    if len(argv) >= 2 and argv[1] == "--simulate":
        if len(argv) < 3:
            fail("--simulate requires the sia_simulate binary path")
        simulate_and_validate(argv[2], argv[3:])
    elif len(argv) == 2:
        validate(argv[1])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
