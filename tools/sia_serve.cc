// Long-running scheduler service daemon (ISSUE 6): hosts many independent
// simulated clusters behind a newline-delimited JSON protocol.
//
//   sia_serve --listen=unix:/tmp/sia.sock --state-dir=state [--no-recover]
//
// Protocol (one JSON object per line; responses mirror the seq):
//   {"op":"create_cluster","cluster":"c1","client":"me","seq":1,
//    "scheduler":"sia","cluster_kind":"heterogeneous","trace":"philly",
//    "rate":8,"hours":1,"seed":1}
//   {"op":"submit_job","cluster":"c1","client":"me","seq":2,
//    "job":{"id":100,"model":"resnet18","max_num_gpus":8}}
//   {"op":"step_round","cluster":"c1","client":"me","seq":3,
//    "rounds":10,"deadline_ms":0}
//   {"op":"query","cluster":"c1"}        {"op":"telemetry","cluster":"c1"}
//   {"op":"list_clusters"}  {"op":"server_stats"}  {"op":"shutdown"}
//
// The daemon survives SIGKILL: every acknowledged mutation is in a fsynced
// write-ahead journal, a watchdog snapshots hosted clusters, and startup
// recovers every cluster found under --state-dir (see src/service/engine.h).
#include <csignal>
#include <iostream>
#include <string>

#include "src/common/flags.h"
#include "src/service/server.h"

namespace {

constexpr char kUsage[] = R"(usage: sia_serve [flags]
  --listen     unix:/path.sock | tcp:PORT     (default unix:/tmp/sia-serve.sock)
  --state-dir  durable per-cluster state root (default sia-serve-state)
  --no-recover skip re-hosting clusters found in --state-dir
  --max-clusters N      hosted-cluster cap               (default 32)
  --queue-depth N       per-cluster request queue bound  (default 64)
  --frame-timeout-ms N  per-frame read timeout           (default 10000)
  --request-timeout-ms N  per-request handling deadline  (default 120000)
  --watchdog-ms N       snapshot sweep interval          (default 2000)
)";

sia::SiaServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) {
    // Stop() joins threads; not async-signal-safe in general, but both
    // SIGINT/SIGTERM arrive on a quiesced foreground daemon here. SIGKILL
    // recovery is the journal's job, not this handler's.
    g_server->Stop();
  }
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return 2;
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  sia::ServerOptions options;
  options.listen = flags.GetString("listen", options.listen);
  options.state_dir = flags.GetString("state-dir", options.state_dir);
  options.recover = !flags.GetBool("no-recover", false);
  options.max_clusters = static_cast<int>(flags.GetInt("max-clusters", options.max_clusters));
  options.queue_depth = static_cast<int>(flags.GetInt("queue-depth", options.queue_depth));
  options.frame_timeout_ms =
      static_cast<int>(flags.GetInt("frame-timeout-ms", options.frame_timeout_ms));
  options.request_timeout_ms =
      static_cast<int>(flags.GetInt("request-timeout-ms", options.request_timeout_ms));
  options.watchdog_interval_ms =
      static_cast<int>(flags.GetInt("watchdog-ms", options.watchdog_interval_ms));
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n" << kUsage;
    return 2;
  }
  if (options.max_clusters < 1 || options.queue_depth < 1) {
    std::cerr << "--max-clusters and --queue-depth must be >= 1\n" << kUsage;
    return 2;
  }

  sia::SiaServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "failed to start: " << error << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::cout << "sia_serve listening on " << options.listen << " (state in "
            << options.state_dir << ", " << server.num_clusters()
            << " clusters recovered)" << std::endl;
  server.Wait();
  std::cout << "sia_serve stopped" << std::endl;
  return 0;
}
