// Long-running scheduler service daemon (ISSUE 6): hosts many independent
// simulated clusters behind a newline-delimited JSON protocol.
//
//   sia_serve --listen=unix:/tmp/sia.sock --state-dir=state [--no-recover]
//
// Protocol (one JSON object per line; responses mirror the seq):
//   {"op":"create_cluster","cluster":"c1","client":"me","seq":1,
//    "scheduler":"sia","cluster_kind":"heterogeneous","trace":"philly",
//    "rate":8,"hours":1,"seed":1}
//   {"op":"submit_job","cluster":"c1","client":"me","seq":2,
//    "job":{"id":100,"model":"resnet18","max_num_gpus":8}}
//   {"op":"step_round","cluster":"c1","client":"me","seq":3,
//    "rounds":10,"deadline_ms":0}
//   {"op":"query","cluster":"c1"}        {"op":"telemetry","cluster":"c1"}
//   {"op":"list_clusters"}  {"op":"server_stats"}  {"op":"server_info"}
//   {"op":"shutdown"}       {"op":"begin_upgrade"[,"binary":"/path"]}
//
// The daemon survives SIGKILL: every acknowledged mutation is in a fsynced
// write-ahead journal, a watchdog snapshots hosted clusters, and startup
// recovers every cluster found under --state-dir (see src/service/engine.h).
//
// Zero-downtime upgrade (ISSUE 10): `begin_upgrade` quiesces and snapshots
// every cluster, then this main() exec()s the (possibly new) binary with
// the listening socket kept open via --upgrade-fd. Clients queued in the
// accept backlog during the exec window are served by the new generation.
//
// Storage-fault injection (soak/chaos testing only): --disk-fault-period=P
// with --disk-fault-burst=B fails every durable-write syscall whose global
// op index falls in [k*P, k*P+B), exercising the degraded read-only mode
// and journal quarantine paths end to end.
#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/fault_file_ops.h"
#include "src/common/flags.h"
#include "src/service/server.h"

namespace {

constexpr char kUsage[] = R"(usage: sia_serve [flags]
  --listen     unix:/path.sock | tcp:PORT     (default unix:/tmp/sia-serve.sock)
  --state-dir  durable per-cluster state root (default sia-serve-state)
  --no-recover skip re-hosting clusters found in --state-dir
  --max-clusters N      hosted-cluster cap               (default 32)
  --queue-depth N       per-cluster request queue bound  (default 64)
  --frame-timeout-ms N  per-frame read timeout           (default 10000)
  --request-timeout-ms N  per-request handling deadline  (default 120000)
  --watchdog-ms N       snapshot sweep interval          (default 2000)
  --upgrade-fd N        inherited listening socket (upgrade handoff; internal)
  --disk-fault-period N fail durable writes every N ops  (default 0 = off)
  --disk-fault-burst N  consecutive failures per period  (default 1)
  --disk-fault-seed N   seed for the fault schedule      (default 1)
)";

sia::SiaServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) {
    // Stop() joins threads; not async-signal-safe in general, but both
    // SIGINT/SIGTERM arrive on a quiesced foreground daemon here. SIGKILL
    // recovery is the journal's job, not this handler's.
    g_server->Stop();
  }
}

// Re-exec for a zero-downtime upgrade: same argv minus any old --upgrade-fd,
// plus the preserved listen fd. Only returns on exec failure.
void ExecNextGeneration(int argc, char** argv, const std::string& binary, int listen_fd) {
  // The listen fd must survive the exec; everything else in the process is
  // O_CLOEXEC (journal segments) or already closed (the server object and
  // its connections were destroyed before this call).
  const int fd_flags = ::fcntl(listen_fd, F_GETFD);
  if (fd_flags >= 0) {
    ::fcntl(listen_fd, F_SETFD, fd_flags & ~FD_CLOEXEC);
  }
  std::vector<std::string> args;
  args.push_back(binary.empty() ? argv[0] : binary);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--upgrade-fd", 0) == 0) {
      continue;  // Stale fd number from the previous handoff.
    }
    args.push_back(argv[i]);
  }
  args.push_back("--upgrade-fd=" + std::to_string(listen_fd));
  std::vector<char*> exec_argv;
  for (std::string& arg : args) {
    exec_argv.push_back(arg.data());
  }
  exec_argv.push_back(nullptr);
  ::execv(exec_argv[0], exec_argv.data());
  std::cerr << "upgrade exec of " << exec_argv[0] << " failed: " << strerror(errno)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return 2;
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  sia::ServerOptions options;
  options.listen = flags.GetString("listen", options.listen);
  options.state_dir = flags.GetString("state-dir", options.state_dir);
  options.recover = !flags.GetBool("no-recover", false);
  options.max_clusters = static_cast<int>(flags.GetInt("max-clusters", options.max_clusters));
  options.queue_depth = static_cast<int>(flags.GetInt("queue-depth", options.queue_depth));
  options.frame_timeout_ms =
      static_cast<int>(flags.GetInt("frame-timeout-ms", options.frame_timeout_ms));
  options.request_timeout_ms =
      static_cast<int>(flags.GetInt("request-timeout-ms", options.request_timeout_ms));
  options.watchdog_interval_ms =
      static_cast<int>(flags.GetInt("watchdog-ms", options.watchdog_interval_ms));
  options.inherited_listen_fd = static_cast<int>(flags.GetInt("upgrade-fd", -1));
  const int fault_period = static_cast<int>(flags.GetInt("disk-fault-period", 0));
  const int fault_burst = static_cast<int>(flags.GetInt("disk-fault-burst", 1));
  const uint64_t fault_seed = static_cast<uint64_t>(flags.GetInt("disk-fault-seed", 1));
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n" << kUsage;
    return 2;
  }
  if (options.max_clusters < 1 || options.queue_depth < 1) {
    std::cerr << "--max-clusters and --queue-depth must be >= 1\n" << kUsage;
    return 2;
  }

  // Installed before any server thread exists and never uninstalled (the
  // seam must outlive every durable write, including destructor-time ones).
  static sia::FaultInjectingFileOps* fault_ops = nullptr;
  if (fault_period > 0) {
    sia::FaultFileOpsOptions fault_options;
    fault_options.period = fault_period;
    fault_options.burst = fault_burst;
    fault_options.seed = fault_seed;
    fault_ops = new sia::FaultInjectingFileOps(fault_options);
    sia::SetFileOps(fault_ops);
    std::cout << "sia_serve: disk-fault injection on (period=" << fault_period
              << " burst=" << fault_burst << " seed=" << fault_seed << ")" << std::endl;
  }

  // The server lives in a scope so a requested upgrade fully destroys it --
  // closing every journal fd, trace sink, and connection -- before exec()
  // replaces the process image.
  bool upgrade = false;
  std::string upgrade_binary;
  int upgrade_listen_fd = -1;
  {
    sia::SiaServer server(options);
    std::string error;
    if (!server.Start(&error)) {
      std::cerr << "failed to start: " << error << "\n";
      return 1;
    }
    g_server = &server;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);

    std::cout << "sia_serve listening on " << options.listen << " (state in "
              << options.state_dir << ", " << server.num_clusters()
              << " clusters recovered)" << std::endl;
    server.Wait();
    g_server = nullptr;
    upgrade = server.upgrade_requested();
    if (upgrade) {
      upgrade_binary = server.upgrade_binary();
      upgrade_listen_fd = server.TakeUpgradeListenFd();
    }
  }
  if (upgrade && upgrade_listen_fd >= 0) {
    std::cout << "sia_serve upgrading in place" << std::endl;
    ExecNextGeneration(argc, argv, upgrade_binary, upgrade_listen_fd);
    ::close(upgrade_listen_fd);
    return 1;  // exec failed; the old generation is gone either way.
  }
  std::cout << "sia_serve stopped" << std::endl;
  return 0;
}
