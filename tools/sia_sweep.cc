// Sweep driver: run a (scheduler x arrival-rate x seed) grid and emit one
// CSV row per run -- the raw material for load curves and custom plots.
//
//   sia_sweep --schedulers=sia,pollux --rates=10,20,30 --seeds=1,2 \
//             --trace=helios --cluster=heterogeneous [--out=sweep.csv] \
//             [--sched-threads=N]   # results byte-identical at any N
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "src/cluster/cluster_spec.h"
#include "src/common/flags.h"
#include "src/metrics/report.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace {

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) {
      out.push_back(token);
    }
  }
  return out;
}

std::unique_ptr<sia::Scheduler> MakeScheduler(const std::string& name, int sched_threads) {
  if (name == "sia") {
    sia::SiaOptions options;
    options.num_threads = sched_threads;
    return std::make_unique<sia::SiaScheduler>(options);
  }
  if (name == "pollux") {
    sia::PolluxOptions options;
    options.num_threads = sched_threads;
    return std::make_unique<sia::PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<sia::GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<sia::AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<sia::PriorityScheduler>(sia::ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<sia::PriorityScheduler>(sia::ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<sia::PriorityScheduler>(sia::FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<sia::PriorityScheduler>(sia::SrtfOptions());
  }
  return nullptr;
}

bool IsRigid(const std::string& name) { return name != "sia" && name != "pollux"; }

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  const auto schedulers = SplitList(flags.GetString("schedulers", "sia,pollux,gavel"));
  const auto rates = SplitList(flags.GetString("rates", "20"));
  const auto seeds = SplitList(flags.GetString("seeds", "1"));
  const std::string trace_name = flags.GetString("trace", "helios");
  const std::string cluster_name = flags.GetString("cluster", "heterogeneous");
  const std::string out_path = flags.GetString("out", "");
  const int sched_threads = flags.GetInt("sched-threads", 1);
  if (sched_threads < 1) {
    std::cerr << "--sched-threads must be >= 1\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  sia::ClusterSpec cluster;
  if (cluster_name == "heterogeneous") {
    cluster = sia::MakeHeterogeneousCluster();
  } else if (cluster_name == "homogeneous") {
    cluster = sia::MakeHomogeneousCluster();
  } else if (cluster_name == "physical") {
    cluster = sia::MakePhysicalCluster();
  } else {
    std::cerr << "unknown cluster '" << cluster_name << "'\n";
    return 2;
  }
  sia::TraceKind kind;
  if (trace_name == "philly") {
    kind = sia::TraceKind::kPhilly;
  } else if (trace_name == "helios") {
    kind = sia::TraceKind::kHelios;
  } else if (trace_name == "newtrace") {
    kind = sia::TraceKind::kNewTrace;
  } else {
    std::cerr << "unknown trace '" << trace_name << "'\n";
    return 2;
  }

  std::ostringstream csv;
  csv << "scheduler,rate,seed,jobs,avg_jct_hours,p99_jct_hours,makespan_hours,"
         "gpu_hours_per_job,avg_contention,max_contention,restarts_per_job,"
         "gpu_utilization,all_finished\n";
  for (const std::string& scheduler_name : schedulers) {
    for (const std::string& rate_str : rates) {
      for (const std::string& seed_str : seeds) {
        const double rate = std::strtod(rate_str.c_str(), nullptr);
        const uint64_t seed = std::strtoull(seed_str.c_str(), nullptr, 10);
        sia::TraceOptions trace;
        trace.kind = kind;
        trace.arrival_rate_per_hour = rate;
        trace.seed = seed;
        auto jobs = sia::GenerateTrace(trace);
        if (IsRigid(scheduler_name)) {
          sia::TunedJobsOptions tuned;
          tuned.max_gpus = cluster_name == "homogeneous" ? 64 : 16;
          tuned.seed = seed;
          jobs = sia::MakeTunedJobs(jobs, tuned);
        }
        auto scheduler = MakeScheduler(scheduler_name, sched_threads);
        if (scheduler == nullptr) {
          std::cerr << "unknown scheduler '" << scheduler_name << "'\n";
          return 2;
        }
        sia::SimOptions sim;
        sim.seed = seed;
        if (const std::string error = sim.Validate(); !error.empty()) {
          std::cerr << "invalid options: " << error << "\n";
          return 2;
        }
        sia::ClusterSimulator simulator(cluster, jobs, scheduler.get(), sim);
        const sia::SimResult result = simulator.Run();
        csv << scheduler_name << "," << rate << "," << seed << "," << jobs.size() << ","
            << result.AvgJctHours() << "," << result.P99JctHours() << ","
            << result.MakespanHours() << "," << result.AvgGpuHoursPerJob() << ","
            << result.avg_contention << "," << result.max_contention << ","
            << result.AvgRestarts() << "," << result.gpu_utilization << ","
            << (result.all_finished ? 1 : 0) << "\n";
        std::cerr << scheduler_name << " rate=" << rate << " seed=" << seed << " done\n";
      }
    }
  }
  if (out_path.empty()) {
    std::cout << csv.str();
  } else {
    std::ofstream out(out_path);
    if (!out.is_open()) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << csv.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
