// Kill-inject run supervisor (ISSUE 5): proves the checkpoint/resume stack
// end to end by SIGKILLing a real sia_simulate child at randomized rounds,
// restarting it from the newest valid snapshot with capped exponential
// backoff, and asserting crash-equivalence -- the final trace, metrics JSON,
// and per-job results CSV must be byte-identical to an uninterrupted
// reference run of the same flags.
//
//   sia_supervise --simulate=build/tools/sia_simulate --out-dir=/tmp/sup \
//                 [--sim-flags="--scheduler=sia --hours=1 --rate=30"] \
//                 [--kills=2] [--seed=1] [--checkpoint-every=5] \
//                 [--min-kill-gap=3] [--max-kill-gap=12] \
//                 [--max-restarts=5] [--backoff-ms=100] [--backoff-cap-ms=2000]
//
// Exit code 0 iff every comparison passed.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/snapshot/snapshot.h"

namespace {

constexpr char kUsage[] = R"(usage: sia_supervise [flags]
  --simulate   path to the sia_simulate binary                (required)
  --out-dir    working directory for run artifacts            (required)
  --sim-flags  extra flags passed to every simulation run, whitespace-split
               (default "--scheduler=sia --hours=1 --rate=30 --seed=3")
  --kills      SIGKILL injections before letting the run finish (default 2)
  --seed       RNG seed for the randomized kill rounds          (default 1)
  --checkpoint-every  snapshot cadence in rounds                (default 5)
  --min-kill-gap / --max-kill-gap  rounds past the last resume point at
               which the next kill lands                       (default 3/12)
  --max-restarts  unexpected child failures tolerated per phase (default 5)
  --backoff-ms / --backoff-cap-ms  restart backoff base and cap (default 100/2000)
)";

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string token;
  while (in >> token) {
    out.push_back(token);
  }
  return out;
}

// Runs `argv` as a child process and returns its raw waitpid status.
// Returns -1 if the child could not be spawned.
int RunChild(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    raw.push_back(const_cast<char*>(arg.c_str()));
  }
  raw.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    ::execv(raw[0], raw.data());
    _exit(127);  // execv only returns on failure.
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      return -1;
    }
  }
  return status;
}

bool KilledBySigkill(int status) {
  return status >= 0 && WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

bool ExitedCleanly(int status) {
  // sia_simulate exits 1 when the run censors jobs at the max-hours cap;
  // that is still a completed simulation for equivalence purposes.
  return status >= 0 && WIFEXITED(status) &&
         (WEXITSTATUS(status) == 0 || WEXITSTATUS(status) == 1);
}

bool FilesIdentical(const std::string& a, const std::string& b, std::string* detail) {
  std::string contents_a;
  std::string contents_b;
  std::string error;
  if (!sia::ReadFileToString(a, &contents_a, &error)) {
    *detail = a + ": " + error;
    return false;
  }
  if (!sia::ReadFileToString(b, &contents_b, &error)) {
    *detail = b + ": " + error;
    return false;
  }
  if (contents_a != contents_b) {
    *detail = a + " and " + b + " differ (" + std::to_string(contents_a.size()) + " vs " +
              std::to_string(contents_b.size()) + " bytes)";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return 2;
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string simulate = flags.GetString("simulate", "");
  const std::string out_dir = flags.GetString("out-dir", "");
  const std::string sim_flags =
      flags.GetString("sim-flags", "--scheduler=sia --hours=1 --rate=30 --seed=3");
  const int kills = static_cast<int>(flags.GetInt("kills", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int checkpoint_every = static_cast<int>(flags.GetInt("checkpoint-every", 5));
  const int min_gap = static_cast<int>(flags.GetInt("min-kill-gap", 3));
  const int max_gap = static_cast<int>(flags.GetInt("max-kill-gap", 12));
  const int max_restarts = static_cast<int>(flags.GetInt("max-restarts", 5));
  const int backoff_ms = static_cast<int>(flags.GetInt("backoff-ms", 100));
  const int backoff_cap_ms = static_cast<int>(flags.GetInt("backoff-cap-ms", 2000));
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n" << kUsage;
    return 2;
  }
  if (simulate.empty() || out_dir.empty()) {
    std::cerr << "--simulate and --out-dir are required\n" << kUsage;
    return 2;
  }
  if (kills < 1 || checkpoint_every < 1 || min_gap < 1 || max_gap < min_gap) {
    std::cerr << "invalid kill/checkpoint configuration\n" << kUsage;
    return 2;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string ckpt_dir = out_dir + "/ckpt";
  std::filesystem::remove_all(ckpt_dir, ec);
  const std::vector<std::string> base_flags = SplitWhitespace(sim_flags);

  auto make_argv = [&](const std::string& prefix, bool checkpointing, int64_t die_at_round,
                       bool resume) {
    std::vector<std::string> child;
    child.push_back(simulate);
    child.insert(child.end(), base_flags.begin(), base_flags.end());
    child.push_back("--trace-out=" + out_dir + "/" + prefix + ".jsonl");
    child.push_back("--metrics-out=" + out_dir + "/" + prefix + "_metrics.json");
    child.push_back("--results-out=" + out_dir + "/" + prefix + "_results.csv");
    if (checkpointing) {
      child.push_back("--checkpoint-every=" + std::to_string(checkpoint_every));
      child.push_back("--checkpoint-dir=" + ckpt_dir);
    }
    if (die_at_round >= 0) {
      child.push_back("--die-at-round=" + std::to_string(die_at_round));
    }
    if (resume) {
      child.push_back("--resume=" + ckpt_dir);
    }
    return child;
  };

  // Runs one phase, retrying unexpected failures (spawn errors, crashes we
  // did not inject) with capped exponential backoff. Expected outcomes --
  // clean exit, or SIGKILL when `expect_kill` -- return immediately.
  auto run_with_backoff = [&](const std::vector<std::string>& child, bool expect_kill,
                              bool* was_killed) {
    for (int attempt = 0; attempt <= max_restarts; ++attempt) {
      if (attempt > 0) {
        int64_t delay = static_cast<int64_t>(backoff_ms) << (attempt - 1);
        delay = std::min<int64_t>(delay, backoff_cap_ms);
        std::cerr << "restart " << attempt << "/" << max_restarts << " after " << delay
                  << " ms backoff\n";
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      const int status = RunChild(child);
      if (ExitedCleanly(status)) {
        *was_killed = false;
        return true;
      }
      if (expect_kill && KilledBySigkill(status)) {
        *was_killed = true;
        return true;
      }
      std::cerr << "child failed unexpectedly (status " << status << ")\n";
    }
    return false;
  };

  // --- phase 1: uninterrupted reference run (no checkpointing at all, so
  // the comparison also proves checkpoint writes have no side effects) ---
  std::cout << "[supervise] reference run\n";
  bool killed = false;
  if (!run_with_backoff(make_argv("ref", false, -1, false), false, &killed)) {
    std::cerr << "reference run failed\n";
    return 1;
  }

  // --- phase 2: kill-inject loop ---
  sia::Rng rng(seed);
  int64_t resume_round = 0;
  bool resuming = false;
  for (int kill = 0; kill < kills; ++kill) {
    const int gap = static_cast<int>(rng.UniformInt(min_gap, max_gap));
    const int64_t die_at = resume_round + gap;
    std::cout << "[supervise] kill " << (kill + 1) << "/" << kills << " at round " << die_at
              << (resuming ? " (resumed)" : " (fresh)") << "\n";
    if (!run_with_backoff(make_argv("run", true, die_at, resuming), true, &killed)) {
      std::cerr << "killed phase failed\n";
      return 1;
    }
    if (!killed) {
      // The run finished before reaching the kill round; nothing left to
      // interrupt.
      std::cout << "[supervise] run completed before round " << die_at << "\n";
      resuming = true;
      break;
    }
    // Find where the next resume will start so the next kill lands after it.
    std::string snap_path;
    std::string payload;
    std::string error;
    std::vector<std::string> skipped;
    if (!sia::LatestValidSnapshot(ckpt_dir, &snap_path, &payload, &skipped, &error)) {
      std::cerr << "no valid snapshot after kill: " << error << "\n";
      return 1;
    }
    sia::SnapshotMeta meta;
    if (!sia::ReadSnapshotMeta(payload, &meta, &error)) {
      std::cerr << "unreadable snapshot meta: " << error << "\n";
      return 1;
    }
    std::cout << "[supervise] latest snapshot: round " << meta.round_index << "\n";
    resume_round = meta.round_index;
    resuming = true;
  }

  // --- phase 3: resume to completion ---
  std::cout << "[supervise] final resume to completion\n";
  if (!run_with_backoff(make_argv("run", true, -1, resuming), false, &killed)) {
    std::cerr << "final resume failed\n";
    return 1;
  }

  // --- phase 4: crash-equivalence assertions ---
  bool ok = true;
  for (const char* suffix : {".jsonl", "_metrics.json", "_results.csv"}) {
    std::string detail;
    if (FilesIdentical(out_dir + "/ref" + suffix, out_dir + "/run" + suffix, &detail)) {
      std::cout << "[supervise] OK  ref" << suffix << " == run" << suffix << "\n";
    } else {
      std::cerr << "[supervise] FAIL " << detail << "\n";
      ok = false;
    }
  }
  std::cout << (ok ? "[supervise] crash-equivalence PASSED\n"
                   : "[supervise] crash-equivalence FAILED\n");
  return ok ? 0 : 1;
}
