// Kill-inject run supervisor (ISSUE 5 + ISSUE 6): proves the crash-tolerance
// stack end to end in two modes.
//
// Simulate mode (--simulate): SIGKILLs a sia_simulate child at randomized
// rounds, restarts it from the newest valid snapshot, and asserts the final
// trace, metrics JSON, and per-job results CSV are byte-identical to an
// uninterrupted reference run of the same flags.
//
//   sia_supervise --simulate=build/tools/sia_simulate --out-dir=/tmp/sup
//                 [--sim-flags="--scheduler=sia --hours=1 --rate=30"]
//                 [--kills=2] [--seed=1] [--checkpoint-every=5]
//                 [--min-kill-gap=3] [--max-kill-gap=12]
//                 [--max-restarts=5] [--backoff-ms=100] [--backoff-cap-ms=2000]
//
// Serve mode (--serve): soaks the long-running sia_serve daemon. A reference
// pass drives N concurrent clients across M hosted clusters to completion
// uninterrupted; a chaos pass replays the same traffic while SIGKILLing the
// *server* at randomized instants and restarting it (clients ride through on
// retries). Every hosted cluster's trace/results/metrics must come out
// byte-identical across the two passes, and the cluster driven at a 0 ms
// round deadline must show the full degradation ladder in its metrics.
//
//   sia_supervise --serve=build/tools/sia_serve --out-dir=/tmp/soak
//                 [--clients=3] [--clusters=2] [--rounds=250] [--kills=3]
//                 [--min-kill-ms=300] [--max-kill-ms=1500] [--rate=20] [--hours=2]
//
// Restart backoff in both modes is capped exponential plus jitter drawn from
// the seeded Rng, so a fixed --seed reproduces the exact supervision
// schedule. Exit codes: 0 all comparisons passed, 1 a comparison or phase
// failed, 2 usage error, 3 the restart cap was exhausted.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/service/client.h"
#include "src/service/json.h"
#include "src/snapshot/snapshot.h"

namespace {

constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRestartsExhausted = 3;

constexpr char kUsage[] = R"(usage: sia_supervise [flags]
simulate mode:
  --simulate   path to the sia_simulate binary                (required)
  --out-dir    working directory for run artifacts            (required)
  --sim-flags  extra flags passed to every simulation run, whitespace-split
               (default "--scheduler=sia --hours=1 --rate=30 --seed=3")
  --kills      SIGKILL injections before letting the run finish (default 2)
  --checkpoint-every  snapshot cadence in rounds                (default 5)
  --min-kill-gap / --max-kill-gap  rounds past the last resume point at
               which the next kill lands                       (default 3/12)
serve mode:
  --serve      path to the sia_serve binary (replaces --simulate)
  --clients    concurrent client threads                       (default 3)
  --clusters   hosted clusters (cluster 0 runs at a 0 ms round
               deadline to soak the degradation ladder)        (default 2)
  --rounds     scheduling rounds per cluster                   (default 250)
  --kills      server SIGKILLs during the chaos pass           (default 3)
  --min-kill-ms / --max-kill-ms  delay range between kills     (default 150/500)
  --rate / --hours  workload arrival rate and trace window     (default 20/5)
  --upgrades   zero-downtime begin_upgrade requests injected
               mid-traffic during the chaos pass               (default 0)
  --disk-fault-period / --disk-fault-burst / --disk-fault-seed
               storage-fault injection for the chaos-pass server only:
               every N durable-write ops, fail a burst of B    (default 0 = off)
shared:
  --seed       seed for kill points and restart-backoff jitter (default 1)
  --max-restarts  unexpected failures tolerated per phase      (default 5)
  --backoff-ms / --backoff-cap-ms  restart backoff base and cap (default 100/2000)

exit codes: 0 pass, 1 comparison/phase failure, 2 usage, 3 restart cap exhausted
)";

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string token;
  while (in >> token) {
    out.push_back(token);
  }
  return out;
}

// Capped exponential backoff with jitter in [0, delay/2] drawn from `rng`.
// Seeded jitter keeps the whole supervision schedule reproducible while
// still decorrelating restarts from any periodic failure cause.
int64_t BackoffWithJitterMs(int attempt, int base_ms, int cap_ms, sia::Rng* rng) {
  const int shift = std::clamp(attempt - 1, 0, 20);
  int64_t delay = static_cast<int64_t>(base_ms) << shift;
  delay = std::min<int64_t>(delay, cap_ms);
  if (delay / 2 > 0) {
    delay += rng->UniformInt(0, delay / 2);
  }
  return delay;
}

std::vector<char*> ToArgv(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    raw.push_back(const_cast<char*>(arg.c_str()));
  }
  raw.push_back(nullptr);
  return raw;
}

// Spawns `argv` and returns the child pid (-1 on fork failure) without
// waiting for it.
pid_t SpawnChild(const std::vector<std::string>& argv) {
  std::vector<char*> raw = ToArgv(argv);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(raw[0], raw.data());
    _exit(127);  // execv only returns on failure.
  }
  return pid;
}

// Runs `argv` as a child process and returns its raw waitpid status.
// Returns -1 if the child could not be spawned.
int RunChild(const std::vector<std::string>& argv) {
  const pid_t pid = SpawnChild(argv);
  if (pid < 0) {
    return -1;
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      return -1;
    }
  }
  return status;
}

bool KilledBySigkill(int status) {
  return status >= 0 && WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

bool ExitedCleanly(int status) {
  // sia_simulate exits 1 when the run censors jobs at the max-hours cap;
  // that is still a completed simulation for equivalence purposes.
  return status >= 0 && WIFEXITED(status) &&
         (WEXITSTATUS(status) == 0 || WEXITSTATUS(status) == 1);
}

bool FilesIdentical(const std::string& a, const std::string& b, std::string* detail) {
  std::string contents_a;
  std::string contents_b;
  std::string error;
  if (!sia::ReadFileToString(a, &contents_a, &error)) {
    *detail = a + ": " + error;
    return false;
  }
  if (!sia::ReadFileToString(b, &contents_b, &error)) {
    *detail = b + ": " + error;
    return false;
  }
  if (contents_a != contents_b) {
    *detail = a + " and " + b + " differ (" + std::to_string(contents_a.size()) + " vs " +
              std::to_string(contents_b.size()) + " bytes)";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Serve-mode soak.
// ---------------------------------------------------------------------------

struct SoakConfig {
  std::string serve_binary;
  std::string out_dir;
  int clients = 3;
  int clusters = 2;
  int rounds = 250;
  int kills = 3;
  int min_kill_ms = 150;
  int max_kill_ms = 500;
  double rate = 20.0;
  double hours = 5.0;
  uint64_t seed = 1;
  int max_restarts = 5;
  int backoff_ms = 100;
  int backoff_cap_ms = 2000;
  // Chaos-pass extras (reference pass always runs clean).
  int upgrades = 0;           // Mid-traffic zero-downtime begin_upgrade count.
  int disk_fault_period = 0;  // 0 = no storage-fault injection.
  int disk_fault_burst = 1;
  uint64_t disk_fault_seed = 1;
};

std::string SoakClusterName(int index) { return "soak" + std::to_string(index); }

sia::ClientOptions MakeClientOptions(const std::string& socket, const std::string& client_id,
                                     uint64_t seed) {
  sia::ClientOptions options;
  options.address = "unix:" + socket;
  options.client_id = client_id;
  options.seed = seed;
  // Generous retry budget: the chaos pass knocks the server out for up to a
  // few seconds at a time and clients must ride through on backoff alone.
  options.max_attempts = 30;
  options.backoff_base_ms = 25;
  options.backoff_max_ms = 500;
  return options;
}

// Drives the full soak workload against a running server: creates the
// clusters, steps each one `rounds` times from `clients` concurrent worker
// threads, then finalizes every cluster. Returns false (with a message on
// stderr) if any request exhausts its retries.
bool DriveSoakTraffic(const SoakConfig& cfg, const std::string& socket) {
  // Setup: create every cluster and seed a couple of extra jobs beyond the
  // generated trace so submit_job sees soak traffic too.
  sia::ServiceClient setup(MakeClientOptions(socket, "soak-setup", cfg.seed));
  for (int c = 0; c < cfg.clusters; ++c) {
    sia::JsonValue req = sia::JsonValue::MakeObject();
    req.Set("op", sia::JsonValue::MakeString("create_cluster"));
    req.Set("cluster", sia::JsonValue::MakeString(SoakClusterName(c)));
    // Cluster 0 runs the full sia policy under a 0 ms deadline (every round
    // degrades to carry_over, which is both the ladder soak target and
    // cheap); the rest run lightweight policies so hundreds of rounds and
    // post-kill journal replays stay fast enough for CI.
    req.Set("scheduler",
            sia::JsonValue::MakeString(c == 0 ? "sia" : (c % 2 == 1 ? "fifo" : "srtf")));
    req.Set("trace", sia::JsonValue::MakeString("philly"));
    req.Set("rate", sia::JsonValue::MakeNumber(cfg.rate));
    req.Set("hours", sia::JsonValue::MakeNumber(cfg.hours));
    req.Set("seed", sia::JsonValue::MakeNumber(static_cast<double>(cfg.seed + c)));
    if (c == 0) {
      // Cluster 0 soaks the degradation ladder: a 0 ms budget forces every
      // round down to carry_over while staying deterministic on replay.
      req.Set("round_deadline_ms", sia::JsonValue::MakeNumber(0));
    }
    const sia::ClientResult result = setup.Call(std::move(req));
    if (!result.ok) {
      std::cerr << "[soak] create_cluster " << SoakClusterName(c) << " failed: "
                << result.message << "\n";
      return false;
    }
  }
  for (int c = 0; c < cfg.clusters; ++c) {
    sia::ServiceClient submitter(
        MakeClientOptions(socket, "soak-submit." + SoakClusterName(c), cfg.seed + 100 + c));
    for (int j = 0; j < 2; ++j) {
      sia::JsonValue job = sia::JsonValue::MakeObject();
      job.Set("id", sia::JsonValue::MakeNumber(900000 + c * 10 + j));
      job.Set("model", sia::JsonValue::MakeString(j == 0 ? "resnet18" : "bert"));
      job.Set("max_num_gpus", sia::JsonValue::MakeNumber(8));
      sia::JsonValue req = sia::JsonValue::MakeObject();
      req.Set("op", sia::JsonValue::MakeString("submit_job"));
      req.Set("cluster", sia::JsonValue::MakeString(SoakClusterName(c)));
      req.Set("job", std::move(job));
      const sia::ClientResult result = submitter.Call(std::move(req));
      if (!result.ok) {
        std::cerr << "[soak] submit_job to " << SoakClusterName(c) << " failed: "
                  << result.message << "\n";
        return false;
      }
    }
  }

  // Concurrent stepping: per-cluster tickets guarantee both passes apply
  // exactly `rounds` step_round mutations per cluster no matter how the
  // worker threads interleave; step_round commutes across clients, so the
  // final simulator state is interleaving-independent.
  std::vector<std::unique_ptr<std::atomic<int>>> tickets;
  std::vector<std::unique_ptr<std::atomic<bool>>> done;
  for (int c = 0; c < cfg.clusters; ++c) {
    tickets.push_back(std::make_unique<std::atomic<int>>(cfg.rounds));
    done.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(cfg.clients);
  for (int w = 0; w < cfg.clients; ++w) {
    workers.emplace_back([&, w] {
      // One client identity per (worker, cluster): the server's dedupe map
      // requires contiguous sequence numbers per client id.
      std::vector<std::unique_ptr<sia::ServiceClient>> per_cluster;
      for (int c = 0; c < cfg.clusters; ++c) {
        per_cluster.push_back(std::make_unique<sia::ServiceClient>(MakeClientOptions(
            socket, "soak-w" + std::to_string(w) + "." + SoakClusterName(c),
            cfg.seed + 1000 + static_cast<uint64_t>(w) * 64 + c)));
      }
      int cluster = w % cfg.clusters;
      int idle_scans = 0;
      while (!failed.load() && idle_scans < cfg.clusters) {
        cluster = (cluster + 1) % cfg.clusters;
        if (done[cluster]->load() || tickets[cluster]->fetch_sub(1) <= 0) {
          ++idle_scans;
          continue;
        }
        idle_scans = 0;
        const sia::ClientResult result =
            per_cluster[cluster]->StepRound(SoakClusterName(cluster), 1);
        if (result.ok) {
          const std::string status = result.response.GetString("status", "");
          if (status == "complete" || status == "cap_reached") {
            done[cluster]->store(true);  // Simulation drained early; stop stepping.
          }
        } else if (result.error == sia::ServiceError::kClusterDone) {
          done[cluster]->store(true);
        } else {
          std::cerr << "[soak] step_round on " << SoakClusterName(cluster)
                    << " failed after " << result.attempts << " attempts: "
                    << result.message << "\n";
          failed.store(true);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (failed.load()) {
    return false;
  }

  // Finalize every cluster so results.csv and metrics.json exist on disk.
  for (int c = 0; c < cfg.clusters; ++c) {
    sia::ServiceClient finisher(
        MakeClientOptions(socket, "soak-fin." + SoakClusterName(c), cfg.seed + 200 + c));
    sia::JsonValue req = sia::JsonValue::MakeObject();
    req.Set("op", sia::JsonValue::MakeString("finalize"));
    req.Set("cluster", sia::JsonValue::MakeString(SoakClusterName(c)));
    const sia::ClientResult result = finisher.Call(std::move(req));
    if (!result.ok) {
      std::cerr << "[soak] finalize " << SoakClusterName(c) << " failed: " << result.message
                << "\n";
      return false;
    }
  }
  return true;
}

// Force-kills and reaps the server (cleanup for failed passes, so an
// orphaned child never outlives the supervisor).
void ReapServer(pid_t pid) {
  if (pid < 0) {
    return;
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

// Sends a graceful shutdown and reaps the server process. The shutdown
// response can be lost in the server's own teardown race, so the exit status
// -- not the response -- is the source of truth.
bool ShutdownServer(const std::string& socket, pid_t pid) {
  {
    sia::ClientOptions options = MakeClientOptions(socket, "soak-shutdown", 1);
    options.max_attempts = 1;  // A lost response already means it landed.
    sia::ServiceClient client(options);
    sia::JsonValue req = sia::JsonValue::MakeObject();
    req.Set("op", sia::JsonValue::MakeString("shutdown"));
    client.Call(std::move(req));
  }
  // Bounded wait, then escalate to SIGKILL rather than hang the soak.
  for (int waited_ms = 0; waited_ms < 15000; waited_ms += 50) {
    int status = 0;
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) {
      return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    if (reaped < 0 && errno != EINTR) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "[soak] server ignored graceful shutdown; escalating to SIGKILL\n";
  ReapServer(pid);
  return false;
}

// Waits (bounded) until the server accepts a request on `socket`.
bool AwaitServerReady(const std::string& socket) {
  sia::ClientOptions options = MakeClientOptions(socket, "soak-probe", 1);
  options.max_attempts = 40;
  sia::ServiceClient client(options);
  sia::JsonValue req = sia::JsonValue::MakeObject();
  req.Set("op", sia::JsonValue::MakeString("server_stats"));
  return client.Call(std::move(req)).ok;
}

std::vector<std::string> ServeArgv(const SoakConfig& cfg, const std::string& socket,
                                   const std::string& state_dir, bool with_faults) {
  std::vector<std::string> argv = {cfg.serve_binary, "--listen=unix:" + socket,
                                   "--state-dir=" + state_dir};
  if (with_faults && cfg.disk_fault_period > 0) {
    // Chaos pass only: the server journals/snapshots through a fault-
    // injecting filesystem seam. The flags survive in-place upgrades too --
    // sia_serve re-execs with its own argv.
    argv.push_back("--disk-fault-period=" + std::to_string(cfg.disk_fault_period));
    argv.push_back("--disk-fault-burst=" + std::to_string(cfg.disk_fault_burst));
    argv.push_back("--disk-fault-seed=" + std::to_string(cfg.disk_fault_seed));
  }
  return argv;
}

// Asks the server for its storage-health report; fills `sheds_total` and
// `degraded_clusters`. Returns false when server_info is unreachable.
bool QueryStorageHealth(const std::string& socket, double* sheds_total,
                        double* degraded_clusters) {
  sia::ServiceClient client(MakeClientOptions(socket, "soak-health", 1));
  sia::JsonValue req = sia::JsonValue::MakeObject();
  req.Set("op", sia::JsonValue::MakeString("server_info"));
  const sia::ClientResult result = client.Call(std::move(req));
  if (!result.ok) {
    return false;
  }
  *sheds_total = result.response.GetNumber("storage_sheds_total", 0.0);
  *degraded_clusters = result.response.GetNumber("degraded_clusters", -1.0);
  return true;
}

// Runs one full soak pass. When `kills` > 0 a killer thread SIGKILLs the
// server at seeded random instants and restarts it with jittered backoff.
// Returns 0/1/3 like main().
int RunSoakPass(const SoakConfig& cfg, const std::string& label, const std::string& socket,
                const std::string& state_dir, int kills, int upgrades, bool with_faults,
                sia::Rng* rng) {
  std::error_code ec;
  std::filesystem::remove_all(state_dir, ec);
  std::filesystem::remove(socket, ec);

  std::atomic<pid_t> server_pid{SpawnChild(ServeArgv(cfg, socket, state_dir, with_faults))};
  if (server_pid.load() < 0) {
    std::cerr << "[soak] failed to spawn " << cfg.serve_binary << "\n";
    return kExitFailure;
  }
  if (!AwaitServerReady(socket)) {
    std::cerr << "[soak] server never became ready on " << socket << "\n";
    ReapServer(server_pid.load());
    return kExitFailure;
  }

  std::atomic<bool> traffic_done{false};
  std::atomic<int> killer_exit{0};
  std::thread killer;
  if (kills > 0) {
    killer = std::thread([&] {
      for (int k = 0; k < kills && !traffic_done.load(); ++k) {
        const int64_t delay_ms = rng->UniformInt(cfg.min_kill_ms, cfg.max_kill_ms);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms);
        while (std::chrono::steady_clock::now() < deadline && !traffic_done.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (traffic_done.load()) {
          break;
        }
        const pid_t pid = server_pid.load();
        std::cout << "[soak] " << label << ": SIGKILL server (kill " << (k + 1) << "/" << kills
                  << ")\n";
        ::kill(pid, SIGKILL);
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        bool restarted = false;
        for (int attempt = 1; attempt <= cfg.max_restarts; ++attempt) {
          const int64_t backoff =
              BackoffWithJitterMs(attempt, cfg.backoff_ms, cfg.backoff_cap_ms, rng);
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
          const pid_t next = SpawnChild(ServeArgv(cfg, socket, state_dir, with_faults));
          if (next >= 0 && AwaitServerReady(socket)) {
            server_pid.store(next);
            restarted = true;
            break;
          }
          if (next >= 0) {
            ::kill(next, SIGKILL);
            while (::waitpid(next, &status, 0) < 0 && errno == EINTR) {
            }
          }
          std::cerr << "[soak] restart attempt " << attempt << "/" << cfg.max_restarts
                    << " failed\n";
        }
        if (!restarted) {
          killer_exit.store(kExitRestartsExhausted);
          return;
        }
      }
    });
  }

  // Mid-traffic zero-downtime upgrades: begin_upgrade drains + snapshots the
  // server, which then exec()s itself in place (same pid, same listen fd),
  // so unlike SIGKILL there is nothing to waitpid or respawn -- clients
  // queued during the exec window ride straight into the new generation.
  std::thread upgrader;
  std::atomic<int> upgrades_done{0};
  if (upgrades > 0) {
    upgrader = std::thread([&] {
      for (int u = 0; u < upgrades && !traffic_done.load(); ++u) {
        const int64_t delay_ms = rng->UniformInt(cfg.min_kill_ms, cfg.max_kill_ms);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms);
        while (std::chrono::steady_clock::now() < deadline && !traffic_done.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (traffic_done.load()) {
          break;
        }
        std::cout << "[soak] " << label << ": begin_upgrade (upgrade " << (u + 1) << "/"
                  << upgrades << ")\n";
        {
          sia::ServiceClient client(
              MakeClientOptions(socket, "soak-upgrade" + std::to_string(u), cfg.seed + u));
          sia::JsonValue req = sia::JsonValue::MakeObject();
          req.Set("op", sia::JsonValue::MakeString("begin_upgrade"));
          client.Call(std::move(req));  // A lost response still upgrades.
        }
        if (!AwaitServerReady(socket)) {
          std::cerr << "[soak] server never came back after upgrade " << (u + 1) << "\n";
          return;
        }
        upgrades_done.fetch_add(1);
      }
    });
  }

  const bool traffic_ok = DriveSoakTraffic(cfg, socket);
  traffic_done.store(true);
  if (killer.joinable()) {
    killer.join();
  }
  if (upgrader.joinable()) {
    upgrader.join();
  }
  if (killer_exit.load() != 0) {
    std::cerr << "[soak] " << label << ": restart cap exhausted\n";
    ReapServer(server_pid.load());
    return killer_exit.load();
  }
  if (!traffic_ok) {
    std::cerr << "[soak] " << label << ": traffic failed\n";
    ReapServer(server_pid.load());
    return kExitFailure;
  }
  if (upgrades > 0) {
    std::cout << "[soak] " << label << ": " << upgrades_done.load() << "/" << upgrades
              << " zero-downtime upgrades completed under traffic\n";
  }
  if (with_faults && cfg.disk_fault_period > 0) {
    // The faulted pass must actually have exercised degraded mode: typed
    // storage_unavailable sheds prove the error taxonomy end to end, and
    // zero degraded clusters at completion proves the probe path healed.
    double sheds = 0.0;
    double degraded = -1.0;
    if (!QueryStorageHealth(socket, &sheds, &degraded)) {
      std::cerr << "[soak] " << label << ": server_info unavailable\n";
      ReapServer(server_pid.load());
      return kExitFailure;
    }
    std::cout << "[soak] " << label << ": " << sheds << " storage sheds, " << degraded
              << " clusters still degraded\n";
    if (sheds <= 0.0 || degraded != 0.0) {
      std::cerr << "[soak] " << label
                << ": expected >0 storage_unavailable sheds and 0 degraded clusters\n";
      ReapServer(server_pid.load());
      return kExitFailure;
    }
  }
  if (!ShutdownServer(socket, server_pid.load())) {
    std::cerr << "[soak] " << label << ": server did not shut down cleanly\n";
    return kExitFailure;
  }
  std::cout << "[soak] " << label << ": pass complete\n";
  return 0;
}

// Asserts that the ladder cluster's final metrics show both a served
// carry_over rung and misses on every rung above it.
bool CheckLadderMetrics(const std::string& metrics_path) {
  std::string contents;
  std::string error;
  if (!sia::ReadFileToString(metrics_path, &contents, &error)) {
    std::cerr << "[soak] cannot read " << metrics_path << ": " << error << "\n";
    return false;
  }
  sia::JsonValue root;
  if (!sia::JsonValue::Parse(contents, &root, &error)) {
    std::cerr << "[soak] cannot parse " << metrics_path << ": " << error << "\n";
    return false;
  }
  const sia::JsonValue* counters = root.Find("counters");
  if (counters == nullptr) {
    std::cerr << "[soak] no counters in " << metrics_path << "\n";
    return false;
  }
  bool ok = true;
  for (const char* name :
       {"scheduler.ladder.served.carry_over", "scheduler.ladder.miss.full_milp",
        "scheduler.ladder.miss.capped_milp", "scheduler.ladder.miss.lp_round",
        "scheduler.ladder.miss.greedy"}) {
    if (counters->GetNumber(name, 0.0) <= 0.0) {
      std::cerr << "[soak] expected counter " << name << " > 0 in " << metrics_path << "\n";
      ok = false;
    }
  }
  return ok;
}

int RunServeSoak(const SoakConfig& cfg) {
  // Writes into a SIGKILLed server's socket must surface as EPIPE to the
  // client's retry loop, not kill the supervisor.
  std::signal(SIGPIPE, SIG_IGN);
  std::error_code ec;
  std::filesystem::create_directories(cfg.out_dir, ec);
  // Keep the socket path short: AF_UNIX paths cap out near 108 bytes.
  const std::string socket = cfg.out_dir + "/soak.sock";
  const std::string ref_state = cfg.out_dir + "/ref-state";
  const std::string chaos_state = cfg.out_dir + "/chaos-state";

  sia::Rng rng = sia::Rng(cfg.seed).Fork("supervise-soak", 0);
  std::cout << "[soak] reference pass: " << cfg.clients << " clients x " << cfg.clusters
            << " clusters x " << cfg.rounds << " rounds\n";
  int rc = RunSoakPass(cfg, "reference", socket, ref_state, /*kills=*/0, /*upgrades=*/0,
                       /*with_faults=*/false, &rng);
  if (rc != 0) {
    return rc;
  }
  std::cout << "[soak] chaos pass: same traffic + " << cfg.kills << " server SIGKILLs + "
            << cfg.upgrades << " upgrades"
            << (cfg.disk_fault_period > 0 ? " + disk faults" : "") << "\n";
  rc = RunSoakPass(cfg, "chaos", socket, chaos_state, cfg.kills, cfg.upgrades,
                   /*with_faults=*/true, &rng);
  if (rc != 0) {
    return rc;
  }

  bool ok = true;
  for (int c = 0; c < cfg.clusters; ++c) {
    const std::string name = SoakClusterName(c);
    for (const char* file : {"trace.jsonl", "results.csv", "metrics.json"}) {
      std::string detail;
      if (FilesIdentical(ref_state + "/" + name + "/" + file,
                         chaos_state + "/" + name + "/" + file, &detail)) {
        std::cout << "[soak] OK  " << name << "/" << file << " identical across passes\n";
      } else {
        std::cerr << "[soak] FAIL " << detail << "\n";
        ok = false;
      }
    }
  }
  if (!CheckLadderMetrics(chaos_state + "/" + SoakClusterName(0) + "/metrics.json")) {
    ok = false;
  }
  std::cout << (ok ? "[soak] server crash-equivalence PASSED\n"
                   : "[soak] server crash-equivalence FAILED\n");
  return ok ? 0 : kExitFailure;
}

}  // namespace

int main(int argc, char** argv) {
  sia::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << kUsage;
    return kExitUsage;
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string simulate = flags.GetString("simulate", "");
  const std::string serve = flags.GetString("serve", "");
  const std::string out_dir = flags.GetString("out-dir", "");
  const std::string sim_flags =
      flags.GetString("sim-flags", "--scheduler=sia --hours=1 --rate=30 --seed=3");
  const int kills = static_cast<int>(flags.GetInt("kills", serve.empty() ? 2 : 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int checkpoint_every = static_cast<int>(flags.GetInt("checkpoint-every", 5));
  const int min_gap = static_cast<int>(flags.GetInt("min-kill-gap", 3));
  const int max_gap = static_cast<int>(flags.GetInt("max-kill-gap", 12));
  const int max_restarts = static_cast<int>(flags.GetInt("max-restarts", 5));
  const int backoff_ms = static_cast<int>(flags.GetInt("backoff-ms", 100));
  const int backoff_cap_ms = static_cast<int>(flags.GetInt("backoff-cap-ms", 2000));
  const int clients = static_cast<int>(flags.GetInt("clients", 3));
  const int clusters = static_cast<int>(flags.GetInt("clusters", 2));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 250));
  const int min_kill_ms = static_cast<int>(flags.GetInt("min-kill-ms", 150));
  const int max_kill_ms = static_cast<int>(flags.GetInt("max-kill-ms", 500));
  const double rate = flags.GetDouble("rate", 20.0);
  const double hours = flags.GetDouble("hours", 5.0);
  const int upgrades = static_cast<int>(flags.GetInt("upgrades", 0));
  const int disk_fault_period = static_cast<int>(flags.GetInt("disk-fault-period", 0));
  const int disk_fault_burst = static_cast<int>(flags.GetInt("disk-fault-burst", 1));
  const uint64_t disk_fault_seed = static_cast<uint64_t>(flags.GetInt("disk-fault-seed", 1));
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n" << kUsage;
    return kExitUsage;
  }
  if ((simulate.empty() == serve.empty()) || out_dir.empty()) {
    std::cerr << "exactly one of --simulate/--serve plus --out-dir is required\n" << kUsage;
    return kExitUsage;
  }

  if (!serve.empty()) {
    SoakConfig cfg;
    cfg.serve_binary = serve;
    cfg.out_dir = out_dir;
    cfg.clients = clients;
    cfg.clusters = clusters;
    cfg.rounds = rounds;
    cfg.kills = kills;
    cfg.min_kill_ms = min_kill_ms;
    cfg.max_kill_ms = max_kill_ms;
    cfg.rate = rate;
    cfg.hours = hours;
    cfg.seed = seed;
    cfg.max_restarts = max_restarts;
    cfg.backoff_ms = backoff_ms;
    cfg.backoff_cap_ms = backoff_cap_ms;
    cfg.upgrades = upgrades;
    cfg.disk_fault_period = disk_fault_period;
    cfg.disk_fault_burst = disk_fault_burst;
    cfg.disk_fault_seed = disk_fault_seed;
    if (cfg.clients < 1 || cfg.clusters < 1 || cfg.rounds < 1 || cfg.min_kill_ms < 1 ||
        cfg.max_kill_ms < cfg.min_kill_ms || cfg.upgrades < 0 || cfg.disk_fault_period < 0 ||
        cfg.disk_fault_burst < 1) {
      std::cerr << "invalid soak configuration\n" << kUsage;
      return kExitUsage;
    }
    return RunServeSoak(cfg);
  }

  if (kills < 1 || checkpoint_every < 1 || min_gap < 1 || max_gap < min_gap) {
    std::cerr << "invalid kill/checkpoint configuration\n" << kUsage;
    return kExitUsage;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string ckpt_dir = out_dir + "/ckpt";
  std::filesystem::remove_all(ckpt_dir, ec);
  const std::vector<std::string> base_flags = SplitWhitespace(sim_flags);

  auto make_argv = [&](const std::string& prefix, bool checkpointing, int64_t die_at_round,
                       bool resume) {
    std::vector<std::string> child;
    child.push_back(simulate);
    child.insert(child.end(), base_flags.begin(), base_flags.end());
    child.push_back("--trace-out=" + out_dir + "/" + prefix + ".jsonl");
    child.push_back("--metrics-out=" + out_dir + "/" + prefix + "_metrics.json");
    child.push_back("--results-out=" + out_dir + "/" + prefix + "_results.csv");
    if (checkpointing) {
      child.push_back("--checkpoint-every=" + std::to_string(checkpoint_every));
      child.push_back("--checkpoint-dir=" + ckpt_dir);
    }
    if (die_at_round >= 0) {
      child.push_back("--die-at-round=" + std::to_string(die_at_round));
    }
    if (resume) {
      child.push_back("--resume=" + ckpt_dir);
    }
    return child;
  };

  // Restart-backoff jitter shares the seeded Rng with the kill schedule so
  // one --seed pins the whole supervision timeline.
  sia::Rng rng(seed);
  sia::Rng backoff_rng = sia::Rng(seed).Fork("supervise-backoff", 0);

  // Runs one phase, retrying unexpected failures (spawn errors, crashes we
  // did not inject) with capped exponential backoff plus seeded jitter.
  // Expected outcomes -- clean exit, or SIGKILL when `expect_kill` -- return
  // immediately. Sets *exhausted when the restart cap ran out.
  auto run_with_backoff = [&](const std::vector<std::string>& child, bool expect_kill,
                              bool* was_killed, bool* exhausted) {
    *exhausted = false;
    for (int attempt = 0; attempt <= max_restarts; ++attempt) {
      if (attempt > 0) {
        const int64_t delay =
            BackoffWithJitterMs(attempt, backoff_ms, backoff_cap_ms, &backoff_rng);
        std::cerr << "restart " << attempt << "/" << max_restarts << " after " << delay
                  << " ms backoff\n";
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      const int status = RunChild(child);
      if (ExitedCleanly(status)) {
        *was_killed = false;
        return true;
      }
      if (expect_kill && KilledBySigkill(status)) {
        *was_killed = true;
        return true;
      }
      std::cerr << "child failed unexpectedly (status " << status << ")\n";
    }
    *exhausted = true;
    return false;
  };

  // --- phase 1: uninterrupted reference run (no checkpointing at all, so
  // the comparison also proves checkpoint writes have no side effects) ---
  std::cout << "[supervise] reference run\n";
  bool killed = false;
  bool exhausted = false;
  if (!run_with_backoff(make_argv("ref", false, -1, false), false, &killed, &exhausted)) {
    std::cerr << "reference run failed\n";
    return exhausted ? kExitRestartsExhausted : kExitFailure;
  }

  // --- phase 2: kill-inject loop ---
  int64_t resume_round = 0;
  bool resuming = false;
  for (int kill = 0; kill < kills; ++kill) {
    const int gap = static_cast<int>(rng.UniformInt(min_gap, max_gap));
    const int64_t die_at = resume_round + gap;
    std::cout << "[supervise] kill " << (kill + 1) << "/" << kills << " at round " << die_at
              << (resuming ? " (resumed)" : " (fresh)") << "\n";
    if (!run_with_backoff(make_argv("run", true, die_at, resuming), true, &killed, &exhausted)) {
      std::cerr << "killed phase failed\n";
      return exhausted ? kExitRestartsExhausted : kExitFailure;
    }
    if (!killed) {
      // The run finished before reaching the kill round; nothing left to
      // interrupt.
      std::cout << "[supervise] run completed before round " << die_at << "\n";
      resuming = true;
      break;
    }
    // Find where the next resume will start so the next kill lands after it.
    std::string snap_path;
    std::string payload;
    std::string error;
    std::vector<std::string> skipped;
    if (!sia::LatestValidSnapshot(ckpt_dir, &snap_path, &payload, &skipped, &error)) {
      std::cerr << "no valid snapshot after kill: " << error << "\n";
      return kExitFailure;
    }
    sia::SnapshotMeta meta;
    if (!sia::ReadSnapshotMeta(payload, &meta, &error)) {
      std::cerr << "unreadable snapshot meta: " << error << "\n";
      return kExitFailure;
    }
    std::cout << "[supervise] latest snapshot: round " << meta.round_index << "\n";
    resume_round = meta.round_index;
    resuming = true;
  }

  // --- phase 3: resume to completion ---
  std::cout << "[supervise] final resume to completion\n";
  if (!run_with_backoff(make_argv("run", true, -1, resuming), false, &killed, &exhausted)) {
    std::cerr << "final resume failed\n";
    return exhausted ? kExitRestartsExhausted : kExitFailure;
  }

  // --- phase 4: crash-equivalence assertions ---
  bool ok = true;
  for (const char* suffix : {".jsonl", "_metrics.json", "_results.csv"}) {
    std::string detail;
    if (FilesIdentical(out_dir + "/ref" + suffix, out_dir + "/run" + suffix, &detail)) {
      std::cout << "[supervise] OK  ref" << suffix << " == run" << suffix << "\n";
    } else {
      std::cerr << "[supervise] FAIL " << detail << "\n";
      ok = false;
    }
  }
  std::cout << (ok ? "[supervise] crash-equivalence PASSED\n"
                   : "[supervise] crash-equivalence FAILED\n");
  return ok ? 0 : kExitFailure;
}
